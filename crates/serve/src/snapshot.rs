//! Snapshots and crash-resume: the durability layer over [`crate::wal`].
//!
//! ## On-disk layout
//!
//! A data directory holds `meta.json` (shard-count guard), and per shard
//! a WAL (`shard-N.wal`, see [`crate::wal`]) plus a snapshot:
//!
//! ```text
//! snapshot := "DDNSNAP1" len_le32 crc_le64 payload
//! payload  := {"version":1,"last_frame_id":N,
//!              "poisoned":[...],"sessions":{...}}    (UTF-8 JSON)
//! ```
//!
//! where `crc` is FNV-1a 64 over the payload, `sessions` is
//! [`crate::Engine::state_save`] output (sorted, so identical state
//! yields identical bytes), and `last_frame_id` is the id of the last
//! WAL frame whose effects the snapshot includes. Snapshots are written
//! to a temp file, fsynced, and renamed into place — a crash mid-write
//! leaves the previous snapshot intact.
//!
//! ## Recovery invariants
//!
//! [`ShardDurability::open`] restores the latest valid snapshot (a
//! missing or corrupt one restores nothing), replays WAL frames with
//! `id > last_frame_id` through the same engine code paths live traffic
//! takes, then *self-heals*: it writes a fresh snapshot of the recovered
//! state and starts a new WAL. That rotation absorbs torn tails, bounds
//! replay work at the next startup, and makes a stale-snapshot-plus-
//! newer-WAL directory converge to a consistent pair.
//!
//! ## Fsync policy
//!
//! WAL appends reach the kernel before a request is acknowledged (they
//! survive `kill -9`) but are not fsynced per frame; snapshots are
//! fsynced. The durability contract is therefore: process crash loses
//! nothing acknowledged; whole-machine power loss loses at most the
//! frames since the last snapshot.

use crate::engine::Engine;
use crate::protocol::Request;
use crate::wal::{fnv1a, read_wal, WalWriter};
use ddn_stats::Json;
use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// File magic opening every snapshot file (also its format version).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DDNSNAP1";

/// The WAL file for `shard` under `dir`.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// The snapshot file for `shard` under `dir`.
pub fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

/// Validates (or stamps) the data directory's `meta.json`. Session→shard
/// routing hashes the session id modulo the shard count, so reopening a
/// directory with a different count would route sessions to shards whose
/// files don't hold them; that is refused here rather than silently
/// splitting state.
pub fn check_meta(dir: &Path, shards: usize) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = dir.join("meta.json");
    match fs::read_to_string(&path) {
        Ok(text) => {
            let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
            let meta = Json::parse(&text)
                .map_err(|e| bad(format!("{}: bad meta.json: {e}", dir.display())))?;
            let version = meta.get("version").and_then(Json::as_u64);
            if version != Some(1) {
                return Err(bad(format!(
                    "{}: meta.json version {version:?} not supported",
                    dir.display()
                )));
            }
            let stored = meta.get("shards").and_then(Json::as_u64);
            if stored != Some(shards as u64) {
                return Err(bad(format!(
                    "{}: data dir was written with {stored:?} shards but the server \
                     is configured for {shards}; reuse the original shard count",
                    dir.display()
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let meta = Json::object(vec![
                ("version", Json::Int(1)),
                ("shards", Json::Int(shards as i64)),
            ]);
            atomic_write(&path, meta.to_string().as_bytes())
        }
        Err(e) => Err(e),
    }
}

/// Writes `bytes` to `path` via temp-file + fsync + rename, so a crash
/// mid-write never leaves a partially written file under `path`.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable. Best-effort: directory fsync is a
    // Linux-ism; a failure here downgrades power-loss (not crash) safety.
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Serializes a snapshot payload and writes it atomically.
pub fn write_snapshot(path: &Path, payload: &Json) -> io::Result<()> {
    let body = payload.to_string().into_bytes();
    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 12 + body.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    atomic_write(path, &bytes)
}

/// Reads and validates a snapshot. Returns `None` for a missing file or
/// *any* corruption (bad magic, short file, checksum mismatch, invalid
/// JSON): recovery falls back to an empty state plus WAL replay rather
/// than trusting suspect bytes.
pub fn read_snapshot(path: &Path) -> Option<Json> {
    let mut file = File::open(path).ok()?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).ok()?;
    let header = SNAPSHOT_MAGIC.len() + 12;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return None;
    }
    let len =
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if bytes.len() != header + len {
        return None;
    }
    let body = &bytes[header..];
    if fnv1a(body) != crc {
        return None;
    }
    let text = std::str::from_utf8(body).ok()?;
    Json::parse(text).ok()
}

/// What [`ShardDurability::open`] recovered, for the `serve.recover.*`
/// counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoverReport {
    /// Sessions restored from the snapshot.
    pub sessions: u64,
    /// WAL frames replayed on top of the snapshot.
    pub frames_replayed: u64,
    /// Invalid WAL tail frames discarded (torn writes, bit flips).
    pub truncated_frames: u64,
}

/// The durable-state driver one shard worker owns: write-ahead logging
/// of every state-bearing request plus periodic snapshot rotation.
pub struct ShardDurability {
    snap_path: PathBuf,
    wal_path: PathBuf,
    wal: WalWriter,
    snapshot_every: u64,
    frames_since_snapshot: u64,
}

fn snapshot_payload(engine: &Engine, poisoned: &HashSet<String>, last_frame_id: u64) -> Json {
    let mut quarantined: Vec<&String> = poisoned.iter().collect();
    quarantined.sort();
    Json::object(vec![
        ("version", Json::Int(1)),
        ("last_frame_id", Json::Int(last_frame_id as i64)),
        (
            "poisoned",
            Json::Array(quarantined.into_iter().map(Json::str).collect()),
        ),
        ("sessions", engine.state_save()),
    ])
}

/// Replays one recovered request into the engine, mirroring the live
/// shard-worker semantics exactly — including the test failpoint, so a
/// panic that poisoned a session live re-poisons it on replay.
fn replay_request(
    req: Request,
    failpoint: Option<&str>,
    engine: &mut Engine,
    poisoned: &mut HashSet<String>,
) {
    match req {
        Request::Init(spec) => {
            poisoned.remove(&spec.session);
            let _ = engine.handle_init(spec);
        }
        Request::Ingest {
            session,
            records,
            seq,
        } => {
            if poisoned.contains(&session) {
                return;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(marker) = failpoint {
                    if session.contains(marker) {
                        panic!("failpoint hit for session {session:?}");
                    }
                }
                engine.handle_ingest(&session, &records, seq)
            }));
            if outcome.is_err() {
                engine.remove_session(&session);
                poisoned.insert(session);
            }
        }
        // estimate/health/shutdown never reach the WAL.
        _ => {}
    }
}

impl ShardDurability {
    /// Opens (recovering if needed) the durable state for `shard` under
    /// `dir`, restoring into `engine`/`poisoned`. See the module docs for
    /// the recovery invariants. On return the directory holds a fresh
    /// snapshot of the recovered state and an empty WAL.
    pub fn open(
        dir: &Path,
        shard: usize,
        snapshot_every: u64,
        failpoint: Option<&str>,
        engine: &mut Engine,
        poisoned: &mut HashSet<String>,
    ) -> io::Result<(Self, RecoverReport)> {
        assert!(snapshot_every > 0, "snapshot interval must be positive");
        fs::create_dir_all(dir)?;
        let snap_path = snapshot_path(dir, shard);
        let wal_path = wal_path(dir, shard);
        let mut report = RecoverReport::default();
        let mut last_covered = 0u64;
        if let Some(payload) = read_snapshot(&snap_path) {
            // A snapshot that parses but does not restore is treated like
            // a corrupt one: nothing is installed (restore is atomic) and
            // the WAL replays onto an empty engine.
            if payload.get("version").and_then(Json::as_u64) == Some(1) {
                if let Some(sessions) = payload.get("sessions") {
                    if let Ok(n) = engine.restore_sessions(sessions) {
                        report.sessions = n as u64;
                        last_covered = payload
                            .get("last_frame_id")
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        if let Some(list) =
                            payload.get("poisoned").and_then(Json::as_array)
                        {
                            for s in list {
                                if let Some(id) = s.as_str() {
                                    poisoned.insert(id.to_string());
                                }
                            }
                        }
                    }
                }
            }
        }
        let wal = read_wal(&wal_path)?;
        report.truncated_frames = wal.truncated;
        let mut max_id = last_covered;
        for frame in wal.frames {
            if frame.id <= last_covered {
                continue;
            }
            max_id = frame.id;
            // Binary batch frames are logged verbatim (magic byte first);
            // everything else is a JSON request line. Either way a payload
            // that no longer decodes is skipped, not fatal: the WAL is a
            // redo log, and an undecodable frame cannot have been applied.
            let req = if frame.payload.first() == Some(&crate::frame::FRAME_MAGIC[0]) {
                match crate::frame::decode(&frame.payload) {
                    Ok(batch) => Request::Ingest {
                        session: batch.session,
                        records: batch.records,
                        seq: batch.seq,
                    },
                    Err(_) => continue,
                }
            } else {
                let Ok(text) = std::str::from_utf8(&frame.payload) else {
                    continue;
                };
                let Ok(req) = Request::parse(text) else {
                    continue;
                };
                req
            };
            replay_request(req, failpoint, engine, poisoned);
            report.frames_replayed += 1;
        }
        // Self-heal: persist the recovered state, then start a new WAL.
        // A crash between the two leaves old frames whose ids are all
        // covered by the new snapshot — they replay as no-ops.
        let next_id = max_id + 1;
        write_snapshot(&snap_path, &snapshot_payload(engine, poisoned, next_id - 1))?;
        let wal = WalWriter::create(&wal_path, next_id)?;
        Ok((
            Self {
                snap_path,
                wal_path,
                wal,
                snapshot_every,
                frames_since_snapshot: 0,
            },
            report,
        ))
    }

    /// Appends one request payload to the WAL, write-ahead of applying
    /// it. The payload is either a canonical JSON request line or a
    /// verbatim binary batch frame — recovery distinguishes the two by
    /// the leading magic byte. Returns the bytes appended (frame header
    /// included).
    pub fn log_request(&mut self, payload: &[u8]) -> io::Result<usize> {
        let before = self.wal.bytes_written();
        self.wal.append(payload)?;
        self.frames_since_snapshot += 1;
        Ok((self.wal.bytes_written() - before) as usize)
    }

    /// Rotates to a fresh snapshot once `snapshot_every` frames have been
    /// logged since the last one. Returns whether a snapshot was written.
    pub fn maybe_snapshot(
        &mut self,
        engine: &Engine,
        poisoned: &HashSet<String>,
    ) -> io::Result<bool> {
        if self.frames_since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.snapshot_now(engine, poisoned)?;
        Ok(true)
    }

    /// Unconditionally snapshots the current state and starts a new WAL.
    /// Ordering matters: the snapshot (fsynced, atomic) lands first, so a
    /// crash before the WAL truncation leaves only frames the snapshot
    /// already covers.
    pub fn snapshot_now(
        &mut self,
        engine: &Engine,
        poisoned: &HashSet<String>,
    ) -> io::Result<()> {
        let last_frame_id = self.wal.next_id() - 1;
        write_snapshot(
            &self.snap_path,
            &snapshot_payload(engine, poisoned, last_frame_id),
        )?;
        self.wal = WalWriter::create(&self.wal_path, last_frame_id + 1)?;
        self.frames_since_snapshot = 0;
        Ok(())
    }

    /// The id the next WAL frame will carry (monotonic across rotations).
    pub fn next_frame_id(&self) -> u64 {
        self.wal.next_id()
    }

    /// WAL frames appended since the last snapshot rotation — the
    /// replay debt a crash right now would incur (the `serve.wal.lag`
    /// gauge).
    pub fn frames_since_snapshot(&self) -> u64 {
        self.frames_since_snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ddn-snap-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_file_round_trips_and_rejects_corruption() {
        let dir = scratch("roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = snapshot_path(&dir, 0);
        let payload = Json::object(vec![("version", Json::Int(1)), ("x", Json::str("y"))]);
        write_snapshot(&path, &payload).unwrap();
        assert_eq!(read_snapshot(&path), Some(payload));

        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&path), None, "flipped byte must fail the crc");

        fs::write(&path, b"").unwrap();
        assert_eq!(read_snapshot(&path), None);
        assert_eq!(read_snapshot(&dir.join("missing.snap")), None);
    }

    #[test]
    fn meta_guard_pins_the_shard_count() {
        let dir = scratch("meta");
        check_meta(&dir, 4).unwrap();
        check_meta(&dir, 4).unwrap();
        let err = check_meta(&dir, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shard count"), "{err}");
    }

    #[test]
    fn open_on_an_empty_dir_recovers_nothing_and_self_heals() {
        let dir = scratch("empty");
        let mut engine = Engine::new();
        let mut poisoned = HashSet::new();
        let (d, report) =
            ShardDurability::open(&dir, 0, 8, None, &mut engine, &mut poisoned).unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(report.truncated_frames, 0);
        assert_eq!(d.next_frame_id(), 1);
        assert!(snapshot_path(&dir, 0).exists());
        assert!(wal_path(&dir, 0).exists());
    }
}
