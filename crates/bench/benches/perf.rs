//! Microbenchmarks of the building blocks: estimator throughput versus
//! trace size, reward-model fit/predict, discrete-event simulator
//! throughput, and change-point detection. Timings land in
//! `BENCH_perf.json`.

use ddn_bench::Suite;
use ddn_estimators::{
    ActionEmbedding, AdaptiveDr, AdaptiveIps, AdaptiveWeights, CrossFitDr, DoublyRobust,
    Estimator, Ips, MarginalizedDr, SeqDr,
};
use ddn_models::{ForestConfig, ForestRegressor, KnnConfig, KnnRegressor, TabularMeanModel};
use ddn_netsim::{small_world, wise_like_tiered, EventQueue, RateProfile, SimTime};
use ddn_policy::{LookupPolicy, UniformRandomPolicy};
use ddn_stats::changepoint::{pelt, CostModel, Penalty};
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

fn synthetic_trace(n: usize, seed: u64) -> Trace {
    let schema = ContextSchema::builder()
        .categorical("g", 8)
        .numeric("x")
        .build();
    let space = DecisionSpace::of(&["a", "b", "c", "d"]);
    let mut rng = Xoshiro256::seed_from(seed);
    let records = (0..n)
        .map(|_| {
            let g = rng.index(8) as u32;
            let x = rng.range_f64(0.0, 100.0);
            let d = rng.index(4);
            let ctx = Context::build(&schema)
                .set_cat("g", g)
                .set_numeric("x", x)
                .finish();
            let reward = g as f64 + d as f64 + 0.01 * x;
            TraceRecord::new(ctx, Decision::from_index(d), reward).with_propensity(0.25)
        })
        .collect();
    Trace::from_records(schema, space, records).unwrap()
}

fn bench_estimators(suite: &mut Suite) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let trace = synthetic_trace(n, 42);
        let policy = LookupPolicy::constant(trace.space().clone(), 2);
        let model = TabularMeanModel::fit_trace(&trace, 1.0);
        suite.bench_throughput(&format!("estimator/ips/{n}"), n as u64, || {
            Ips::new().estimate(&trace, &policy).unwrap().value
        });
        suite.bench_throughput(&format!("estimator/dr_tabular/{n}"), n as u64, || {
            DoublyRobust::new(&model)
                .estimate(&trace, &policy)
                .unwrap()
                .value
        });
        if n <= 10_000 {
            suite.bench_throughput(&format!("estimator/crossfit_dr_tabular/{n}"), n as u64, || {
                let est = CrossFitDr::new(5, |tr: &ddn_trace::Trace| {
                    TabularMeanModel::fit_trace(tr, 1.0)
                });
                est.estimate(&trace, &policy).unwrap().value
            });
        }
    }
}

fn bench_models(suite: &mut Suite) {
    for &n in &[1_000usize, 10_000] {
        let trace = synthetic_trace(n, 43);
        suite.bench_throughput(&format!("model_fit/tabular/{n}"), n as u64, || {
            TabularMeanModel::fit_trace(&trace, 1.0)
        });
        suite.bench_throughput(&format!("model_fit/knn_fit/{n}"), n as u64, || {
            KnnRegressor::fit(&trace, KnnConfig::default())
        });
        if n <= 1_000 {
            suite.bench_throughput(&format!("model_fit/forest_fit_10trees/{n}"), n as u64, || {
                ForestRegressor::fit(
                    &trace,
                    ForestConfig {
                        trees: 10,
                        ..Default::default()
                    },
                )
            });
        }
    }
}

fn bench_event_queue(suite: &mut Suite) {
    suite.bench_throughput("netsim/event_queue_100k", 100_000, || {
        let mut q = EventQueue::new();
        let mut rng = Xoshiro256::seed_from(7);
        for i in 0..100_000u64 {
            q.schedule(SimTime::new(rng.next_f64() * 1e6 + i as f64), i);
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        count
    });
    let world = small_world(RateProfile::Constant(10.0), 200.0);
    let policy = UniformRandomPolicy::new(world.space().clone());
    suite.bench("netsim/world_run_2k_requests", || {
        world.run(&policy, 9).trace.len()
    });
    let tiered = wise_like_tiered(RateProfile::Constant(10.0), 200.0);
    let tiered_policy = UniformRandomPolicy::new(tiered.space().clone());
    suite.bench("netsim/tiered_world_run_2k_requests", || {
        tiered.run(&tiered_policy, 9).trace.len()
    });
}

fn bench_changepoint(suite: &mut Suite) {
    for &n in &[500usize, 5_000] {
        let mut rng = Xoshiro256::seed_from(11);
        let mut series = Normal::new(0.0, 1.0).sample_n(&mut rng, n / 2);
        series.extend(Normal::new(4.0, 1.0).sample_n(&mut rng, n / 2));
        suite.bench_throughput(&format!("changepoint/pelt/{n}"), n as u64, || {
            pelt(&series, CostModel::NormalMean, Penalty::Bic, 10)
        });
    }
}

/// Telemetry cost, both ways: the *disabled* path (no collector — what
/// every other benchmark in this suite pays, budgeted at <2% overhead)
/// versus the *enabled* path (collector installed, health recorded per
/// estimate). Returns a health snapshot for attachment to the suite JSON.
fn bench_telemetry(suite: &mut Suite) -> ddn_stats::Json {
    let n = 10_000usize;
    let trace = synthetic_trace(n, 44);
    let policy = LookupPolicy::constant(trace.space().clone(), 2);
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    suite.bench_throughput(&format!("telemetry/dr_disabled/{n}"), n as u64, || {
        DoublyRobust::new(&model)
            .estimate(&trace, &policy)
            .unwrap()
            .value
    });
    suite.bench_throughput(&format!("telemetry/dr_collected/{n}"), n as u64, || {
        let (v, _collector) = ddn_telemetry::collect(|| {
            DoublyRobust::new(&model)
                .estimate(&trace, &policy)
                .unwrap()
                .value
        });
        v
    });

    let ((), collector) = ddn_telemetry::collect(|| {
        let _span = ddn_telemetry::span("bench");
        Ips::new().estimate(&trace, &policy).unwrap();
        DoublyRobust::new(&model).estimate(&trace, &policy).unwrap();
    });
    let mut snap = ddn_telemetry::TelemetrySnapshot::from_runs(&[collector]);
    snap.set_threads(1);
    snap.to_json()
}

/// Throughput of the estimator-menu extensions (DESIGN.md §16) over a
/// 10k-record synthetic trace, summarized as a `menu` section so
/// `bench_floors.json` can pin a floor under the heaviest of them
/// (SeqDR: per-record DM terms plus the per-trajectory backward fold).
fn bench_menu(suite: &mut Suite) -> ddn_stats::Json {
    let n = 10_000usize;
    let trace = synthetic_trace(n, 45);
    let policy = LookupPolicy::constant(trace.space().clone(), 2);
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    // Two groups of two arms each — real marginalization, not identity.
    let embedding = || ActionEmbedding::from_groups(vec![0, 0, 1, 1]);
    suite.bench_throughput(&format!("menu/adaptive_ips/{n}"), n as u64, || {
        AdaptiveIps::new(AdaptiveWeights::Stabilized)
            .estimate(&trace, &policy)
            .unwrap()
            .value
    });
    suite.bench_throughput(&format!("menu/adaptive_dr/{n}"), n as u64, || {
        AdaptiveDr::new(&model, AdaptiveWeights::Stabilized)
            .estimate(&trace, &policy)
            .unwrap()
            .value
    });
    suite.bench_throughput(&format!("menu/mdr/{n}"), n as u64, || {
        MarginalizedDr::new(
            &model,
            embedding(),
            Box::new(UniformRandomPolicy::new(trace.space().clone())),
        )
        .estimate(&trace, &policy)
        .unwrap()
        .value
    });
    suite.bench_throughput(&format!("menu/seqdr/{n}"), n as u64, || {
        SeqDr::new(&model, 4).estimate(&trace, &policy).unwrap().value
    });

    let per_sec = |name: &str| {
        let r = suite
            .results()
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark just registered");
        n as f64 / (r.mean_ns * 1e-9)
    };
    ddn_stats::Json::object(vec![
        ("records", ddn_stats::Json::Int(n as i64)),
        (
            "adaptive_ips_records_per_sec",
            ddn_stats::Json::Num(per_sec(&format!("menu/adaptive_ips/{n}"))),
        ),
        (
            "adaptive_dr_records_per_sec",
            ddn_stats::Json::Num(per_sec(&format!("menu/adaptive_dr/{n}"))),
        ),
        (
            "mdr_records_per_sec",
            ddn_stats::Json::Num(per_sec(&format!("menu/mdr/{n}"))),
        ),
        (
            "seqdr_records_per_sec",
            ddn_stats::Json::Num(per_sec(&format!("menu/seqdr/{n}"))),
        ),
    ])
}

fn main() {
    let mut suite = Suite::new("perf");
    bench_estimators(&mut suite);
    bench_models(&mut suite);
    bench_event_queue(&mut suite);
    bench_changepoint(&mut suite);
    let health = bench_telemetry(&mut suite);
    suite.attach_telemetry(health);
    // Shared-score batching: pin the batched-vs-unbatched figure7-suite
    // speedup into BENCH_perf.json alongside the raw timings.
    let eval_batch = ddn_bench::eval_batch::bench_eval_batch(&mut suite);
    suite.attach_section("eval_batch", eval_batch);
    // Estimator-menu throughput: the summary section bench_floors.json
    // pins its menu floor against.
    let menu = bench_menu(&mut suite);
    suite.attach_section("menu", menu);
    suite.finish();
}
