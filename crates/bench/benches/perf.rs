//! Microbenchmarks of the building blocks: estimator throughput versus
//! trace size, reward-model fit/predict, discrete-event simulator
//! throughput, and change-point detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddn_estimators::{CrossFitDr, DoublyRobust, Estimator, Ips};
use ddn_models::{ForestConfig, ForestRegressor, KnnConfig, KnnRegressor, TabularMeanModel};
use ddn_netsim::{small_world, wise_like_tiered, EventQueue, RateProfile, SimTime};
use ddn_policy::{LookupPolicy, UniformRandomPolicy};
use ddn_stats::changepoint::{pelt, CostModel, Penalty};
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};
use std::hint::black_box;

fn synthetic_trace(n: usize, seed: u64) -> Trace {
    let schema = ContextSchema::builder()
        .categorical("g", 8)
        .numeric("x")
        .build();
    let space = DecisionSpace::of(&["a", "b", "c", "d"]);
    let mut rng = Xoshiro256::seed_from(seed);
    let records = (0..n)
        .map(|_| {
            let g = rng.index(8) as u32;
            let x = rng.range_f64(0.0, 100.0);
            let d = rng.index(4);
            let ctx = Context::build(&schema)
                .set_cat("g", g)
                .set_numeric("x", x)
                .finish();
            let reward = g as f64 + d as f64 + 0.01 * x;
            TraceRecord::new(ctx, Decision::from_index(d), reward).with_propensity(0.25)
        })
        .collect();
    Trace::from_records(schema, space, records).unwrap()
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_throughput");
    for &n in &[1_000usize, 10_000, 100_000] {
        let trace = synthetic_trace(n, 42);
        let policy = LookupPolicy::constant(trace.space().clone(), 2);
        let model = TabularMeanModel::fit_trace(&trace, 1.0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ips", n), &n, |b, _| {
            b.iter(|| black_box(Ips::new().estimate(&trace, &policy).unwrap().value))
        });
        group.bench_with_input(BenchmarkId::new("dr_tabular", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    DoublyRobust::new(&model)
                        .estimate(&trace, &policy)
                        .unwrap()
                        .value,
                )
            })
        });
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("crossfit_dr_tabular", n), &n, |b, _| {
                b.iter(|| {
                    let est = CrossFitDr::new(5, |tr: &ddn_trace::Trace| {
                        TabularMeanModel::fit_trace(tr, 1.0)
                    });
                    black_box(est.estimate(&trace, &policy).unwrap().value)
                })
            });
        }
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit");
    for &n in &[1_000usize, 10_000] {
        let trace = synthetic_trace(n, 43);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("tabular", n), &n, |b, _| {
            b.iter(|| black_box(TabularMeanModel::fit_trace(&trace, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("knn_fit", n), &n, |b, _| {
            b.iter(|| black_box(KnnRegressor::fit(&trace, KnnConfig::default())))
        });
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("forest_fit_10trees", n), &n, |b, _| {
                b.iter(|| {
                    black_box(ForestRegressor::fit(
                        &trace,
                        ForestConfig {
                            trees: 10,
                            ..Default::default()
                        },
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("event_queue_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Xoshiro256::seed_from(7);
            for i in 0..100_000u64 {
                q.schedule(SimTime::new(rng.next_f64() * 1e6 + i as f64), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
    group.bench_function("world_run_2k_requests", |b| {
        let world = small_world(RateProfile::Constant(10.0), 200.0);
        let policy = UniformRandomPolicy::new(world.space().clone());
        b.iter(|| black_box(world.run(&policy, 9).trace.len()))
    });
    group.bench_function("tiered_world_run_2k_requests", |b| {
        let world = wise_like_tiered(RateProfile::Constant(10.0), 200.0);
        let policy = UniformRandomPolicy::new(world.space().clone());
        b.iter(|| black_box(world.run(&policy, 9).trace.len()))
    });
    group.finish();
}

fn bench_changepoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("changepoint");
    for &n in &[500usize, 5_000] {
        let mut rng = Xoshiro256::seed_from(11);
        let mut series = Normal::new(0.0, 1.0).sample_n(&mut rng, n / 2);
        series.extend(Normal::new(4.0, 1.0).sample_n(&mut rng, n / 2));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pelt", n), &n, |b, _| {
            b.iter(|| black_box(pelt(&series, CostModel::NormalMean, Penalty::Bic, 10)))
        });
    }
    group.finish();
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(10);
    targets = bench_estimators, bench_models, bench_event_queue, bench_changepoint
}
criterion_main!(perf);
