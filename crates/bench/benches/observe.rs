//! Observability-overhead bench, writing `BENCH_observe.json` with an
//! `observe` summary section pinning the cost of the live tracing
//! plane (ISSUE 7 / DESIGN.md §13).
//!
//! The same loopback ingest workload runs twice against real servers —
//! one with `trace_requests` on (the default: per-request queue-wait
//! and handler histograms plus flight-recorder events), one with it
//! off — and the section reports both throughputs and whether the
//! traced server stays within 5% of the untraced one. The whole point
//! of the plane is to watch the collection pipeline without perturbing
//! it; this bench is that claim, measured.
//!
//! `DDN_OBSERVE_RUNS` overrides the record count (CI smoke uses a
//! small value); `DDN_BENCH_WARMUP` / `DDN_BENCH_ITERS` crank
//! iterations as for every other suite.

use ddn_bench::Suite;
use ddn_policy::{Policy, UniformRandomPolicy};
use ddn_serve::{serve, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, DecisionSpace, TraceRecord};

/// Maximum acceptable throughput cost of request tracing, as a
/// fraction of untraced throughput.
const MAX_OVERHEAD_FRACTION: f64 = 0.05;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize) -> Vec<TraceRecord> {
    let s = schema();
    let logger = UniformRandomPolicy::new(space());
    let mut rng = Xoshiro256::seed_from(4_2107);
    (0..n)
        .map(|_| {
            let c = Context::build(&s).set_cat("g", rng.index(2) as u32).finish();
            let (d, p) = logger.sample_with_prob(&c, &mut rng);
            let reward = 2.0 + 3.0 * d.index() as f64;
            TraceRecord::new(c, d, reward).with_propensity(p)
        })
        .collect()
}

fn throughput(suite: &Suite, bench_name: &str, n: u64) -> f64 {
    let r = suite
        .results()
        .iter()
        .find(|r| r.name == bench_name)
        .expect("bench ran");
    n as f64 / (r.mean_ns / 1e9)
}

fn main() {
    let n: usize = std::env::var("DDN_OBSERVE_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let batch = 256usize;
    let recs = records(n);

    let mut suite = Suite::new("observe");

    let run_ingest = |suite: &mut Suite, name: &str, trace: bool, session: &str| {
        let handle = serve(&ServeConfig {
            trace_requests: trace,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = handle.local_addr().to_string();
        let mut round = 0usize;
        suite.bench_throughput(name, n as u64, || {
            // A fresh session per iteration keeps dedup out of the way
            // without restarting the server (the registry is long-lived
            // by design — histograms accumulate across iterations).
            round += 1;
            let session = format!("{session}-{round}");
            let mut client = ServeClient::connect(&addr).expect("loopback connect");
            client
                .init(&session, &schema(), &space(), &["ips"], "b", 0.0, None)
                .expect("init accepted");
            for chunk in recs.chunks(batch) {
                client.ingest(&session, chunk).expect("ingest accepted");
            }
            client.estimate(&session).expect("estimate accepted")
        });
        handle.shutdown();
    };

    run_ingest(&mut suite, "observe/tcp_ingest_traced", true, "traced");
    run_ingest(&mut suite, "observe/tcp_ingest_untraced", false, "untraced");

    let traced_rps = throughput(&suite, "observe/tcp_ingest_traced", n as u64);
    let untraced_rps = throughput(&suite, "observe/tcp_ingest_untraced", n as u64);
    let overhead = 1.0 - traced_rps / untraced_rps;
    let within = overhead <= MAX_OVERHEAD_FRACTION;
    if !within {
        eprintln!(
            "warning: request tracing costs {:.1}% of ingest throughput \
             (pinned ceiling {:.0}%)",
            overhead * 100.0,
            MAX_OVERHEAD_FRACTION * 100.0
        );
    }
    suite.attach_section(
        "observe",
        Json::Object(vec![
            ("records".into(), Json::Int(n as i64)),
            ("batch".into(), Json::Int(batch as i64)),
            ("traced_records_per_sec".into(), Json::Num(traced_rps)),
            ("untraced_records_per_sec".into(), Json::Num(untraced_rps)),
            ("overhead_fraction".into(), Json::Num(overhead)),
            (
                "max_overhead_fraction".into(),
                Json::Num(MAX_OVERHEAD_FRACTION),
            ),
            ("within_5pct".into(), Json::Bool(within)),
        ]),
    );
    suite.finish();
}
