//! Benchmarks for the ablation studies (reduced run counts). Timings land
//! in `BENCH_ablations.json`.

use ddn_bench::Suite;
use ddn_scenarios::ablations;

fn main() {
    let mut suite = Suite::new("ablations");
    suite.bench("ablation_a_randomness/3runs", || {
        ablations::ablation_randomness(&[0.05, 0.5], 3, 91_001)
    });
    suite.bench("ablation_b_trace_size/3runs", || {
        ablations::ablation_trace_size(&[0.5, 2.0], 3, 91_002)
    });
    suite.bench("ablation_c_dimensionality/3runs", || {
        ablations::ablation_dimensionality(&[0, 4], 3, 91_003)
    });
    suite.bench("ablation_d_nonstationary/3runs", || {
        ablations::ablation_nonstationary(3, 91_004)
    });
    suite.bench("ablation_e_state/2runs", || {
        ablations::ablation_state(2, 91_005)
    });
    suite.bench("ablation_f_coupling/2runs", || {
        ablations::ablation_coupling(2, 91_006)
    });
    suite.bench("ablation_g_second_order/3runs", || {
        ablations::ablation_second_order(&[0.0, 3.0], &[0.0, 0.8], 3, 91_007)
    });
    suite.bench("ablation_h_selection/3runs", || {
        ablations::ablation_selection(&[200], 3, 91_008)
    });
    suite.bench("ablation_i_calibration/3runs", || {
        ablations::ablation_calibration(&[0.5], 3, 91_009)
    });
    suite.finish();
}
