//! Criterion benchmarks for the ablation studies (reduced run counts).

use criterion::{criterion_group, criterion_main, Criterion};
use ddn_scenarios::ablations;
use std::hint::black_box;

fn bench_randomness(c: &mut Criterion) {
    c.bench_function("ablation_a_randomness/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_randomness(&[0.05, 0.5], 3, 91_001)))
    });
}

fn bench_trace_size(c: &mut Criterion) {
    c.bench_function("ablation_b_trace_size/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_trace_size(&[0.5, 2.0], 3, 91_002)))
    });
}

fn bench_dimensionality(c: &mut Criterion) {
    c.bench_function("ablation_c_dimensionality/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_dimensionality(&[0, 4], 3, 91_003)))
    });
}

fn bench_nonstationary(c: &mut Criterion) {
    c.bench_function("ablation_d_nonstationary/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_nonstationary(3, 91_004)))
    });
}

fn bench_state(c: &mut Criterion) {
    c.bench_function("ablation_e_state/2runs", |b| {
        b.iter(|| black_box(ablations::ablation_state(2, 91_005)))
    });
}

fn bench_coupling(c: &mut Criterion) {
    c.bench_function("ablation_f_coupling/2runs", |b| {
        b.iter(|| black_box(ablations::ablation_coupling(2, 91_006)))
    });
}

fn bench_second_order(c: &mut Criterion) {
    c.bench_function("ablation_g_second_order/3runs", |b| {
        b.iter(|| {
            black_box(ablations::ablation_second_order(
                &[0.0, 3.0],
                &[0.0, 0.8],
                3,
                91_007,
            ))
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    c.bench_function("ablation_h_selection/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_selection(&[200], 3, 91_008)))
    });
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("ablation_i_calibration/3runs", |b| {
        b.iter(|| black_box(ablations::ablation_calibration(&[0.5], 3, 91_009)))
    });
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_randomness, bench_trace_size, bench_dimensionality,
        bench_nonstationary, bench_state, bench_coupling, bench_second_order,
        bench_selection, bench_calibration
}
criterion_main!(ablation_benches);
