//! Chaos soak benchmark, writing `BENCH_soak.json` with a `soak`
//! summary section: sustained ingest throughput over loopback TCP while
//! a seeded fault plan (1% per-record fault rate) injects partial I/O,
//! delays, mid-line disconnects, and error returns into the client's
//! transport. The run also re-checks the exactly-once and estimate
//! parity contracts — a soak that loses records measures nothing.
//!
//! `DDN_SOAK_RUNS` overrides the record count (CI smoke uses a small
//! value); `DDN_BENCH_WARMUP` / `DDN_BENCH_ITERS` crank iterations as
//! for every other suite.

use ddn_bench::Suite;
use ddn_serve::{
    serve, ClientConfig, FaultState, FaultyTransport, ServeClient, ServeConfig, TcpTransport,
    Transport,
};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{Dir, FaultCounts, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::time::Duration;

const FAULT_RATE: f64 = 0.01;
const SEED: u64 = 1107;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(SEED);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            TraceRecord::new(c, Decision::from_index(d), 2.0 + g as f64 + 3.0 * d as f64)
                .with_propensity(p)
        })
        .collect()
}

fn plan_for(recs: &[TraceRecord], batch: usize) -> FaultPlan {
    let bytes_per_record = recs[0].to_json().to_string().len() as u64 + 16;
    let write_horizon = (recs.len() as u64 * bytes_per_record).max(1 << 12);
    let read_horizon = ((recs.len().div_ceil(batch) as u64) * 96).max(1 << 10);
    let faults = ((recs.len() as f64 * FAULT_RATE).round() as usize).max(1);
    let mut plan = FaultPlan::generate(
        SEED,
        &FaultPlanConfig {
            faults,
            write_horizon,
            read_horizon,
            max_delay_micros: 50,
            max_partial_bytes: 32,
        },
    );
    if !plan.has_kind(&FaultKind::Disconnect) {
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: read_horizon / 3,
            kind: FaultKind::Disconnect,
        });
    }
    plan
}

fn main() {
    let n: usize = std::env::var("DDN_SOAK_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let batch = 256usize;
    let recs = records(n);
    let plan = plan_for(&recs, batch);

    let handle = serve(&ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();

    let mut suite = Suite::new("soak");
    // Stats from the most recent iteration; every iteration replays the
    // same plan from a fresh cursor, so they are all identical anyway.
    let mut last_retries = 0u64;
    let mut last_injected = FaultCounts::default();
    let mut session_no = 0u64;

    suite.bench_throughput("soak/faulted_tcp_replay", n as u64, || {
        let state = FaultState::new(plan.cursor());
        let connector_state = state.clone();
        let dial = addr.clone();
        let mut client = ServeClient::from_connector(
            Box::new(move || {
                let inner = Box::new(TcpTransport::connect(&dial)?) as Box<dyn Transport>;
                Ok(Box::new(FaultyTransport::new(inner, connector_state.clone()))
                    as Box<dyn Transport>)
            }),
            ClientConfig {
                read_timeout: Duration::from_secs(10),
                max_retries: plan.len() as u32 + 2,
                backoff_base: Duration::from_millis(1),
            },
        )
        .expect("loopback connect");
        // A fresh session per iteration keeps the server-side record
        // tally attributable to this replay alone.
        session_no += 1;
        let session = format!("soak-{session_no}");
        client
            .init(&session, &schema(), &space(), &["ips"], "b", 0.0, None)
            .expect("init outlasts the plan");
        for chunk in recs.chunks(batch) {
            client.ingest(&session, chunk).expect("ingest outlasts the plan");
        }
        let est = client.estimate(&session).expect("estimate outlasts the plan");
        assert_eq!(
            est.get("n").and_then(Json::as_i64),
            Some(n as i64),
            "exactly-once violated under the soak plan"
        );
        last_retries = client.stats().retry_attempts();
        last_injected = state.injected();
        est
    });

    let replays = handle.stats().dedup_replays();
    let r = suite
        .results()
        .iter()
        .find(|r| r.name == "soak/faulted_tcp_replay")
        .expect("bench ran");
    let rps = n as f64 / (r.mean_ns / 1e9);

    suite.attach_section(
        "soak",
        Json::Object(vec![
            ("records".into(), Json::Int(n as i64)),
            ("batch".into(), Json::Int(batch as i64)),
            ("fault_rate".into(), Json::Num(FAULT_RATE)),
            ("scheduled_faults".into(), Json::Int(plan.len() as i64)),
            ("records_per_sec".into(), Json::Num(rps)),
            ("retries".into(), Json::Int(last_retries as i64)),
            ("dedup_replays".into(), Json::Int(replays as i64)),
            (
                "faults".into(),
                Json::Object(vec![
                    ("partial".into(), Json::Int(last_injected.partial as i64)),
                    ("delay".into(), Json::Int(last_injected.delay as i64)),
                    (
                        "disconnect".into(),
                        Json::Int(last_injected.disconnect as i64),
                    ),
                    ("error".into(), Json::Int(last_injected.error as i64)),
                ]),
            ),
        ]),
    );
    handle.shutdown();
    suite.finish();
}
