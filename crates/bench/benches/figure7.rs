//! Benchmarks for the three Figure 7 panels.
//!
//! Each benchmark runs a reduced-run version of the corresponding
//! experiment (the statistical reproduction itself lives in the `figures`
//! binary at the full 50-run protocol; here we measure how fast the
//! pipeline is so regressions in the substrates show up). Timings land in
//! `BENCH_figure7.json`.

use ddn_bench::Suite;
use ddn_scenarios::figure7a::{figure7a_with, Figure7aConfig};
use ddn_scenarios::figure7b::{figure7b_instrumented, figure7b_with, Figure7bConfig};
use ddn_scenarios::figure7c::{figure7c_with, Figure7cConfig};
use ddn_telemetry::TelemetrySnapshot;

fn main() {
    let mut suite = Suite::new("figure7");
    suite.bench("figure7a/5runs", || {
        let cfg = Figure7aConfig {
            runs: 5,
            ..Default::default()
        };
        figure7a_with(&cfg)
    });
    suite.bench("figure7b/5runs", || {
        let cfg = Figure7bConfig {
            runs: 5,
            ..Default::default()
        };
        figure7b_with(&cfg)
    });
    // The instrumented variant doubles as the telemetry source for the
    // suite JSON (and as a plain-vs-instrumented timing comparison).
    let mut snapshot: Option<TelemetrySnapshot> = None;
    suite.bench("figure7b/5runs_instrumented", || {
        let cfg = Figure7bConfig {
            runs: 5,
            ..Default::default()
        };
        let (table, snap) = figure7b_instrumented(&cfg);
        snapshot = Some(snap);
        table
    });
    suite.bench("figure7c/5runs", || {
        let cfg = Figure7cConfig {
            runs: 5,
            ..Default::default()
        };
        figure7c_with(&cfg)
    });
    if let Some(snap) = snapshot {
        suite.attach_telemetry(snap.to_json());
    }
    suite.finish();
}
