//! Criterion benchmarks for the three Figure 7 panels.
//!
//! Each benchmark runs a reduced-run version of the corresponding
//! experiment (the statistical reproduction itself lives in the `figures`
//! binary at the full 50-run protocol; here we measure how fast the
//! pipeline is so regressions in the substrates show up).

use criterion::{criterion_group, criterion_main, Criterion};
use ddn_scenarios::figure7a::{figure7a_with, Figure7aConfig};
use ddn_scenarios::figure7b::{figure7b_with, Figure7bConfig};
use ddn_scenarios::figure7c::{figure7c_with, Figure7cConfig};
use std::hint::black_box;

fn bench_figure7a(c: &mut Criterion) {
    c.bench_function("figure7a/5runs", |b| {
        b.iter(|| {
            let cfg = Figure7aConfig {
                runs: 5,
                ..Default::default()
            };
            black_box(figure7a_with(&cfg))
        })
    });
}

fn bench_figure7b(c: &mut Criterion) {
    c.bench_function("figure7b/5runs", |b| {
        b.iter(|| {
            let cfg = Figure7bConfig {
                runs: 5,
                ..Default::default()
            };
            black_box(figure7b_with(&cfg))
        })
    });
}

fn bench_figure7c(c: &mut Criterion) {
    c.bench_function("figure7c/5runs", |b| {
        b.iter(|| {
            let cfg = Figure7cConfig {
                runs: 5,
                ..Default::default()
            };
            black_box(figure7c_with(&cfg))
        })
    });
}

criterion_group! {
    name = figure7;
    config = Criterion::default().sample_size(10);
    targets = bench_figure7a, bench_figure7b, bench_figure7c
}
criterion_main!(figure7);
