//! Benchmarks for the three Figure 7 panels.
//!
//! Each benchmark runs a reduced-run version of the corresponding
//! experiment (the statistical reproduction itself lives in the `figures`
//! binary at the full 50-run protocol; here we measure how fast the
//! pipeline is so regressions in the substrates show up). Timings land in
//! `BENCH_figure7.json`.

use ddn_bench::Suite;
use ddn_scenarios::figure7a::{figure7a_with, Figure7aConfig};
use ddn_scenarios::figure7b::{figure7b_with, Figure7bConfig};
use ddn_scenarios::figure7c::{figure7c_with, Figure7cConfig};

fn main() {
    let mut suite = Suite::new("figure7");
    suite.bench("figure7a/5runs", || {
        let cfg = Figure7aConfig {
            runs: 5,
            ..Default::default()
        };
        figure7a_with(&cfg)
    });
    suite.bench("figure7b/5runs", || {
        let cfg = Figure7bConfig {
            runs: 5,
            ..Default::default()
        };
        figure7b_with(&cfg)
    });
    suite.bench("figure7c/5runs", || {
        let cfg = Figure7cConfig {
            runs: 5,
            ..Default::default()
        };
        figure7c_with(&cfg)
    });
    suite.finish();
}
