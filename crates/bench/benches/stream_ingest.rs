//! Streaming-ingest throughput, writing `BENCH_stream.json` with a
//! `stream` summary section that pins the ingest-throughput floor.
//!
//! Three layers of the ddn-serve stack are timed over the same record
//! workload, so a regression can be localized at a glance:
//!
//! - `stream/online_ips_push` — the bare [`OnlineIps`] accumulator,
//!   the per-record cost floor of the whole service.
//! - `stream/engine_ingest` — the in-process [`ddn_serve::Engine`]
//!   (validation, propensity precheck, coupling monitor, full bank).
//! - `stream/tcp_replay` — the complete loopback round trip: JSON
//!   encode, TCP write, server parse/dispatch/ingest, reply.
//! - `stream/tcp_replay_binary` — the same round trip over the binary
//!   columnar batch frame; the summary pins its throughput at
//!   ≥[`BINARY_OVER_JSON_FLOOR`]× the JSON path, at bit-identical
//!   estimates.
//!
//! `DDN_STREAM_RUNS` overrides the record count (CI smoke uses a small
//! value); `DDN_BENCH_WARMUP` / `DDN_BENCH_ITERS` crank iterations as
//! for every other suite.

use ddn_bench::Suite;
use ddn_estimators::{OnlineEstimator, OnlineIps};
use ddn_policy::{LookupPolicy, Policy, UniformRandomPolicy};
use ddn_serve::{serve, Engine, Request, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, DecisionSpace, TraceRecord};

/// Minimum acceptable sustained ingest rate (records/second) on the
/// *online push* layer — deliberately conservative so the pin survives
/// slow CI machines while still catching an accidental O(n) in `push`.
const FLOOR_RECORDS_PER_SEC: f64 = 100_000.0;

/// Minimum acceptable `tcp_replay_binary / tcp_replay` throughput
/// ratio. The binary columnar frame exists to beat per-record JSON
/// encode/parse; a ratio collapse means someone put text back on the
/// hot path.
const BINARY_OVER_JSON_FLOOR: f64 = 5.0;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize) -> Vec<TraceRecord> {
    let s = schema();
    let logger = UniformRandomPolicy::new(space());
    let mut rng = Xoshiro256::seed_from(4_2107);
    (0..n)
        .map(|_| {
            let c = Context::build(&s).set_cat("g", rng.index(2) as u32).finish();
            let (d, p) = logger.sample_with_prob(&c, &mut rng);
            let reward = 2.0 + 3.0 * d.index() as f64;
            TraceRecord::new(c, d, reward).with_propensity(p)
        })
        .collect()
}

fn init_line(session: &str) -> String {
    let init = Json::Object(vec![
        ("verb".into(), Json::str("init")),
        ("session".into(), Json::str(session)),
        ("schema".into(), schema().to_json()),
        ("space".into(), space().to_json()),
        (
            "estimators".into(),
            Json::Array(vec![Json::str("ips")]),
        ),
        (
            "policy".into(),
            Json::Object(vec![
                ("kind".into(), Json::str("constant")),
                ("decision".into(), Json::str("b")),
            ]),
        ),
    ]);
    init.to_string()
}

fn throughput(suite: &Suite, bench_name: &str, n: u64) -> f64 {
    let r = suite
        .results()
        .iter()
        .find(|r| r.name == bench_name)
        .expect("bench ran");
    n as f64 / (r.mean_ns / 1e9)
}

fn main() {
    let n: usize = std::env::var("DDN_STREAM_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let batch = 256usize;
    let recs = records(n);

    let mut suite = Suite::new("stream");

    suite.bench_throughput("stream/online_ips_push", n as u64, || {
        let mut est = OnlineIps::new(
            space(),
            Box::new(LookupPolicy::constant(space(), 1)),
        )
        .expect("spaces match");
        for rec in &recs {
            est.push(rec).expect("records carry propensities");
        }
        est.estimate().expect("nonempty stream").value
    });

    let init_line = init_line("bench");
    suite.bench_throughput("stream/engine_ingest", n as u64, || {
        let mut engine = Engine::new();
        let spec = match Request::parse(&init_line).expect("valid init") {
            Request::Init(spec) => spec,
            _ => unreachable!("init line parses to Init"),
        };
        engine.handle_init(spec);
        let mut total = 0usize;
        for chunk in recs.chunks(batch) {
            let resp = engine.handle_ingest("bench", chunk, None);
            total += resp
                .get("accepted")
                .and_then(|v| v.as_u64())
                .unwrap_or(0) as usize;
        }
        assert_eq!(total, n, "every record must be accepted");
        total
    });

    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    // The timed region is connect + init + ingest: the replay path under
    // measurement. The estimate read happens once afterwards (it costs
    // the same on both encodings — it never touches the wire format —
    // and would otherwise drown the encode/parse difference at small
    // record counts).
    suite.bench_throughput("stream/tcp_replay", n as u64, || {
        let mut client = ServeClient::connect(&addr).expect("loopback connect");
        client
            .init("bench-tcp", &schema(), &space(), &["ips"], "b", 0.0, None)
            .expect("init accepted");
        for chunk in recs.chunks(batch) {
            client.ingest("bench-tcp", chunk).expect("ingest accepted");
        }
    });
    // Same workload, same batching, same server — only the ingest wire
    // encoding changes, so the ratio isolates the JSON encode/parse tax.
    suite.bench_throughput("stream/tcp_replay_binary", n as u64, || {
        let mut client = ServeClient::connect(&addr).expect("loopback connect");
        client
            .init("bench-bin", &schema(), &space(), &["ips"], "b", 0.0, None)
            .expect("init accepted");
        for chunk in recs.chunks(batch) {
            client
                .ingest_binary("bench-bin", chunk)
                .expect("binary ingest accepted");
        }
    });
    // Bit-identity check: each bench's final iteration left its session
    // holding exactly the workload, so the two estimates must agree to
    // the last bit for the throughput comparison to mean anything.
    let ips_bits = |est: &Json| -> u64 {
        est.get("estimates")
            .and_then(|e| e.get("ips"))
            .and_then(|e| e.get("value"))
            .and_then(Json::as_f64)
            .expect("estimate carries an ips value")
            .to_bits()
    };
    let mut check = ServeClient::connect(&addr).expect("loopback connect");
    let est_json = check.estimate("bench-tcp").expect("estimate accepted");
    let est_binary = check.estimate("bench-bin").expect("estimate accepted");
    assert_eq!(
        ips_bits(&est_json),
        ips_bits(&est_binary),
        "binary and JSON replay must serve bit-identical estimates"
    );
    handle.shutdown();

    let push_rps = throughput(&suite, "stream/online_ips_push", n as u64);
    let engine_rps = throughput(&suite, "stream/engine_ingest", n as u64);
    let tcp_rps = throughput(&suite, "stream/tcp_replay", n as u64);
    let binary_rps = throughput(&suite, "stream/tcp_replay_binary", n as u64);
    let binary_over_json = binary_rps / tcp_rps;
    if push_rps < FLOOR_RECORDS_PER_SEC {
        eprintln!(
            "warning: online push throughput {push_rps:.0} records/s \
             is below the pinned floor {FLOOR_RECORDS_PER_SEC:.0}"
        );
    }
    suite.attach_section(
        "stream",
        Json::Object(vec![
            ("records".into(), Json::Int(n as i64)),
            ("batch".into(), Json::Int(batch as i64)),
            (
                "floor_records_per_sec".into(),
                Json::Num(FLOOR_RECORDS_PER_SEC),
            ),
            ("online_push_records_per_sec".into(), Json::Num(push_rps)),
            ("engine_ingest_records_per_sec".into(), Json::Num(engine_rps)),
            ("tcp_replay_records_per_sec".into(), Json::Num(tcp_rps)),
            (
                "tcp_replay_binary_records_per_sec".into(),
                Json::Num(binary_rps),
            ),
            ("binary_over_json".into(), Json::Num(binary_over_json)),
            (
                "binary_over_json_floor".into(),
                Json::Num(BINARY_OVER_JSON_FLOOR),
            ),
            (
                "meets_floor".into(),
                Json::Bool(push_rps >= FLOOR_RECORDS_PER_SEC),
            ),
            (
                "meets_binary_floor".into(),
                Json::Bool(binary_over_json >= BINARY_OVER_JSON_FLOOR),
            ),
        ]),
    );
    suite.finish();
}
