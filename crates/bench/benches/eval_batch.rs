//! Standalone batched-vs-unbatched comparison, writing
//! `BENCH_eval_batch.json` with the `eval_batch` summary section
//! (speedup ratio, thread count, raw means). `reproduce.sh ci` runs this
//! target with reduced iteration counts as the shared-score smoke test;
//! the full-size numbers also land in `BENCH_perf.json` via the `perf`
//! target.

use ddn_bench::eval_batch::bench_eval_batch;
use ddn_bench::Suite;

fn main() {
    let mut suite = Suite::new("eval_batch");
    let summary = bench_eval_batch(&mut suite);
    suite.attach_section("eval_batch", summary);
    suite.finish();
}
