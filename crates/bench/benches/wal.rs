//! Durability overhead, writing `BENCH_wal.json` with a `wal` summary
//! section that pins the WAL-on ingest floor.
//!
//! Three layers isolate where durability spends its time:
//!
//! - `wal/frame_append` — the bare [`WalWriter`]: frame encode + CRC +
//!   one buffered kernel write per batch-sized payload.
//! - `wal/tcp_ingest_wal_off` — the full loopback ingest path with
//!   durability disabled (the PR-5 baseline).
//! - `wal/tcp_ingest_wal_on` — the same path with a data dir: every
//!   batch is write-ahead-logged before it is applied.
//!
//! `DDN_WAL_RUNS` overrides the record count (CI smoke uses a small
//! value); `DDN_BENCH_WARMUP` / `DDN_BENCH_ITERS` crank iterations.

use ddn_bench::Suite;
use ddn_policy::{Policy, UniformRandomPolicy};
use ddn_serve::wal::WalWriter;
use ddn_serve::{serve, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, DecisionSpace, TraceRecord};
use std::path::PathBuf;

/// Minimum acceptable sustained ingest rate (records/second) with the
/// WAL enabled — conservative enough for slow CI disks, tight enough to
/// catch an accidental per-record fsync or O(n) re-serialization.
const FLOOR_RECORDS_PER_SEC: f64 = 10_000.0;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize) -> Vec<TraceRecord> {
    let s = schema();
    let logger = UniformRandomPolicy::new(space());
    let mut rng = Xoshiro256::seed_from(12_2107);
    (0..n)
        .map(|_| {
            let c = Context::build(&s).set_cat("g", rng.index(2) as u32).finish();
            let (d, p) = logger.sample_with_prob(&c, &mut rng);
            let reward = 2.0 + 3.0 * d.index() as f64;
            TraceRecord::new(c, d, reward).with_propensity(p)
        })
        .collect()
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddn-bench-wal-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn throughput(suite: &Suite, bench_name: &str, n: u64) -> f64 {
    let r = suite
        .results()
        .iter()
        .find(|r| r.name == bench_name)
        .expect("bench ran");
    n as f64 / (r.mean_ns / 1e9)
}

/// Runs the full client→TCP→shard→ingest loop against `config`.
fn tcp_ingest(suite: &mut Suite, name: &str, config: &ServeConfig, recs: &[TraceRecord], batch: usize) {
    let handle = serve(config).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    let n = recs.len();
    suite.bench_throughput(name, n as u64, || {
        let mut client = ServeClient::connect(&addr).expect("loopback connect");
        client
            .init("bench-wal", &schema(), &space(), &["ips"], "b", 0.0, None)
            .expect("init accepted");
        for chunk in recs.chunks(batch) {
            client.ingest("bench-wal", chunk).expect("ingest accepted");
        }
        client.estimate("bench-wal").expect("estimate accepted")
    });
    handle.shutdown();
}

fn main() {
    let n: usize = std::env::var("DDN_WAL_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let batch = 256usize;
    let recs = records(n);

    let mut suite = Suite::new("wal");

    // Raw WAL appends: one frame per batch, payloads shaped like real
    // ingest request lines.
    let payload = vec![0x7Bu8; 160 * batch]; // ~ a 256-record request line
    let frames = n / batch;
    let append_dir = bench_dir("append");
    let wal_path = append_dir.join("bench.wal");
    suite.bench_throughput("wal/frame_append", n as u64, || {
        let mut w = WalWriter::create(&wal_path, 1).expect("create wal");
        for _ in 0..frames {
            w.append(&payload).expect("append frame");
        }
        w.bytes_written()
    });

    tcp_ingest(
        &mut suite,
        "wal/tcp_ingest_wal_off",
        &ServeConfig::default(),
        &recs,
        batch,
    );
    let on_dir = bench_dir("serve");
    tcp_ingest(
        &mut suite,
        "wal/tcp_ingest_wal_on",
        &ServeConfig {
            data_dir: Some(on_dir.clone()),
            // Rotation is timed by the soak path, not here: the interval
            // is large so the bench isolates steady-state append cost.
            snapshot_every: 1_000_000,
            ..ServeConfig::default()
        },
        &recs,
        batch,
    );

    let append_rps = throughput(&suite, "wal/frame_append", n as u64);
    let off_rps = throughput(&suite, "wal/tcp_ingest_wal_off", n as u64);
    let on_rps = throughput(&suite, "wal/tcp_ingest_wal_on", n as u64);
    if on_rps < FLOOR_RECORDS_PER_SEC {
        eprintln!(
            "warning: WAL-on ingest throughput {on_rps:.0} records/s \
             is below the pinned floor {FLOOR_RECORDS_PER_SEC:.0}"
        );
    }
    suite.attach_section(
        "wal",
        Json::Object(vec![
            ("records".into(), Json::Int(n as i64)),
            ("batch".into(), Json::Int(batch as i64)),
            (
                "floor_records_per_sec".into(),
                Json::Num(FLOOR_RECORDS_PER_SEC),
            ),
            ("frame_append_records_per_sec".into(), Json::Num(append_rps)),
            ("wal_off_records_per_sec".into(), Json::Num(off_rps)),
            ("wal_on_records_per_sec".into(), Json::Num(on_rps)),
            (
                "wal_overhead_fraction".into(),
                Json::Num(1.0 - on_rps / off_rps),
            ),
            (
                "meets_floor".into(),
                Json::Bool(on_rps >= FLOOR_RECORDS_PER_SEC),
            ),
        ]),
    );
    suite.finish();
    let _ = std::fs::remove_dir_all(&append_dir);
    let _ = std::fs::remove_dir_all(&on_dir);
}
