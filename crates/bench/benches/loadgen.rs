//! Closed-loop load-generation benchmark, writing `BENCH_loadgen.json`
//! with a `loadgen` summary section: sustained records/sec through the
//! full simulated-client wire path (schedule → fleet → multi-worker
//! drive → parity verification) against a self-hosted multi-shard
//! server.
//!
//! Unlike the other suites this one is not iterated by the harness: one
//! load run *is* the measurement — hundreds of thousands of timed wire
//! requests — and `ddn_loadgen::run` refuses to return a report at all
//! unless every record was counted exactly once and every session's
//! streamed estimate matched the offline estimator bit-for-bit.
//!
//! `DDN_LOADGEN_SESSIONS` overrides the session count (CI smoke uses a
//! small value); `DDN_LOADGEN_FAULTS` sets the per-record transport
//! fault rate (default 0: throughput, not chaos, is what the pinned
//! floor tracks).

use ddn_bench::Suite;
use ddn_loadgen::{Framing, LoadgenConfig};
use ddn_netsim::RateProfile;
use ddn_serve::ServeConfig;

fn main() {
    let sessions: usize = std::env::var("DDN_LOADGEN_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let fault_rate: f64 = std::env::var("DDN_LOADGEN_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let cfg = LoadgenConfig {
        sessions,
        records_per_session: 3,
        batch: 2,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 8),
        seed: 1107,
        rate: RateProfile::Constant(25_000.0),
        framing: Framing::Mixed,
        fault_rate,
        serve: ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        },
        ..LoadgenConfig::default()
    };

    let report = ddn_loadgen::run(&cfg).expect("load run verifies exactly-once and parity");
    println!(
        "loadgen/drive: {:.0} records/s ({} records, {} requests, {} sessions in {:.2}s)",
        report.records_per_sec,
        report.records,
        report.requests,
        report.sessions,
        report.elapsed_secs,
    );

    let mut suite = Suite::new("loadgen");
    suite.attach_section("loadgen", report.to_json());
    suite.finish();
}
