//! # ddn-bench — benchmark harness and figure regeneration
//!
//! Two consumers:
//!
//! - `cargo run --release -p ddn-bench --bin figures` — regenerates every
//!   figure and ablation table of the reproduction as text (the same
//!   rows/series the paper reports), at the paper's full 50-run protocol.
//! - `cargo bench -p ddn-bench` — benchmarks on the in-repo [`runner`]
//!   (the hermetic-build policy forbids Criterion), each writing a
//!   `BENCH_<suite>.json` timing file:
//!   - `figure7` — one benchmark per Figure 7 panel (reduced run counts
//!     so iterations stay tractable);
//!   - `ablations` — one benchmark per ablation;
//!   - `perf` — microbenchmarks of the building blocks (estimator
//!     throughput vs. trace size, simulator events/sec, model fit/predict,
//!     change-point detection), plus the batched-vs-unbatched
//!     [`eval_batch`] comparison whose speedup is pinned in the JSON;
//!   - `eval_batch` — the same comparison as a standalone target, sized
//!     for CI smoke runs (`reproduce.sh ci`).
//!
//! This crate's library surface is the bench [`runner`] plus the small set
//! of shared helpers the binary and benches use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval_batch;
pub mod runner;

pub use runner::{BenchConfig, BenchResult, Suite};

use ddn_estimators::ErrorTable;

/// Renders an [`ErrorTable`] with the paper-comparison line appended
/// ("DR improves on X by …%"), including the paired-t significance of the
/// improvement (runs share seeds, so the paired test is the right one).
pub fn render_with_improvement(table: &ErrorTable, title: &str, baseline: &str) -> String {
    let mut out = table.render(title);
    let imp = table.improvement("DR", baseline);
    let t = table.paired_test("DR", baseline);
    out.push_str(&format!(
        "DR mean error is {:.0}% lower than {} on this substrate (paired t: p = {:.1e})\n",
        imp * 100.0,
        baseline,
        t.p_two_sided,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_estimators::ExperimentRunner;

    #[test]
    fn improvement_line_rendered() {
        let table = ExperimentRunner::new(2, 0).run(|_| {
            (
                1.0,
                vec![("WISE".to_string(), 0.8), ("DR".to_string(), 0.9)],
            )
        });
        let text = render_with_improvement(&table, "t", "WISE");
        assert!(text.contains("lower than WISE"));
    }
}
