//! A lightweight benchmark runner replacing Criterion under the
//! hermetic-build policy (no crates.io dependencies).
//!
//! Each `cargo bench` target builds a [`Suite`], registers benchmarks with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a table and
//! writes `BENCH_<suite>.json` to the current directory so successive runs
//! form a machine-readable timing trajectory.
//!
//! The protocol per benchmark is Criterion-shaped but simpler: a warmup
//! phase (results discarded, caches and branch predictors settle), then N
//! timed iterations, summarized as mean/p50/p99/min/max via
//! `ddn_stats::Summary` and `ddn_stats::quantile`. Iteration counts are
//! configurable through `DDN_BENCH_WARMUP` / `DDN_BENCH_ITERS`.

use ddn_stats::{quantile, Json, Summary};
use std::time::Instant;

/// Iteration counts for one suite.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Untimed iterations run before sampling.
    pub warmup_iters: u32,
    /// Timed iterations per benchmark.
    pub sample_iters: u32,
}

impl Default for BenchConfig {
    /// Ten samples after two warmup iterations, overridable via the
    /// `DDN_BENCH_WARMUP` and `DDN_BENCH_ITERS` environment variables.
    fn default() -> Self {
        let env_u32 = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(default)
        };
        Self {
            warmup_iters: env_u32("DDN_BENCH_WARMUP", 2),
            sample_iters: env_u32("DDN_BENCH_ITERS", 10).max(1),
        }
    }
}

/// Timing summary of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (e.g. `"figure7a/5runs"`).
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Mean wall-clock time per iteration.
    pub mean_ns: f64,
    /// Median time per iteration.
    pub p50_ns: f64,
    /// 99th-percentile time per iteration.
    pub p99_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Elements processed per iteration, when declared (enables
    /// throughput reporting).
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Serializes one result for the `BENCH_*.json` trajectory.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.clone())),
            ("iters", Json::Int(i64::from(self.iters))),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("p50_ns", Json::Num(self.p50_ns)),
            ("p99_ns", Json::Num(self.p99_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("max_ns", Json::Num(self.max_ns)),
        ];
        if let Some(e) = self.elements {
            fields.push(("elements", Json::Int(e as i64)));
            fields.push((
                "elems_per_sec",
                Json::Num(e as f64 / (self.mean_ns * 1e-9)),
            ));
        }
        Json::object(fields)
    }
}

/// A named collection of benchmarks sharing one config; the unit that
/// becomes one `BENCH_<suite>.json` file.
pub struct Suite {
    name: String,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
    telemetry: Option<Json>,
    sections: Vec<(String, Json)>,
}

impl Suite {
    /// Creates a suite with [`BenchConfig::default`].
    pub fn new(name: &str) -> Self {
        Self::with_config(name, BenchConfig::default())
    }

    /// Creates a suite with an explicit config.
    pub fn with_config(name: &str, cfg: BenchConfig) -> Self {
        Self {
            name: name.to_string(),
            cfg,
            results: Vec::new(),
            telemetry: None,
            sections: Vec::new(),
        }
    }

    /// Attaches a telemetry snapshot (e.g. `TelemetrySnapshot::to_json()`)
    /// to the suite, so `BENCH_<suite>.json` carries the estimator-health
    /// and span-timing context the timings were produced under.
    pub fn attach_telemetry(&mut self, snapshot: Json) {
        self.telemetry = Some(snapshot);
    }

    /// Attaches an arbitrary named JSON section to the suite document —
    /// derived summaries (e.g. a batched-vs-unbatched speedup ratio) that
    /// belong in `BENCH_<suite>.json` next to the raw timings they were
    /// computed from.
    pub fn attach_section(&mut self, name: &str, value: Json) {
        self.sections.push((name.to_string(), value));
    }

    /// Runs one benchmark: warmup, then timed iterations.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        self.run(name, None, &mut f);
    }

    /// Like [`Suite::bench`], declaring that each iteration processes
    /// `elements` items, so the report includes throughput.
    pub fn bench_throughput<T>(&mut self, name: &str, elements: u64, mut f: impl FnMut() -> T) {
        self.run(name, Some(elements), &mut f);
    }

    fn run<T>(&mut self, name: &str, elements: Option<u64>, f: &mut dyn FnMut() -> T) {
        for _ in 0..self.cfg.warmup_iters {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.cfg.sample_iters as usize);
        for _ in 0..self.cfg.sample_iters {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        let s = Summary::of(&samples);
        let result = BenchResult {
            name: name.to_string(),
            iters: self.cfg.sample_iters,
            mean_ns: s.mean,
            p50_ns: quantile(&samples, 0.5),
            p99_ns: quantile(&samples, 0.99),
            min_ns: s.min,
            max_ns: s.max,
            elements,
        };
        println!("{}", render_line(&result));
        self.results.push(result);
    }

    /// The results gathered so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the whole suite for the `BENCH_*.json` trajectory.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("suite", Json::str(self.name.clone())),
            ("warmup_iters", Json::Int(i64::from(self.cfg.warmup_iters))),
            (
                "results",
                Json::Array(self.results.iter().map(BenchResult::to_json).collect()),
            ),
        ];
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry", t.clone()));
        }
        for (name, value) in &self.sections {
            fields.push((name.as_str(), value.clone()));
        }
        Json::object(fields)
    }

    /// Writes `BENCH_<suite>.json` and prints the output path; call this
    /// last, from the bench target's `main`. The file goes to
    /// `DDN_BENCH_DIR` when set, else the current directory (under
    /// `cargo bench` that is the package root, `crates/bench/`).
    pub fn finish(self) {
        let dir = std::env::var("DDN_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json().to_string()) {
            Ok(()) => println!("\nwrote {path} ({} benchmarks)", self.results.len()),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}

/// One human-readable report line: name, mean, p50/p99 spread, and
/// throughput when elements were declared.
fn render_line(r: &BenchResult) -> String {
    let mut line = format!(
        "{:<40} mean {:>12}  p50 {:>12}  p99 {:>12}",
        r.name,
        format_ns(r.mean_ns),
        format_ns(r.p50_ns),
        format_ns(r.p99_ns),
    );
    if let Some(e) = r.elements {
        let per_sec = e as f64 / (r.mean_ns * 1e-9);
        line.push_str(&format!("  {per_sec:>12.0} elems/s"));
    }
    line
}

/// Scales nanoseconds into the most readable unit.
fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BenchConfig {
        BenchConfig {
            warmup_iters: 1,
            sample_iters: 5,
        }
    }

    #[test]
    fn suite_collects_results() {
        let mut suite = Suite::with_config("unit", quick_cfg());
        suite.bench("noop", || 1 + 1);
        suite.bench_throughput("sum_1k", 1_000, || (0..1_000u64).sum::<u64>());
        assert_eq!(suite.results().len(), 2);
        let r = &suite.results()[0];
        assert_eq!(r.iters, 5);
        assert!(r.mean_ns >= 0.0 && r.min_ns <= r.max_ns);
        assert!(r.p50_ns >= r.min_ns && r.p99_ns <= r.max_ns);
        assert_eq!(suite.results()[1].elements, Some(1_000));
    }

    #[test]
    fn suite_json_shape() {
        let mut suite = Suite::with_config("unit_json", quick_cfg());
        suite.bench("noop", || ());
        let j = suite.to_json();
        assert_eq!(j.get("suite").unwrap().as_str(), Some("unit_json"));
        let results = j.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("name").unwrap().as_str(), Some("noop"));
        assert!(r.get("mean_ns").unwrap().as_f64().is_some());
        assert!(r.get("p99_ns").unwrap().as_f64().is_some());
        // The document parses back.
        let text = j.to_string();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn attached_telemetry_lands_in_json() {
        let mut suite = Suite::with_config("unit_telemetry", quick_cfg());
        suite.bench("noop", || ());
        suite.attach_telemetry(Json::object(vec![("runs", Json::Int(3))]));
        let j = suite.to_json();
        let t = j.get("telemetry").expect("telemetry field present");
        assert_eq!(t.get("runs").unwrap().as_i64(), Some(3));
        assert!(Json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn attached_sections_land_in_json() {
        let mut suite = Suite::with_config("unit_sections", quick_cfg());
        suite.bench("noop", || ());
        suite.attach_section("eval_batch", Json::object(vec![("speedup", Json::Num(1.8))]));
        let j = suite.to_json();
        let s = j.get("eval_batch").expect("section present");
        assert_eq!(s.get("speedup").unwrap().as_f64(), Some(1.8));
        assert!(Json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(12_500.0), "12.500 µs");
        assert_eq!(format_ns(12_500_000.0), "12.500 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
