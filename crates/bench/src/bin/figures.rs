//! Regenerates every figure and ablation of the reproduction as text.
//!
//! ```text
//! cargo run --release -p ddn-bench --bin figures           # everything
//! cargo run --release -p ddn-bench --bin figures -- 7a 7c  # a subset
//! ```
//!
//! Selectors: `7a 7b 7c A B C D E F G H I` (case-insensitive). With no
//! arguments, all of them run at the paper's 50-run protocol (ablations
//! use smaller but still meaningful run counts).

use ddn_bench::render_with_improvement;
use ddn_scenarios::ablations;
use ddn_scenarios::{figure7a, figure7b, figure7c};

fn wants(args: &[String], key: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(key))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ran = 0usize;

    if wants(&args, "7a") {
        println!("================================================================");
        println!("Figure 7a — trace bias (WISE world), 50 runs");
        println!("paper: DR mean error ~32% lower than WISE");
        println!("================================================================");
        let t = figure7a();
        print!(
            "{}",
            render_with_improvement(&t, "relative evaluation error", "WISE")
        );
        println!();
        ran += 1;
    }

    if wants(&args, "7b") {
        println!("================================================================");
        println!("Figure 7b — model bias (FastMPC ABR world), 50 runs");
        println!("paper: DR mean error ~74% lower than the FastMPC evaluator");
        println!("================================================================");
        let t = figure7b();
        print!(
            "{}",
            render_with_improvement(&t, "relative evaluation error", "FastMPC")
        );
        println!();
        ran += 1;
    }

    if wants(&args, "7c") {
        println!("================================================================");
        println!("Figure 7c — variance (CFA world), 50 runs");
        println!("paper: DR mean error ~36% lower than CFA's matching evaluator");
        println!("================================================================");
        let t = figure7c();
        print!(
            "{}",
            render_with_improvement(&t, "relative evaluation error", "CFA")
        );
        println!();
        ran += 1;
    }

    if wants(&args, "a") {
        let rows = ablations::ablation_randomness(&[0.02, 0.05, 0.1, 0.2, 0.5], 20, 81_001);
        print!("{}", ablations::randomness::render(&rows));
        println!();
        ran += 1;
    }

    if wants(&args, "b") {
        let rows = ablations::ablation_trace_size(&[0.5, 1.0, 2.0, 4.0, 8.0], 20, 81_002);
        print!("{}", ablations::trace_size::render(&rows));
        println!();
        ran += 1;
    }

    if wants(&args, "c") {
        let rows = ablations::ablation_dimensionality(&[0, 2, 4, 8], 20, 81_003);
        print!("{}", ablations::dimensionality::render(&rows));
        println!();
        ran += 1;
    }

    if wants(&args, "d") {
        let r = ablations::ablation_nonstationary(20, 81_004);
        print!("{}", ablations::nonstationary::render(&r));
        println!();
        ran += 1;
    }

    if wants(&args, "e") {
        let r = ablations::ablation_state(20, 81_005);
        print!("{}", ablations::state::render(&r));
        println!();
        ran += 1;
    }

    if wants(&args, "f") {
        let r = ablations::ablation_coupling(20, 81_006);
        print!("{}", ablations::coupling::render(&r));
        println!();
        ran += 1;
    }

    if wants(&args, "g") {
        let rows = ablations::ablation_second_order(&[0.0, 1.5, 3.0], &[0.0, 0.4, 0.8], 20, 81_007);
        print!("{}", ablations::second_order::render(&rows));
        println!();
        ran += 1;
    }

    if wants(&args, "h") {
        let rows = ablations::ablation_selection(&[150, 400, 1_000, 3_000], 20, 81_008);
        print!("{}", ablations::selection::render(&rows));
        println!();
        ran += 1;
    }

    if wants(&args, "i") {
        let rows = ablations::ablation_calibration(&[0.3, 0.6, 1.0, 1.5], 20, 81_009);
        print!("{}", ablations::calibration::render(&rows));
        println!();
        ran += 1;
    }

    if ran == 0 {
        eprintln!("no selector matched; known selectors: 7a 7b 7c A B C D E F G H I");
        std::process::exit(2);
    }
}
