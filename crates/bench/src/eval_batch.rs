//! Batched-vs-unbatched evaluation benchmarks.
//!
//! The shared-score [`ddn_estimators::EvalBatch`] exists to stop the
//! estimator menu from re-scoring the same trace once per estimator.
//! This module times the same Figure 7c panel (the k-NN-modelled CFA
//! world, whose reward-model predictions dominate the estimate phase)
//! both ways — `use_batch: true` against the pre-batching per-estimator
//! path — under the parallel runner on a fixed thread count, and distils
//! the ratio into a small JSON section callers attach to their
//! `BENCH_<suite>.json` (so the speedup is pinned in the timing
//! trajectory, not just eyeballed from raw rows).

use crate::Suite;
use ddn_scenarios::figure7c::{figure7c_with, Figure7cConfig};
use ddn_stats::Json;

/// Thread count the comparison runs on. Fixed (via `DDN_THREADS`) rather
/// than inherited from the machine so the pinned speedup is comparable
/// across hosts; ≥ 4 so the batched path is exercised under the
/// worker-pool runner, not a degenerate serial schedule.
pub const EVAL_BATCH_THREADS: usize = 4;

/// Registers the `eval_batch/*` benchmarks with explicit workload knobs
/// (run count and clients per run) and returns the summary section.
/// The small knobs exist for tests and CI smoke runs; real suites use
/// [`bench_eval_batch`].
pub fn bench_eval_batch_sized(suite: &mut Suite, runs: usize, clients: usize) -> Json {
    let batched_cfg = Figure7cConfig {
        runs,
        clients,
        ..Default::default()
    };
    let unbatched_cfg = Figure7cConfig {
        use_batch: false,
        ..batched_cfg.clone()
    };
    // `ExperimentRunner::default_threads` honors DDN_THREADS, which is
    // how the scenario entry points are steered onto a fixed pool size.
    std::env::set_var("DDN_THREADS", EVAL_BATCH_THREADS.to_string());
    suite.bench("eval_batch/figure7c/batched", || {
        figure7c_with(&batched_cfg)
    });
    suite.bench("eval_batch/figure7c/unbatched", || {
        figure7c_with(&unbatched_cfg)
    });
    std::env::remove_var("DDN_THREADS");

    let mean = |name: &str| {
        suite
            .results()
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark just registered")
            .mean_ns
    };
    let batched = mean("eval_batch/figure7c/batched");
    let unbatched = mean("eval_batch/figure7c/unbatched");
    Json::object(vec![
        ("threads", Json::Int(EVAL_BATCH_THREADS as i64)),
        ("runs", Json::Int(runs as i64)),
        ("clients", Json::Int(clients as i64)),
        ("batched_mean_ns", Json::Num(batched)),
        ("unbatched_mean_ns", Json::Num(unbatched)),
        ("speedup", Json::Num(unbatched / batched)),
    ])
}

/// Registers the `eval_batch/*` benchmarks at the standard workload and
/// returns the summary section to [`Suite::attach_section`] under
/// `"eval_batch"`. `DDN_EVAL_BATCH_RUNS` / `DDN_EVAL_BATCH_CLIENTS`
/// shrink the workload for smoke runs (`reproduce.sh ci`) without
/// touching the default the pinned speedup is measured at.
pub fn bench_eval_batch(suite: &mut Suite) -> Json {
    let knob = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default)
    };
    bench_eval_batch_sized(
        suite,
        knob("DDN_EVAL_BATCH_RUNS", 6),
        knob("DDN_EVAL_BATCH_CLIENTS", 800),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchConfig;

    #[test]
    fn summary_section_has_the_pinned_shape() {
        let mut suite = Suite::with_config(
            "unit_eval_batch",
            BenchConfig {
                warmup_iters: 0,
                sample_iters: 1,
            },
        );
        let section = bench_eval_batch_sized(&mut suite, 1, 80);
        assert_eq!(suite.results().len(), 2);
        for key in [
            "threads",
            "runs",
            "clients",
            "batched_mean_ns",
            "unbatched_mean_ns",
            "speedup",
        ] {
            assert!(section.get(key).is_some(), "missing {key}");
        }
        assert!(section.get("speedup").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            section.get("threads").unwrap().as_i64(),
            Some(EVAL_BATCH_THREADS as i64)
        );
    }
}
