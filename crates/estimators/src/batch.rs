//! Columnar shared-score batch evaluation — compute the per-record
//! quantities every estimator needs **once** per (seed, trace) and let
//! the whole menu consume them.
//!
//! Figure 7 runs DM, IPS (plus variants), DR (plus variants), CrossFit,
//! CFA matching, state-aware DR and replay on the *same* logged trace.
//! Each of those independently re-derives the same per-record scores —
//! the new policy's action probabilities, the logged propensity ratio,
//! and the reward model's predictions q̂(c, d) — so the hot loop does
//! O(estimators × records) redundant inference. Dudík et al.'s DR and
//! its descendants factor estimation into exactly these shared scores;
//! [`EvalBatch`] materializes them as contiguous per-record arrays
//! (row-major for the per-decision matrices) built in cache-friendly
//! chunks.
//!
//! ## Bit-identity contract
//!
//! The batched paths are required to produce **bit-identical** results
//! to the unbatched ones (`tests/properties.rs` pins this for the whole
//! menu). Three rules make that hold:
//!
//! 1. `p_logged[i]` is stored from `policy.prob(ctx, d_i)` and the
//!    probability row from `policy.probabilities(ctx)` **separately** —
//!    policies may override `probabilities`, so neither may be derived
//!    from the other.
//! 2. Importance weights are stored as the same expression the
//!    unbatched path evaluates (`p_logged / p_old`), and derived sums
//!    (`dm_terms`) accumulate in ascending decision order, exactly like
//!    the unbatched `space.iter().map(..).sum()`.
//! 3. Error order is preserved: a missing propensity is remembered as
//!    the *first* offending record index and resurfaces as the same
//!    [`TraceError::MissingPropensity`] the unbatched estimators raise,
//!    while model-free estimators (DM, CFA) keep working off the same
//!    batch.
//!
//! ## Telemetry
//!
//! Building a batch opens a `batch_build` span and adds its wall time to
//! the process-wide `batch.build_ns` registry counter (wall-clock stays
//! out of run-local counters so deterministic telemetry JSON is
//! unaffected). Estimators report per-record scores served from the
//! batch as `batch.hit` and live recomputations as `batch.miss`
//! (run-local, deterministic), plus a `batch.score_reuse.<name>` gauge
//! in the global registry.

use crate::estimate::{check_space, EstimatorError};
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::{StateTag, Trace, TraceError};

/// Records per cache-friendly build chunk. Each chunk's contexts are
/// walked once for policy scores and once for model scores while still
/// warm; the per-record arithmetic is independent, so chunking cannot
/// change any float result.
const CHUNK: usize = 1024;

/// Reward-model scores shared by DM, DR, SwitchDR, state-aware DR and
/// replay when the batch was built with the same model those estimators
/// hold.
#[derive(Debug, Clone)]
pub struct ModelScores {
    /// `q[i*k + j] = model.predict(c_i, d_j)`, row-major.
    q: Vec<f64>,
    /// `q_logged[i] = model.predict(c_i, d_i_logged)`.
    q_logged: Vec<f64>,
    /// `dm_terms[i] = Σ_j probs[i*k+j] · q[i*k+j]`, accumulated in
    /// ascending decision order (bit-identical to the unbatched DM term).
    dm_terms: Vec<f64>,
}

impl ModelScores {
    /// Model prediction for record `i`'s logged decision.
    pub fn q_logged(&self) -> &[f64] {
        &self.q_logged
    }

    /// Per-record DM terms `Σ_d μ_new(d|c_i) · r̂(c_i, d)`.
    pub fn dm_terms(&self) -> &[f64] {
        &self.dm_terms
    }

    /// Record `i`'s prediction row over the decision space.
    pub fn q_row(&self, i: usize, k: usize) -> &[f64] {
        &self.q[i * k..(i + 1) * k]
    }
}

/// Shared per-record scores for one (trace, policy) pair — and
/// optionally one reward model — consumed by every estimator in the
/// menu via their `estimate_batch` methods.
#[derive(Debug, Clone)]
pub struct EvalBatch {
    n: usize,
    k: usize,
    rewards: Vec<f64>,
    /// Logged decision indices.
    decisions: Vec<usize>,
    states: Vec<Option<StateTag>>,
    /// `p_logged[i] = policy.prob(c_i, d_i_logged)`.
    p_logged: Vec<f64>,
    /// `probs[i*k + j] = policy.probabilities(c_i)[j]`, row-major.
    probs: Vec<f64>,
    /// Importance weights `p_logged / propensity`, or the first record
    /// index whose propensity is missing.
    weights: Result<Vec<f64>, usize>,
    model: Option<ModelScores>,
}

impl EvalBatch {
    /// Builds the policy-side scores (propensities, probability rows,
    /// importance weights) for `trace` under `policy`.
    ///
    /// Fails with [`EstimatorError::SpaceMismatch`] exactly when the
    /// unbatched estimators would. A missing propensity does *not* fail
    /// the build — DM and CFA never need weights — it is surfaced by
    /// [`EvalBatch::weights`] instead.
    pub fn build(trace: &Trace, policy: &dyn Policy) -> Result<Self, EstimatorError> {
        Self::build_inner(trace, policy, None)
    }

    /// Like [`EvalBatch::build`], additionally caching `model`'s
    /// predictions (`q`, `q_logged`) and the per-record DM terms.
    ///
    /// The estimators consuming these scores must hold the *same*
    /// fitted model, otherwise the batched result diverges from the
    /// unbatched one — that is the caller's contract, checked by the
    /// batched-vs-unbatched property tests.
    pub fn with_model(
        trace: &Trace,
        policy: &dyn Policy,
        model: &dyn RewardModel,
    ) -> Result<Self, EstimatorError> {
        Self::build_inner(trace, policy, Some(model))
    }

    fn build_inner(
        trace: &Trace,
        policy: &dyn Policy,
        model: Option<&dyn RewardModel>,
    ) -> Result<Self, EstimatorError> {
        check_space(trace, policy)?;
        let _span = ddn_telemetry::span("batch_build");
        let started = std::time::Instant::now();

        let n = trace.len();
        let k = trace.space().len();
        let records = trace.records();
        let space = trace.space();

        let mut rewards = Vec::with_capacity(n);
        let mut decisions = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        let mut p_logged = Vec::with_capacity(n);
        let mut probs = Vec::with_capacity(n * k);
        let mut weight_vec = Vec::with_capacity(n);
        let mut missing: Option<usize> = None;
        let mut scores = model.map(|_| ModelScores {
            q: Vec::with_capacity(n * k),
            q_logged: Vec::with_capacity(n),
            dm_terms: Vec::with_capacity(n),
        });

        for chunk_start in (0..n).step_by(CHUNK) {
            let chunk_end = (chunk_start + CHUNK).min(n);
            for (idx, rec) in records[chunk_start..chunk_end]
                .iter()
                .enumerate()
                .map(|(o, r)| (chunk_start + o, r))
            {
                rewards.push(rec.reward);
                decisions.push(rec.decision.index());
                states.push(rec.state);
                let pl = policy.prob(&rec.context, rec.decision);
                p_logged.push(pl);
                let row = policy.probabilities(&rec.context);
                debug_assert_eq!(row.len(), k, "policy probability row width");
                if missing.is_none() {
                    match rec.require_propensity(idx) {
                        Ok(p_old) => weight_vec.push(pl / p_old),
                        Err(_) => missing = Some(idx),
                    }
                }
                if let (Some(scores), Some(model)) = (scores.as_mut(), model) {
                    let q_start = scores.q.len();
                    for d in space.iter() {
                        scores.q.push(model.predict(&rec.context, d));
                    }
                    scores.q_logged.push(model.predict(&rec.context, rec.decision));
                    let dm: f64 = row
                        .iter()
                        .zip(&scores.q[q_start..])
                        .map(|(p, q)| p * q)
                        .sum();
                    scores.dm_terms.push(dm);
                }
                probs.extend_from_slice(&row);
            }
        }

        ddn_telemetry::Registry::global()
            .counter("batch.build_ns")
            .add(started.elapsed().as_nanos() as u64);
        Ok(Self {
            n,
            k,
            rewards,
            decisions,
            states,
            p_logged,
            probs,
            weights: match missing {
                Some(idx) => Err(idx),
                None => Ok(weight_vec),
            },
            model: scores,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the batch covers zero records (unreachable through
    /// [`Trace`], which rejects empty record sets at construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Decision-space size `k`.
    pub fn decision_count(&self) -> usize {
        self.k
    }

    /// Logged rewards, in record order.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Logged decision indices, in record order.
    pub fn decisions(&self) -> &[usize] {
        &self.decisions
    }

    /// Logged state tags, in record order.
    pub fn states(&self) -> &[Option<StateTag>] {
        &self.states
    }

    /// `policy.prob(c_i, d_i_logged)` for every record.
    pub fn p_logged(&self) -> &[f64] {
        &self.p_logged
    }

    /// Record `i`'s `policy.probabilities(c_i)` row.
    pub fn probs_row(&self, i: usize) -> &[f64] {
        &self.probs[i * self.k..(i + 1) * self.k]
    }

    /// Importance weights `μ_new(d_i|c_i) / μ_old(d_i|c_i)`, or the same
    /// [`TraceError::MissingPropensity`] (first offending record) the
    /// unbatched `importance_weights` raises.
    pub fn weights(&self) -> Result<&[f64], EstimatorError> {
        match &self.weights {
            Ok(w) => Ok(w),
            Err(record) => Err(EstimatorError::Trace(TraceError::MissingPropensity {
                record: *record,
            })),
        }
    }

    /// Cached reward-model scores, when the batch was built with
    /// [`EvalBatch::with_model`].
    pub fn model_scores(&self) -> Option<&ModelScores> {
        self.model.as_ref()
    }

    /// Asserts the batch was built from a trace of the same shape —
    /// feeding an estimator a batch from a different trace is a
    /// programming error, not a recoverable condition.
    pub(crate) fn check_trace(&self, trace: &Trace) {
        assert_eq!(
            self.n,
            trace.len(),
            "EvalBatch built from a different trace (len mismatch)"
        );
        assert_eq!(
            self.k,
            trace.space().len(),
            "EvalBatch built from a different trace (space mismatch)"
        );
    }
}

/// An estimator that can consume a shared [`EvalBatch`] instead of
/// recomputing per-record scores, with bit-identical results to
/// [`crate::Estimator::estimate`].
///
/// The batch must have been built from the same `trace` with the policy
/// being evaluated, and — for model-based estimators — with the same
/// fitted reward model the estimator holds (a model-free batch falls
/// back to live prediction, counted as `batch.miss`).
pub trait BatchEstimator: crate::Estimator {
    /// Estimates `V(new_policy)` from the shared batch.
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<crate::Estimate, EstimatorError>;
}

/// Records batch score reuse: `hits` per-record scores served from the
/// batch, `misses` recomputed live. Run-local counters stay
/// deterministic (pure counts); the reuse ratio lands in the global
/// registry as `batch.score_reuse.<source>`.
pub(crate) fn note_reuse(source: &str, hits: u64, misses: u64) {
    if !ddn_telemetry::enabled() {
        return;
    }
    ddn_telemetry::add_count("batch.hit", hits);
    ddn_telemetry::add_count("batch.miss", misses);
    let total = hits + misses;
    if total > 0 {
        ddn_telemetry::Registry::global()
            .gauge(&format!("batch.score_reuse.{source}"))
            .set(hits as f64 / total as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};
    use ddn_models::ConstantModel;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 3).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    /// Large enough to cross a CHUNK boundary.
    fn big_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(3) as u32;
                let d = rng.index(3);
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), d as f64 + 0.5 * g as f64)
                    .with_propensity(1.0 / 3.0)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn build_matches_direct_policy_calls_across_chunks() {
        let t = big_trace(CHUNK + 500, 9);
        let pol = UniformRandomPolicy::new(space());
        let b = EvalBatch::build(&t, &pol).unwrap();
        assert_eq!(b.len(), t.len());
        assert_eq!(b.decision_count(), 3);
        for (i, rec) in t.records().iter().enumerate() {
            assert_eq!(b.p_logged()[i], pol.prob(&rec.context, rec.decision));
            assert_eq!(b.probs_row(i), pol.probabilities(&rec.context).as_slice());
            assert_eq!(b.rewards()[i], rec.reward);
            assert_eq!(b.decisions()[i], rec.decision.index());
        }
        let w = b.weights().unwrap();
        assert_eq!(w.len(), t.len());
        assert_eq!(w[0], b.p_logged()[0] / (1.0 / 3.0));
    }

    #[test]
    fn model_scores_match_direct_predictions() {
        let t = big_trace(64, 10);
        let pol = LookupPolicy::constant(space(), 1);
        let model = ConstantModel::new(2.5);
        let b = EvalBatch::with_model(&t, &pol, &model).unwrap();
        let scores = b.model_scores().unwrap();
        for i in 0..t.len() {
            assert_eq!(scores.q_row(i, 3), &[2.5, 2.5, 2.5]);
            assert_eq!(scores.q_logged()[i], 2.5);
            // dm_term = Σ probs·q; deterministic policy row sums to 1.
            assert!((scores.dm_terms()[i] - 2.5).abs() < 1e-15);
        }
    }

    #[test]
    fn missing_propensity_surfaces_first_record_index() {
        let s = schema();
        let recs = vec![
            TraceRecord::new(
                Context::build(&s).set_cat("g", 0).finish(),
                Decision::from_index(0),
                1.0,
            )
            .with_propensity(0.5),
            TraceRecord::new(
                Context::build(&s).set_cat("g", 1).finish(),
                Decision::from_index(1),
                2.0,
            ),
            TraceRecord::new(
                Context::build(&s).set_cat("g", 2).finish(),
                Decision::from_index(2),
                3.0,
            ),
        ];
        let t = Trace::from_records(s, space(), recs).unwrap();
        let pol = UniformRandomPolicy::new(space());
        let b = EvalBatch::build(&t, &pol).unwrap();
        assert!(matches!(
            b.weights(),
            Err(EstimatorError::Trace(TraceError::MissingPropensity {
                record: 1
            }))
        ));
        // Policy-side scores are still fully available for DM/CFA.
        assert_eq!(b.p_logged().len(), 3);
    }

    #[test]
    fn space_mismatch_fails_build_like_unbatched() {
        let t = big_trace(8, 11);
        let pol = UniformRandomPolicy::new(DecisionSpace::of(&["only"]));
        assert!(matches!(
            EvalBatch::build(&t, &pol),
            Err(EstimatorError::SpaceMismatch {
                trace: 3,
                policy: 1
            })
        ));
    }
}
