//! The paper's experiment protocol: relative evaluation error aggregated
//! over repeated seeded simulations (Figure 7's "mean, minimum and maximum
//! of evaluation errors over 50 runs").

use ddn_stats::summary::ErrorReport;
use ddn_stats::ttest::{paired_t_test, TTest};
use ddn_telemetry::{Collector, TelemetrySnapshot};

/// One run's raw output: the ground truth and named estimates.
type RunOutput = (f64, Vec<(String, f64)>);

/// Aggregates run outputs (in seed order) into an [`ErrorTable`].
///
/// # Panics
/// Panics if runs disagree on estimator names, a ground truth is
/// zero/non-finite, or the number of outputs differs from `runs` — a
/// scenario closure that under- or over-produces would otherwise yield
/// a table silently averaged over the wrong number of seeds while still
/// claiming `runs` repetitions in every report.
fn tabulate(outputs: impl IntoIterator<Item = RunOutput>, runs: usize) -> ErrorTable {
    let mut names: Vec<String> = Vec::new();
    let mut errors: Vec<Vec<f64>> = Vec::new();
    let mut produced = 0usize;
    for (i, (truth, estimates)) in outputs.into_iter().enumerate() {
        produced = i + 1;
        if i == 0 {
            names = estimates.iter().map(|(n, _)| n.clone()).collect();
            errors = vec![Vec::with_capacity(runs); names.len()];
        } else {
            let got: Vec<&String> = estimates.iter().map(|(n, _)| n).collect();
            assert!(
                got.iter().zip(&names).all(|(a, b)| **a == *b),
                "estimator names changed between runs: {got:?} vs {names:?}"
            );
        }
        for (j, (_, est)) in estimates.iter().enumerate() {
            errors[j].push(relative_error(truth, *est));
        }
    }
    assert_eq!(
        produced, runs,
        "experiment produced {produced} run outputs but was configured for {runs} runs"
    );
    let rows = names
        .into_iter()
        .zip(errors.iter())
        .map(|(n, e)| (n, ErrorReport::from_errors(e)))
        .collect();
    ErrorTable { rows, raw: errors }
}

/// The paper's error metric: `|V − V̂| / |V|` (§4.2, "relative error
/// between actual average reward V (ground truth) and its estimate V̂").
///
/// # Panics
/// Panics if `truth == 0` (the metric is undefined) or either input is
/// non-finite.
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    assert!(
        truth.is_finite() && estimate.is_finite(),
        "relative_error needs finite inputs"
    );
    assert!(
        truth != 0.0,
        "relative error undefined for zero ground truth"
    );
    (truth - estimate).abs() / truth.abs()
}

/// Runs an experiment across seeds: each run produces `(truth, estimate)`
/// pairs for a set of named estimators; the runner aggregates per-estimator
/// [`ErrorReport`]s.
///
/// This is deliberately estimator-agnostic — scenario crates hand it a
/// closure that builds the world for a seed, computes ground truth, and
/// returns each evaluator's estimate.
pub struct ExperimentRunner {
    runs: usize,
    base_seed: u64,
}

/// One experiment's aggregated output: rows of (estimator name, report),
/// plus the raw per-run errors so paired comparisons remain possible.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorTable {
    rows: Vec<(String, ErrorReport)>,
    raw: Vec<Vec<f64>>,
}

impl ErrorTable {
    /// The rows in insertion order.
    pub fn rows(&self) -> &[(String, ErrorReport)] {
        &self.rows
    }

    /// The report for a named estimator.
    pub fn get(&self, name: &str) -> Option<&ErrorReport> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Relative improvement (in mean error) of estimator `a` over `b`, as
    /// the paper reports ("DR's evaluation error is about 32% lower than
    /// WISE").
    ///
    /// # Panics
    /// Panics if either name is missing.
    pub fn improvement(&self, a: &str, b: &str) -> f64 {
        let ra = self
            .get(a)
            .unwrap_or_else(|| panic!("no estimator named {a:?}"));
        let rb = self
            .get(b)
            .unwrap_or_else(|| panic!("no estimator named {b:?}"));
        ra.improvement_over(rb)
    }

    /// The raw per-run relative errors of a named estimator, in seed
    /// order (runs are seeded identically across estimators, so rows are
    /// paired observations).
    pub fn raw_errors(&self, name: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| self.raw[i].as_slice())
    }

    /// Paired t-test of estimator `a`'s per-run errors against `b`'s —
    /// the statistically right way to ask "is a actually better?", since
    /// both ran on identical seeds. `mean_diff < 0` means `a` has lower
    /// error.
    ///
    /// # Panics
    /// Panics if either name is missing.
    pub fn paired_test(&self, a: &str, b: &str) -> TTest {
        let ea = self
            .raw_errors(a)
            .unwrap_or_else(|| panic!("no estimator named {a:?}"));
        let eb = self
            .raw_errors(b)
            .unwrap_or_else(|| panic!("no estimator named {b:?}"));
        paired_t_test(ea, eb)
    }

    /// Renders the table as aligned text (one row per estimator).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(9);
        out.push_str(&format!(
            "{:<name_w$}  {:>10}  {:>10}  {:>10}  {:>5}\n",
            "estimator", "mean err", "min err", "max err", "runs"
        ));
        for (name, r) in &self.rows {
            out.push_str(&format!(
                "{name:<name_w$}  {:>10.4}  {:>10.4}  {:>10.4}  {:>5}\n",
                r.mean, r.min, r.max, r.runs
            ));
        }
        out
    }
}

impl ExperimentRunner {
    /// Creates a runner executing `runs` seeded repetitions starting at
    /// `base_seed` (run `i` gets seed `base_seed + i`).
    ///
    /// # Panics
    /// Panics if `runs == 0`.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        assert!(runs > 0, "experiment needs at least one run");
        Self { runs, base_seed }
    }

    /// The paper's default protocol: 50 runs.
    pub fn paper_default(base_seed: u64) -> Self {
        Self::new(50, base_seed)
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Executes the experiment. For each seed, `run` returns the ground
    /// truth `V` and a list of `(estimator name, estimate)` pairs; the
    /// estimator name set must be identical across runs.
    ///
    /// # Panics
    /// Panics if runs disagree on the estimator names or a ground truth is
    /// zero/non-finite.
    pub fn run<F>(&self, mut run: F) -> ErrorTable
    where
        F: FnMut(u64) -> (f64, Vec<(String, f64)>),
    {
        let outputs: Vec<RunOutput> = (0..self.runs)
            .map(|i| run(self.base_seed + i as u64))
            .collect();
        tabulate(outputs, self.runs)
    }

    /// Like [`Self::run`], but with a telemetry collector installed for
    /// each seed: estimator health diagnostics and spans recorded by the
    /// closure are aggregated (in seed order) into a
    /// [`TelemetrySnapshot`] alongside the error table.
    pub fn run_instrumented<F>(&self, mut run: F) -> (ErrorTable, TelemetrySnapshot)
    where
        F: FnMut(u64) -> (f64, Vec<(String, f64)>),
    {
        let started = std::time::Instant::now();
        let mut outputs: Vec<RunOutput> = Vec::with_capacity(self.runs);
        let mut collectors: Vec<Collector> = Vec::with_capacity(self.runs);
        for i in 0..self.runs {
            let seed = self.base_seed + i as u64;
            let (out, collector) = ddn_telemetry::collect(|| {
                let _run_span = ddn_telemetry::span("run");
                run(seed)
            });
            outputs.push(out);
            collectors.push(collector);
        }
        let mut snapshot = TelemetrySnapshot::from_runs(&collectors);
        snapshot.set_threads(1);
        snapshot.add_timing("experiment", started.elapsed().as_nanos() as u64);
        (tabulate(outputs, self.runs), snapshot)
    }

    /// The worker-thread count scenario crates should default to: the
    /// `DDN_THREADS` environment variable when set to a positive
    /// integer, otherwise the machine's available parallelism (with a
    /// single-thread fallback when it cannot be determined).
    ///
    /// The chosen count is recorded as the `experiment.default_threads`
    /// gauge in the global telemetry registry exactly once per process —
    /// earlier versions wrote it on every call, so concurrently running
    /// experiments (tier-1 tests in particular) kept overwriting each
    /// other's value mid-read.
    pub fn default_threads() -> usize {
        static GAUGE_ONCE: std::sync::Once = std::sync::Once::new();
        let threads = std::env::var("DDN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        GAUGE_ONCE.call_once(|| {
            ddn_telemetry::Registry::global()
                .gauge("experiment.default_threads")
                .set(threads as f64);
        });
        threads
    }
}

impl ExperimentRunner {
    /// Executes the experiment with runs fanned out across `threads` OS
    /// threads. `run` must be `Sync` (it is called concurrently with
    /// distinct seeds) — simulators in this workspace are pure functions
    /// of the seed, so any of the scenario closures qualify once their
    /// captured state is immutable. Results are identical to [`Self::run`]
    /// regardless of thread count or scheduling (each seed's output is
    /// slotted by index).
    ///
    /// # Panics
    /// Panics if `threads == 0`, on inconsistent estimator names, or if a
    /// worker panics.
    pub fn run_parallel<F>(&self, threads: usize, run: F) -> ErrorTable
    where
        F: Fn(u64) -> (f64, Vec<(String, f64)>) + Sync,
    {
        let outputs = self.fan_out(threads, |seed| run(seed));
        tabulate(outputs, self.runs)
    }

    /// Parallel counterpart of [`Self::run_instrumented`]. Each worker
    /// collects its seeds' telemetry independently; the finished
    /// collectors are slotted by seed index and aggregated in seed order
    /// after the join, so the snapshot (float accumulation included) is
    /// bit-identical to the serial instrumented run for any `threads` —
    /// the same guarantee [`Self::run_parallel`] gives the error table.
    /// Wall-clock span durations still vary run to run; compare
    /// [`TelemetrySnapshot::to_json_deterministic`] forms, not raw
    /// timings.
    pub fn run_parallel_instrumented<F>(
        &self,
        threads: usize,
        run: F,
    ) -> (ErrorTable, TelemetrySnapshot)
    where
        F: Fn(u64) -> (f64, Vec<(String, f64)>) + Sync,
    {
        let started = std::time::Instant::now();
        let results = self.fan_out(threads, |seed| {
            ddn_telemetry::collect(|| {
                let _run_span = ddn_telemetry::span("run");
                run(seed)
            })
        });
        let (outputs, collectors): (Vec<RunOutput>, Vec<Collector>) =
            results.into_iter().unzip();
        let mut snapshot = TelemetrySnapshot::from_runs(&collectors);
        snapshot.set_threads(threads);
        snapshot.add_timing("experiment", started.elapsed().as_nanos() as u64);
        (tabulate(outputs, self.runs), snapshot)
    }

    /// Shared fan-out machinery: a fixed channel-based worker pool.
    ///
    /// All seed indices are queued up front on a shared job channel
    /// (std's mpsc receiver behind a mutex acts as the single work
    /// queue); `threads.min(runs)` scoped workers pull whatever index is
    /// next — idle workers steal the remaining work instead of being
    /// assigned a static share — and send `(index, output)` back on a
    /// results channel. The main thread slots results by index while the
    /// pool drains, so the merged output is in seed order and
    /// bit-identical to serial execution regardless of thread count or
    /// scheduling. A worker panic drops its result sender; the scope
    /// join then re-raises the panic.
    fn fan_out<T, W>(&self, threads: usize, work: W) -> Vec<T>
    where
        T: Send,
        W: Fn(u64) -> T + Sync,
    {
        assert!(threads > 0, "need at least one thread");
        let runs = self.runs;
        let base = self.base_seed;
        let workers = threads.min(runs);
        let (job_tx, job_rx) = std::sync::mpsc::channel::<usize>();
        for i in 0..runs {
            job_tx.send(i).expect("job queue open while filling");
        }
        drop(job_tx); // Workers see Disconnected once the queue drains.
        let job_rx = std::sync::Mutex::new(job_rx);
        let (result_tx, result_rx) = std::sync::mpsc::channel::<(usize, T)>();
        let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
        let work = &work;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // The queue is pre-filled, so holding the lock across
                    // recv never blocks on a producer.
                    let job = job_rx.lock().expect("no poisoned workers").recv();
                    let Ok(i) = job else { break };
                    let out = work(base + i as u64);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(result_tx);
            while let Ok((i, out)) = result_rx.recv() {
                results[i] = Some(out);
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every seed produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(10.0, 9.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(-10.0, -12.0) - 0.2).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero ground truth")]
    fn relative_error_zero_truth_panics() {
        let _ = relative_error(0.0, 1.0);
    }

    #[test]
    fn runner_aggregates_errors() {
        let runner = ExperimentRunner::new(10, 100);
        let table = runner.run(|seed| {
            let truth = 10.0;
            // "good" estimator off by seed-dependent ±0.1; "bad" off by 2.
            let wiggle = if seed % 2 == 0 { 0.1 } else { -0.1 };
            (
                truth,
                vec![
                    ("good".to_string(), truth + wiggle),
                    ("bad".to_string(), truth + 2.0),
                ],
            )
        });
        let good = table.get("good").unwrap();
        let bad = table.get("bad").unwrap();
        assert!((good.mean - 0.01).abs() < 1e-12);
        assert!((bad.mean - 0.2).abs() < 1e-12);
        assert_eq!(good.runs, 10);
        // good improves on bad by 95%.
        assert!((table.improvement("good", "bad") - 0.95).abs() < 1e-9);
    }

    #[test]
    fn runner_seeds_are_sequential() {
        let runner = ExperimentRunner::new(3, 7);
        let mut seen = Vec::new();
        runner.run(|seed| {
            seen.push(seed);
            (1.0, vec![("e".to_string(), 1.0)])
        });
        assert_eq!(seen, vec![7, 8, 9]);
    }

    #[test]
    fn render_contains_rows() {
        let runner = ExperimentRunner::new(2, 0);
        let table = runner.run(|_| (1.0, vec![("DR".to_string(), 0.9)]));
        let text = table.render("Figure 7a");
        assert!(text.contains("Figure 7a"));
        assert!(text.contains("DR"));
        assert!(text.contains("0.1000"));
    }

    #[test]
    #[should_panic(expected = "names changed")]
    fn inconsistent_names_panic() {
        let runner = ExperimentRunner::new(2, 0);
        let mut flip = false;
        runner.run(|_| {
            flip = !flip;
            let name = if flip { "a" } else { "b" };
            (1.0, vec![(name.to_string(), 1.0)])
        });
    }

    #[test]
    #[should_panic(expected = "run outputs")]
    fn under_produced_outputs_panic() {
        // A closure that filters/fails a seed used to yield a table
        // quietly averaged over fewer runs than configured.
        let outputs = vec![
            (1.0, vec![("e".to_string(), 0.9)]),
            (1.0, vec![("e".to_string(), 1.1)]),
        ];
        let _ = tabulate(outputs, 3);
    }

    #[test]
    #[should_panic(expected = "run outputs")]
    fn over_produced_outputs_panic() {
        let outputs = vec![(1.0, vec![("e".to_string(), 0.9)]); 4];
        let _ = tabulate(outputs, 3);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let runner = ExperimentRunner::new(17, 40);
        let work = |seed: u64| {
            let truth = 10.0;
            let noisy = truth + ((seed % 7) as f64 - 3.0) * 0.1;
            (
                truth,
                vec![("e1".to_string(), noisy), ("e2".to_string(), truth + 1.0)],
            )
        };
        let serial = runner.run(work);
        for threads in [1usize, 3, 8] {
            let parallel = runner.run_parallel(threads, work);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_with_more_threads_than_runs() {
        let runner = ExperimentRunner::new(2, 0);
        let t = runner.run_parallel(16, |_| (1.0, vec![("e".to_string(), 0.9)]));
        assert_eq!(t.get("e").unwrap().runs, 2);
    }

    #[test]
    fn paired_test_on_identical_seeds() {
        let runner = ExperimentRunner::new(30, 500);
        let table = runner.run(|seed| {
            let truth = 10.0;
            let shared_noise = ((seed * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5;
            (
                truth,
                vec![
                    ("good".to_string(), truth + shared_noise),
                    ("bad".to_string(), truth + shared_noise + 1.0),
                ],
            )
        });
        assert_eq!(table.raw_errors("good").unwrap().len(), 30);
        let t = table.paired_test("good", "bad");
        assert!(t.mean_diff < 0.0, "good should have lower error");
        assert!(
            t.significant(0.01),
            "constant gap must be significant: p={}",
            t.p_two_sided
        );
    }

    #[test]
    fn paper_default_is_50_runs() {
        assert_eq!(ExperimentRunner::paper_default(0).runs(), 50);
    }
}
