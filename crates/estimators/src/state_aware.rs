//! State-aware DR estimation — paper §4.1 "System state of the world" and
//! §4.3 "Modeling world state".
//!
//! The DR theory implicitly assumes the new policy is evaluated under the
//! same system state as the trace was collected. In networks that's often
//! false: "we want to evaluate the performance of a server selection logic
//! during peak hours, but the trace we have was collected during early
//! morning hours." [`StateAwareDr`] addresses this two ways, both from the
//! paper:
//!
//! 1. **State matching**: only records tagged with the target
//!    [`StateTag`] enter the estimate directly.
//! 2. **Transition transport** (§4.3): records from *other* states are
//!    mapped into the target state through a [`TransitionModel`] — e.g.
//!    "peak-hour performance is on average 20% worse than morning-hour
//!    performance, so degrade the trace rewards by 20%". A transported
//!    record contributes like a matched one but through the adjusted
//!    reward.

use crate::batch::{note_reuse, EvalBatch};
use crate::estimate::{check_space, emit_weight_health, Estimate, EstimatorError, WeightDiagnostics};
use crate::ips::importance_weights;
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::{StateTag, Trace};

/// Maps a reward observed in one system state into an equivalent reward in
/// another state (the §4.3 "transition function" between network states).
pub trait TransitionModel {
    /// Transports `reward` observed under `from` into state `to`.
    /// Returning `None` declares the pair non-transportable; such records
    /// are dropped from the estimate.
    fn transport(&self, reward: f64, from: StateTag, to: StateTag) -> Option<f64>;
}

/// Multiplicative state transport: each state has a performance scale
/// relative to a common baseline; rewards move between states by the scale
/// ratio. The paper's "degrade the performance in the trace by 20%"
/// example is `ScaleTransition` with peak scale `0.8` relative to morning
/// scale `1.0`.
#[derive(Debug, Clone)]
pub struct ScaleTransition {
    scales: Vec<(StateTag, f64)>,
}

impl ScaleTransition {
    /// Creates a transport from per-state scales.
    ///
    /// # Panics
    /// Panics if any scale is non-positive or a state repeats.
    pub fn new(scales: Vec<(StateTag, f64)>) -> Self {
        for (i, (tag, s)) in scales.iter().enumerate() {
            assert!(
                s.is_finite() && *s > 0.0,
                "scale for {tag:?} must be positive"
            );
            assert!(
                !scales[..i].iter().any(|(t, _)| t == tag),
                "duplicate state {tag:?} in transition scales"
            );
        }
        Self { scales }
    }

    fn scale(&self, tag: StateTag) -> Option<f64> {
        self.scales.iter().find(|(t, _)| *t == tag).map(|(_, s)| *s)
    }
}

impl ScaleTransition {
    /// Calibrates per-state scales from a state-tagged trace: each state's
    /// scale is its mean observed reward relative to `reference`'s — the
    /// paper's §4.3 proposal ("collecting a few samples from various
    /// network states, and then identifying the transition function")
    /// in its simplest multiplicative form.
    ///
    /// States absent from the trace get no scale (and are therefore
    /// non-transportable). Errors if the reference state is absent or has
    /// zero mean reward.
    pub fn calibrate(trace: &Trace, reference: StateTag) -> Result<Self, EstimatorError> {
        let mut sums: Vec<(StateTag, f64, usize)> = Vec::new();
        for r in trace.records() {
            let Some(tag) = r.state else { continue };
            match sums.iter_mut().find(|(t, _, _)| *t == tag) {
                Some((_, s, n)) => {
                    *s += r.reward;
                    *n += 1;
                }
                None => sums.push((tag, r.reward, 1)),
            }
        }
        let ref_mean = sums
            .iter()
            .find(|(t, _, _)| *t == reference)
            .map(|(_, s, n)| s / *n as f64)
            .ok_or(EstimatorError::NoUsableRecords)?;
        if ref_mean == 0.0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let scales = sums
            .into_iter()
            .map(|(t, s, n)| (t, (s / n as f64) / ref_mean))
            .filter(|(_, scale)| scale.is_finite() && *scale > 0.0)
            .collect();
        Ok(Self::new(scales))
    }
}

impl TransitionModel for ScaleTransition {
    fn transport(&self, reward: f64, from: StateTag, to: StateTag) -> Option<f64> {
        if from == to {
            return Some(reward);
        }
        let sf = self.scale(from)?;
        let st = self.scale(to)?;
        Some(reward * st / sf)
    }
}

/// Identity transport that only matches identical states — pure state
/// matching with no cross-state borrowing.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchOnly;

impl TransitionModel for MatchOnly {
    fn transport(&self, reward: f64, from: StateTag, to: StateTag) -> Option<f64> {
        (from == to).then_some(reward)
    }
}

/// DR estimation restricted/transported to a target system state.
///
/// Records without a state tag are treated as non-transportable and
/// dropped (a trace that never tagged states should use plain
/// [`crate::DoublyRobust`] instead).
pub struct StateAwareDr<M: RewardModel, T: TransitionModel> {
    model: M,
    transition: T,
    target: StateTag,
}

impl<M: RewardModel, T: TransitionModel> StateAwareDr<M, T> {
    /// Creates a state-aware DR estimator evaluating in state `target`.
    pub fn new(model: M, transition: T, target: StateTag) -> Self {
        Self {
            model,
            transition,
            target,
        }
    }

    /// The target evaluation state.
    pub fn target(&self) -> StateTag {
        self.target
    }

    /// Estimates `V(new_policy)` in the target state.
    ///
    /// Every usable record's observed reward — and its model prediction's
    /// residual baseline — is transported into the target state before the
    /// standard DR combination. Errors with
    /// [`EstimatorError::NoUsableRecords`] when nothing is transportable.
    pub fn estimate(
        &self,
        trace: &Trace,
        new_policy: &dyn Policy,
    ) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let space = trace.space();
        let mut contributions = Vec::new();
        let mut used_weights = Vec::new();
        for (rec, &w) in trace.records().iter().zip(&weights) {
            let Some(from) = rec.state else { continue };
            let Some(reward) = self.transition.transport(rec.reward, from, self.target) else {
                continue;
            };
            let probs = new_policy.probabilities(&rec.context);
            let dm_term: f64 = space
                .iter()
                .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                .sum();
            let residual = reward - self.model.predict(&rec.context, rec.decision);
            contributions.push(dm_term + w * residual);
            used_weights.push(w);
        }
        if contributions.is_empty() {
            return Err(EstimatorError::NoUsableRecords);
        }
        let diagnostics = WeightDiagnostics::from_weights(&used_weights);
        emit_weight_health(
            "StateAwareDR",
            &diagnostics,
            &[
                ("coverage", contributions.len() as f64 / trace.len() as f64),
                ("match_count", contributions.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(contributions, diagnostics))
    }

    /// Batched counterpart of [`StateAwareDr::estimate`]: state tags,
    /// rewards, importance weights and — when the batch carries this
    /// estimator's model — DM terms and logged-decision predictions all
    /// come from the shared batch. Bit-identical to the unbatched path.
    pub fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        let n = trace.len();
        let space = trace.space();
        let scores = batch.model_scores();
        match scores {
            Some(_) => note_reuse("StateAwareDR", 3 * n as u64, 0),
            None => note_reuse("StateAwareDR", 2 * n as u64, n as u64),
        }
        let mut contributions = Vec::new();
        let mut used_weights = Vec::new();
        for (i, (&w, &state)) in weights.iter().zip(batch.states()).enumerate() {
            let Some(from) = state else { continue };
            let reward = batch.rewards()[i];
            let Some(reward) = self.transition.transport(reward, from, self.target) else {
                continue;
            };
            let (dm_term, q_logged) = match scores {
                Some(s) => (s.dm_terms()[i], s.q_logged()[i]),
                None => {
                    let rec = &trace.records()[i];
                    let probs = batch.probs_row(i);
                    let dm: f64 = space
                        .iter()
                        .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                        .sum();
                    (dm, self.model.predict(&rec.context, rec.decision))
                }
            };
            let residual = reward - q_logged;
            contributions.push(dm_term + w * residual);
            used_weights.push(w);
        }
        if contributions.is_empty() {
            return Err(EstimatorError::NoUsableRecords);
        }
        let diagnostics = WeightDiagnostics::from_weights(&used_weights);
        emit_weight_health(
            "StateAwareDR",
            &diagnostics,
            &[
                ("coverage", contributions.len() as f64 / trace.len() as f64),
                ("match_count", contributions.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(contributions, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use crate::estimate::Estimator;
    use ddn_models::ConstantModel;
    use ddn_policy::UniformRandomPolicy;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    /// Morning reward 10, peak reward 8 (20% worse), both states logged.
    fn two_state_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let peak = rng.chance(0.5);
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", 0).finish();
                let r = if peak { 8.0 } else { 10.0 };
                TraceRecord::new(c, Decision::from_index(d), r)
                    .with_propensity(0.5)
                    .with_state(if peak {
                        StateTag::HIGH_LOAD
                    } else {
                        StateTag::LOW_LOAD
                    })
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn match_only_uses_target_state_records() {
        let t = two_state_trace(2000, 31);
        let newp = UniformRandomPolicy::new(space());
        let est = StateAwareDr::new(ConstantModel::zero(), MatchOnly, StateTag::HIGH_LOAD);
        let e = est.estimate(&t, &newp).unwrap();
        assert!((e.value - 8.0).abs() < 0.1, "peak estimate {}", e.value);
        // Roughly half the records are usable.
        assert!((e.per_record.len() as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn naive_dr_is_biased_across_states() {
        // Plain DR pools morning and peak records: estimates ~9 when the
        // peak-hour truth is 8 — the §4.1 bias the state-aware variant fixes.
        let t = two_state_trace(2000, 32);
        let newp = UniformRandomPolicy::new(space());
        let naive = DoublyRobust::new(ConstantModel::zero())
            .estimate(&t, &newp)
            .unwrap();
        assert!((naive.value - 9.0).abs() < 0.1, "pooled {}", naive.value);
    }

    #[test]
    fn scale_transition_transports_morning_into_peak() {
        // Transition model: peak is 20% worse (scale 0.8 vs 1.0). All
        // records become usable and morning rewards 10 → 8.
        let t = two_state_trace(2000, 33);
        let newp = UniformRandomPolicy::new(space());
        let trans =
            ScaleTransition::new(vec![(StateTag::LOW_LOAD, 1.0), (StateTag::HIGH_LOAD, 0.8)]);
        let est = StateAwareDr::new(ConstantModel::zero(), trans, StateTag::HIGH_LOAD);
        let e = est.estimate(&t, &newp).unwrap();
        assert!((e.value - 8.0).abs() < 0.05, "transported {}", e.value);
        assert_eq!(e.per_record.len(), 2000);
    }

    #[test]
    fn scale_transition_is_symmetric() {
        let trans =
            ScaleTransition::new(vec![(StateTag::LOW_LOAD, 1.0), (StateTag::HIGH_LOAD, 0.8)]);
        let down = trans
            .transport(10.0, StateTag::LOW_LOAD, StateTag::HIGH_LOAD)
            .unwrap();
        let up = trans
            .transport(down, StateTag::HIGH_LOAD, StateTag::LOW_LOAD)
            .unwrap();
        assert!((down - 8.0).abs() < 1e-12);
        assert!((up - 10.0).abs() < 1e-12);
        assert_eq!(
            trans.transport(5.0, StateTag::LOW_LOAD, StateTag::LOW_LOAD),
            Some(5.0)
        );
    }

    #[test]
    fn unknown_state_not_transportable() {
        let trans = ScaleTransition::new(vec![(StateTag::LOW_LOAD, 1.0)]);
        assert_eq!(
            trans.transport(1.0, StateTag::OVERLOAD, StateTag::LOW_LOAD),
            None
        );
    }

    #[test]
    fn untagged_records_dropped_and_empty_errors() {
        let s = schema();
        let recs = vec![TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )
        .with_propensity(0.5)];
        let t = Trace::from_records(s, space(), recs).unwrap();
        let newp = UniformRandomPolicy::new(space());
        let est = StateAwareDr::new(ConstantModel::zero(), MatchOnly, StateTag::LOW_LOAD);
        assert!(matches!(
            est.estimate(&t, &newp),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    fn calibration_recovers_the_ratio() {
        // Morning rewards 10, peak rewards 8 — calibrated scale for peak
        // relative to morning must be 0.8, and transporting morning
        // rewards into peak must land at 8.
        let t = two_state_trace(4_000, 77);
        let trans = ScaleTransition::calibrate(&t, StateTag::LOW_LOAD).unwrap();
        let moved = trans
            .transport(10.0, StateTag::LOW_LOAD, StateTag::HIGH_LOAD)
            .unwrap();
        assert!((moved - 8.0).abs() < 0.1, "transported {moved}");
        // Self-transport is identity.
        assert_eq!(
            trans.transport(3.0, StateTag::LOW_LOAD, StateTag::LOW_LOAD),
            Some(3.0)
        );
    }

    #[test]
    fn calibration_requires_the_reference_state() {
        let t = two_state_trace(100, 78);
        assert!(matches!(
            ScaleTransition::calibrate(&t, StateTag::OVERLOAD),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_scale_panics() {
        let _ = ScaleTransition::new(vec![(StateTag::LOW_LOAD, 0.0)]);
    }
}
