//! Inverse Propensity Scoring estimators (paper §3).

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use ddn_policy::Policy;
use ddn_trace::Trace;

/// Computes the importance weight vector `w_k = μ_new(d_k|c_k) / μ_old(d_k|c_k)`.
pub(crate) fn importance_weights(
    trace: &Trace,
    new_policy: &dyn Policy,
) -> Result<Vec<f64>, EstimatorError> {
    trace
        .records()
        .iter()
        .enumerate()
        .map(|(k, rec)| {
            let p_old = rec.require_propensity(k)?;
            let p_new = new_policy.prob(&rec.context, rec.decision);
            Ok(p_new / p_old)
        })
        .collect()
}

/// Plain IPS:
///
/// ```text
/// V̂_IPS = (1/n) Σ_k  [μ_new(d_k|c_k) / μ_old(d_k|c_k)] · r_k
/// ```
///
/// "Less prone to problems of bias since no model is assumed for the
/// rewards … \[but\] can have large variance since we are inflating the
/// influence of tuples for which μ_old(d_k|c_k) is small" (§3). CFA's
/// decision-matching over a uniformly random trace is a primitive IPS
/// (§3 "Why DR for networking").
#[derive(Debug, Clone, Copy, Default)]
pub struct Ips;

impl Ips {
    /// Creates an IPS estimator.
    pub fn new() -> Self {
        Self
    }
}

impl Estimator for Ips {
    fn name(&self) -> &str {
        "IPS"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let per_record: Vec<f64> = weights
            .iter()
            .zip(trace.records())
            .map(|(w, rec)| w * rec.reward)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl BatchEstimator for Ips {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        note_reuse(self.name(), trace.len() as u64, 0);
        let per_record: Vec<f64> = weights
            .iter()
            .zip(batch.rewards())
            .map(|(w, r)| w * r)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

/// Self-normalized IPS (SNIPS):
///
/// ```text
/// V̂_SNIPS = Σ_k w_k r_k / Σ_k w_k
/// ```
///
/// Trades a vanishing bias for substantially lower variance and exact
/// invariance to reward translation. The denominator concentrates around
/// `n` under correct propensities.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfNormalizedIps;

impl SelfNormalizedIps {
    /// Creates a SNIPS estimator.
    pub fn new() -> Self {
        Self
    }
}

impl Estimator for SelfNormalizedIps {
    fn name(&self) -> &str {
        "SNIPS"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let wsum: f64 = weights.iter().sum();
        if wsum <= 0.0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let n = weights.len() as f64;
        // Scale so that per-record contributions average to the SNIPS value.
        let per_record: Vec<f64> = weights
            .iter()
            .zip(trace.records())
            .map(|(w, rec)| n * w * rec.reward / wsum)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl BatchEstimator for SelfNormalizedIps {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        note_reuse(self.name(), trace.len() as u64, 0);
        let wsum: f64 = weights.iter().sum();
        if wsum <= 0.0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let n = weights.len() as f64;
        let per_record: Vec<f64> = weights
            .iter()
            .zip(batch.rewards())
            .map(|(w, r)| n * w * r / wsum)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

/// Weight-clipped IPS: weights are capped at `max_weight`, bounding the
/// variance contribution of any single record at the cost of bias. The
/// standard practical mitigation for the §4.1 "not enough randomness"
/// problem when the logging policy can't be changed.
#[derive(Debug, Clone, Copy)]
pub struct ClippedIps {
    max_weight: f64,
}

impl ClippedIps {
    /// Creates a clipped-IPS estimator with the given weight cap.
    ///
    /// # Panics
    /// Panics unless `max_weight > 0`.
    pub fn new(max_weight: f64) -> Self {
        assert!(
            max_weight > 0.0 && max_weight.is_finite(),
            "max_weight must be positive, got {max_weight}"
        );
        Self { max_weight }
    }

    /// The weight cap.
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }
}

impl Estimator for ClippedIps {
    fn name(&self) -> &str {
        "ClippedIPS"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let raw = importance_weights(trace, new_policy)?;
        let clipped = raw.iter().filter(|&&w| w > self.max_weight).count();
        let weights: Vec<f64> = raw.into_iter().map(|w| w.min(self.max_weight)).collect();
        let per_record: Vec<f64> = weights
            .iter()
            .zip(trace.records())
            .map(|(w, rec)| w * rec.reward)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[("clip_rate", clipped as f64 / weights.len().max(1) as f64)],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl BatchEstimator for ClippedIps {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let raw = batch.weights()?;
        note_reuse(self.name(), trace.len() as u64, 0);
        let clipped = raw.iter().filter(|&&w| w > self.max_weight).count();
        let weights: Vec<f64> = raw.iter().map(|w| w.min(self.max_weight)).collect();
        let per_record: Vec<f64> = weights
            .iter()
            .zip(batch.rewards())
            .map(|(w, r)| w * r)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[("clip_rate", clipped as f64 / weights.len().max(1) as f64)],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    /// Trace logged by a uniform policy over 2 decisions; reward = decision
    /// index + group. True value of "always pick d1" = mean(1 + g).
    fn uniform_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), d as f64 + g as f64)
                    .with_propensity(0.5)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap()
    }

    #[test]
    fn ips_unbiased_under_uniform_logging() {
        // True value of "always d1" with g ~ Uniform{0,1}: 1 + 0.5 = 1.5.
        let t = uniform_trace(20_000, 11);
        let newp = LookupPolicy::constant(t.space().clone(), 1);
        let e = Ips::new().estimate(&t, &newp).unwrap();
        assert!((e.value - 1.5).abs() < 0.05, "IPS {}", e.value);
        // Matching-only: half the records have weight 0, other half 2.
        assert!((e.diagnostics.zero_weight_fraction - 0.5).abs() < 0.02);
        assert!((e.diagnostics.max_weight - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ips_on_policy_equals_trace_mean() {
        // Evaluating the logging policy itself: weights all 1 in
        // expectation; with exact propensities, uniform new policy ⇒
        // weight = (1/2)/(1/2) = 1 for every record.
        let t = uniform_trace(500, 3);
        let newp = UniformRandomPolicy::new(t.space().clone());
        let e = Ips::new().estimate(&t, &newp).unwrap();
        assert!((e.value - t.mean_reward()).abs() < 1e-12);
        assert_eq!(e.diagnostics.max_weight, 1.0);
    }

    #[test]
    fn snips_matches_ips_under_balanced_weights() {
        let t = uniform_trace(10_000, 7);
        let newp = LookupPolicy::constant(t.space().clone(), 1);
        let ips = Ips::new().estimate(&t, &newp).unwrap().value;
        let snips = SelfNormalizedIps::new().estimate(&t, &newp).unwrap().value;
        assert!((ips - snips).abs() < 0.05, "ips {ips} vs snips {snips}");
        assert!((snips - 1.5).abs() < 0.05);
    }

    #[test]
    fn snips_invariant_to_reward_shift() {
        // Add +100 to every reward: SNIPS shifts by exactly +100 even with
        // unbalanced weights; IPS does not (when mean weight ≠ 1).
        let s = schema();
        let make = |shift: f64| {
            let recs = vec![
                TraceRecord::new(
                    Context::build(&s).set_cat("g", 0).finish(),
                    Decision::from_index(1),
                    1.0 + shift,
                )
                .with_propensity(0.1), // rare under old policy → weight 10
                TraceRecord::new(
                    Context::build(&s).set_cat("g", 1).finish(),
                    Decision::from_index(0),
                    0.0 + shift,
                )
                .with_propensity(0.9),
            ];
            Trace::from_records(s.clone(), DecisionSpace::of(&["a", "b"]), recs).unwrap()
        };
        let newp = LookupPolicy::constant(DecisionSpace::of(&["a", "b"]), 1);
        let v0 = SelfNormalizedIps::new()
            .estimate(&make(0.0), &newp)
            .unwrap()
            .value;
        let v100 = SelfNormalizedIps::new()
            .estimate(&make(100.0), &newp)
            .unwrap()
            .value;
        assert!(
            (v100 - v0 - 100.0).abs() < 1e-9,
            "shift broke SNIPS: {v0} -> {v100}"
        );
    }

    #[test]
    fn clipping_caps_weights() {
        let s = schema();
        let recs = vec![TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(1),
            1.0,
        )
        .with_propensity(0.01)]; // raw weight 100
        let t = Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap();
        let newp = LookupPolicy::constant(t.space().clone(), 1);
        let raw = Ips::new().estimate(&t, &newp).unwrap();
        let clipped = ClippedIps::new(10.0).estimate(&t, &newp).unwrap();
        assert!((raw.value - 100.0).abs() < 1e-9);
        assert!((clipped.value - 10.0).abs() < 1e-9);
        assert_eq!(clipped.diagnostics.max_weight, 10.0);
    }

    #[test]
    fn missing_propensity_is_an_error() {
        let s = schema();
        let recs = vec![TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )];
        let t = Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap();
        let newp = UniformRandomPolicy::new(t.space().clone());
        assert!(matches!(
            Ips::new().estimate(&t, &newp),
            Err(EstimatorError::Trace(
                ddn_trace::TraceError::MissingPropensity { record: 0 }
            ))
        ));
    }

    #[test]
    fn snips_errors_when_all_weights_zero() {
        // New policy deterministic on d1, trace only has d0 → all weights 0.
        let s = schema();
        let recs = vec![TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )
        .with_propensity(0.5)];
        let t = Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap();
        let newp = LookupPolicy::constant(t.space().clone(), 1);
        assert!(matches!(
            SelfNormalizedIps::new().estimate(&t, &newp),
            Err(EstimatorError::NoUsableRecords)
        ));
        // Plain IPS is defined (value 0) but visibly degenerate.
        let e = Ips::new().estimate(&t, &newp).unwrap();
        assert_eq!(e.value, 0.0);
        assert_eq!(e.diagnostics.zero_weight_fraction, 1.0);
    }

    #[test]
    fn ips_variance_grows_as_overlap_shrinks() {
        // Empirically: variance of IPS across seeds is larger when the
        // logging policy rarely takes the evaluated action.
        let s = schema();
        let space = DecisionSpace::of(&["a", "b"]);
        let newp = LookupPolicy::constant(space.clone(), 1);
        let run = |p1: f64, seed: u64| {
            let mut rng = Xoshiro256::seed_from(seed);
            let recs: Vec<TraceRecord> = (0..200)
                .map(|_| {
                    let d = usize::from(rng.chance(p1));
                    let c = Context::build(&s).set_cat("g", 0).finish();
                    TraceRecord::new(c, Decision::from_index(d), d as f64)
                        .with_propensity(if d == 1 { p1 } else { 1.0 - p1 })
                })
                .collect();
            let t = Trace::from_records(s.clone(), space.clone(), recs).unwrap();
            Ips::new().estimate(&t, &newp).unwrap().value
        };
        let spread = |p1: f64| {
            let vals: Vec<f64> = (0..40).map(|i| run(p1, 1000 + i)).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        assert!(
            spread(0.05) > 4.0 * spread(0.5),
            "low-overlap variance {} should dwarf high-overlap {}",
            spread(0.05),
            spread(0.5)
        );
    }
}
