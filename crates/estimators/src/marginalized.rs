//! Marginalized DR for large composite action spaces
//! (action-embedding OPE, Saito & Joachims 2022 lineage; ROADMAP item 3b).
//!
//! A production decision is rarely one knob: a CDN choice × a bitrate ×
//! a relay is a single composite arm, and the composite space easily
//! reaches thousands of arms. Vanilla IPS weights over such a space are
//! products of near-zero propensities — the Figure 7c curse of
//! dimensionality at production scale — and the ESS collapses to a
//! handful of records. But the *reward* usually depends on the arm only
//! through a coarser feature — which CDN, which bitrate tier — so the
//! importance weight can be taken over that coarse **embedding** instead:
//!
//! ```text
//! w_k = Σ_{a : e(a) = e(a_k)} μ_new(a|c_k)  /  Σ_{a : e(a) = e(a_k)} μ_old(a|c_k)
//! ```
//!
//! The marginal propensities are orders of magnitude larger than the
//! per-arm ones, so the weights stay bounded while the DR model term
//! keeps absorbing the within-group reward differences.
//!
//! The marginal denominators need the full logging *distribution* per
//! context — a scalar recorded propensity for the logged arm is not
//! enough mass to marginalize — so [`MarginalizedDr`] takes the logging
//! policy explicitly and never reads recorded propensities.
//!
//! With the identity embedding (every arm its own group) each marginal
//! sum collapses to a single probability — a one-element left fold is
//! exact — so the estimator reduces **bit-identically** to vanilla
//! [`crate::DoublyRobust`] whenever the trace's recorded propensities
//! equal the logging policy's probabilities; the reduction property test
//! pins this.

use crate::batch::{BatchEstimator, EvalBatch};
use crate::dr::dr_contributions_batch;
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::Trace;

/// A surjective map from arms onto coarse embedding groups — "which CDN",
/// "which bitrate tier" — over which importance weights are marginalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionEmbedding {
    groups: Vec<usize>,
    num_groups: usize,
}

impl ActionEmbedding {
    /// The identity embedding over `k` arms: every arm is its own group,
    /// reducing marginalized weights to vanilla per-arm weights.
    pub fn identity(k: usize) -> Self {
        assert!(k > 0, "embedding needs at least one arm");
        Self {
            groups: (0..k).collect(),
            num_groups: k,
        }
    }

    /// An embedding from an explicit per-arm group assignment.
    ///
    /// # Panics
    /// Panics if `groups` is empty.
    pub fn from_groups(groups: Vec<usize>) -> Self {
        assert!(!groups.is_empty(), "embedding needs at least one arm");
        let num_groups = groups.iter().max().copied().unwrap_or(0) + 1;
        Self { groups, num_groups }
    }

    /// Number of arms the embedding covers.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the embedding covers zero arms (unreachable through the
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The group of arm `a`.
    pub fn group_of(&self, a: usize) -> usize {
        self.groups[a]
    }

    /// The raw per-arm group assignment.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// Marginal probability mass of `row` over the group of arm `a` —
    /// an ascending-index left fold, so a singleton group equals its
    /// element exactly.
    pub fn marginal(&self, row: &[f64], a: usize) -> f64 {
        let g = self.groups[a];
        row.iter()
            .enumerate()
            .filter(|(i, _)| self.groups[*i] == g)
            .map(|(_, p)| *p)
            .sum()
    }
}

/// Marginalized Doubly Robust over an [`ActionEmbedding`] — see the
/// module docs for the estimand and the identity-embedding reduction.
pub struct MarginalizedDr<M: RewardModel> {
    model: M,
    embedding: ActionEmbedding,
    logging: Box<dyn Policy + Send + Sync>,
}

impl<M: RewardModel> MarginalizedDr<M> {
    /// Creates a marginalized-DR estimator around a fitted reward model,
    /// an embedding over the trace's arms, and the logging policy whose
    /// full distribution supplies the marginal denominators.
    pub fn new(
        model: M,
        embedding: ActionEmbedding,
        logging: Box<dyn Policy + Send + Sync>,
    ) -> Self {
        Self {
            model,
            embedding,
            logging,
        }
    }

    /// The underlying reward model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The action embedding.
    pub fn embedding(&self) -> &ActionEmbedding {
        &self.embedding
    }

    /// Marginal importance weights for every record, in record order.
    fn marginal_weights(
        &self,
        trace: &Trace,
        new_probs: impl Fn(usize) -> Vec<f64>,
    ) -> Vec<f64> {
        trace
            .records()
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                let a = rec.decision.index();
                let num = self.embedding.marginal(&new_probs(i), a);
                let den = self
                    .embedding
                    .marginal(&self.logging.probabilities(&rec.context), a);
                num / den
            })
            .collect()
    }

    fn check_embedding(&self, trace: &Trace) {
        assert_eq!(
            self.embedding.len(),
            trace.space().len(),
            "embedding covers {} arms but the trace has {}",
            self.embedding.len(),
            trace.space().len()
        );
    }
}

impl<M: RewardModel> Estimator for MarginalizedDr<M> {
    fn name(&self) -> &str {
        "MarginalizedDR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        check_space(trace, self.logging.as_ref())?;
        self.check_embedding(trace);
        let weights = self.marginal_weights(trace, |i| {
            new_policy.probabilities(&trace.records()[i].context)
        });
        let space = trace.space();
        let mut abs_residual_sum = 0.0;
        let per_record: Vec<f64> = trace
            .records()
            .iter()
            .zip(&weights)
            .map(|(rec, &w)| {
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
                abs_residual_sum += residual.abs();
                dm_term + w * residual
            })
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("embedding_groups", self.embedding.num_groups() as f64),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M: RewardModel> BatchEstimator for MarginalizedDr<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        check_space(trace, self.logging.as_ref())?;
        self.check_embedding(trace);
        let weights = self.marginal_weights(trace, |i| batch.probs_row(i).to_vec());
        let (per_record, abs_residual_sum) =
            dr_contributions_batch(self.name(), trace, batch, &self.model, &weights);
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("embedding_groups", self.embedding.num_groups() as f64),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use crate::ips::Ips;
    use ddn_models::ConstantModel;
    use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, DecisionSpace, Trace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    /// A composite space: 4 CDNs × 3 bitrates = 12 arms, grouped by CDN.
    fn composite_space() -> DecisionSpace {
        DecisionSpace::new(
            (0..12)
                .map(|a| format!("cdn{}_br{}", a / 3, a % 3))
                .collect(),
        )
    }

    fn cdn_embedding() -> ActionEmbedding {
        ActionEmbedding::from_groups((0..12).map(|a| a / 3).collect())
    }

    /// Reward depends on the arm only through the CDN group.
    fn truth(g: u32, cdn: usize) -> f64 {
        1.0 + g as f64 + 2.0 * cdn as f64
    }

    fn logged_trace(n: usize, seed: u64) -> (Trace, EpsilonSmoothedPolicy) {
        let s = schema();
        let space = composite_space();
        let logger =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space.clone(), 0)), 0.6);
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                let (d, p) = logger.sample_with_prob(&c, &mut rng);
                TraceRecord::new(c, d, truth(g, d.index() / 3)).with_propensity(p)
            })
            .collect();
        (
            Trace::from_records(s, space.clone(), recs).unwrap(),
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space, 0)), 0.6),
        )
    }

    #[test]
    fn identity_embedding_reduces_to_dr_bit_for_bit() {
        let (t, logger) = logged_trace(300, 31);
        let newp = LookupPolicy::constant(composite_space(), 7);
        let model = || ConstantModel::new(2.0);
        let mdr = MarginalizedDr::new(
            model(),
            ActionEmbedding::identity(12),
            Box::new(logger),
        );
        let a = mdr.estimate(&t, &newp).unwrap();
        let b = DoublyRobust::new(model()).estimate(&t, &newp).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        for (x, y) in a.per_record.iter().zip(&b.per_record) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let (t, logger) = logged_trace(400, 32);
        let newp = LookupPolicy::constant(composite_space(), 4);
        let model = ConstantModel::new(1.0);
        let mdr = MarginalizedDr::new(model.clone(), cdn_embedding(), Box::new(logger));
        let batch = EvalBatch::with_model(&t, &newp, &model).unwrap();
        let s = mdr.estimate(&t, &newp).unwrap();
        let b = mdr.estimate_batch(&t, &batch).unwrap();
        assert_eq!(s.value.to_bits(), b.value.to_bits());
        assert_eq!(s.diagnostics, b.diagnostics);
    }

    #[test]
    fn marginal_weights_bound_ess_collapse() {
        // Composite-arm IPS collapses ESS; marginalized weights keep it
        // near n because the group propensities are large.
        let (t, logger) = logged_trace(500, 33);
        let newp =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(composite_space(), 9)), 0.4);
        let ips = Ips::new().estimate(&t, &newp).unwrap();
        let mdr = MarginalizedDr::new(ConstantModel::zero(), cdn_embedding(), Box::new(logger))
            .estimate(&t, &newp)
            .unwrap();
        assert!(
            mdr.diagnostics.effective_sample_size > 2.0 * ips.diagnostics.effective_sample_size,
            "marginal ESS {} should dwarf composite ESS {}",
            mdr.diagnostics.effective_sample_size,
            ips.diagnostics.effective_sample_size
        );
        assert!(mdr.diagnostics.max_weight < ips.diagnostics.max_weight);
    }

    #[test]
    fn needs_no_recorded_propensities() {
        // Strip the propensities: marginalized DR still works because the
        // logging policy supplies the denominators.
        let (t, logger) = logged_trace(100, 34);
        let bare: Vec<TraceRecord> = t
            .records()
            .iter()
            .map(|r| TraceRecord::new(r.context.clone(), r.decision, r.reward))
            .collect();
        let t2 = Trace::from_records(t.schema().clone(), t.space().clone(), bare).unwrap();
        let newp = LookupPolicy::constant(composite_space(), 2);
        let mdr = MarginalizedDr::new(ConstantModel::new(0.5), cdn_embedding(), Box::new(logger));
        assert!(mdr.estimate(&t2, &newp).is_ok());
        assert!(Ips::new().estimate(&t2, &newp).is_err());
    }

    #[test]
    fn marginal_of_uniform_row_is_group_mass() {
        let emb = cdn_embedding();
        let uniform = UniformRandomPolicy::new(composite_space());
        let c = Context::build(&schema()).set_cat("g", 0).finish();
        let row = uniform.probabilities(&c);
        // Each CDN group holds 3 of 12 uniform arms: mass 1/4.
        for a in 0..12 {
            assert!((emb.marginal(&row, a) - 0.25).abs() < 1e-12);
        }
        assert_eq!(emb.num_groups(), 4);
    }

    #[test]
    fn singleton_marginal_is_exact() {
        let emb = ActionEmbedding::identity(3);
        let row = [-0.0, 0.25, 1e-300];
        assert_eq!(emb.marginal(&row, 0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(emb.marginal(&row, 2).to_bits(), 1e-300f64.to_bits());
    }
}
