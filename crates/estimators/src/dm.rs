//! The Direct Method estimator (paper §3).

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::Trace;

/// Direct Method (DM): evaluate the new policy entirely through a reward
/// model r̂(c, d):
///
/// ```text
/// V̂_DM = (1/n) Σ_k Σ_d μ_new(d | c_k) · r̂(c_k, d)
/// ```
///
/// DM "avoids the coverage problem by using all the available trace data,
/// but relies crucially on the ability to generate an accurate reward
/// model" (§1). WISE's CBN evaluation and FastMPC's simulation-based QoE
/// evaluation are both DM instances (§3 "Why DR for networking").
#[derive(Debug, Clone)]
pub struct DirectMethod<M: RewardModel> {
    model: M,
}

impl<M: RewardModel> DirectMethod<M> {
    /// Creates a DM estimator around a fitted reward model.
    pub fn new(model: M) -> Self {
        Self { model }
    }

    /// The underlying reward model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: RewardModel> Estimator for DirectMethod<M> {
    fn name(&self) -> &str {
        "DM"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let space = trace.space();
        let per_record: Vec<f64> = trace
            .records()
            .iter()
            .map(|rec| {
                let probs = new_policy.probabilities(&rec.context);
                space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum()
            })
            .collect();
        let diagnostics = WeightDiagnostics::uniform(trace.len());
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M: RewardModel> BatchEstimator for DirectMethod<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let n = trace.len();
        let per_record: Vec<f64> = match batch.model_scores() {
            Some(scores) => {
                note_reuse(self.name(), 2 * n as u64, 0);
                scores.dm_terms().to_vec()
            }
            None => {
                // Probability rows come from the batch; predictions are
                // recomputed live against this estimator's model.
                note_reuse(self.name(), n as u64, n as u64);
                let space = trace.space();
                trace
                    .records()
                    .iter()
                    .enumerate()
                    .map(|(i, rec)| {
                        let probs = batch.probs_row(i);
                        space
                            .iter()
                            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                            .sum()
                    })
                    .collect()
            }
        };
        let diagnostics = WeightDiagnostics::uniform(trace.len());
        emit_weight_health(self.name(), &diagnostics, &[]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_models::{ConstantModel, FnModel};
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().numeric("x").build()
    }

    fn trace(n: usize) -> Trace {
        let s = schema();
        let recs = (0..n)
            .map(|i| {
                let c = Context::build(&s).set_numeric("x", i as f64).finish();
                TraceRecord::new(c, Decision::from_index(0), 0.0)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap()
    }

    #[test]
    fn perfect_model_deterministic_policy() {
        // Truth: r(c, d) = x + 10·d. New policy always picks d=1.
        let t = trace(5);
        let model = FnModel::new(|c: &Context, d: Decision| c.num(0) + 10.0 * d.index() as f64);
        let dm = DirectMethod::new(model);
        let newp = LookupPolicy::constant(t.space().clone(), 1);
        let e = dm.estimate(&t, &newp).unwrap();
        // mean x over 0..5 = 2; + 10 = 12.
        assert!((e.value - 12.0).abs() < 1e-12);
        assert_eq!(e.per_record.len(), 5);
        assert_eq!(e.diagnostics.effective_sample_size, 5.0);
    }

    #[test]
    fn stochastic_policy_mixes_predictions() {
        let t = trace(3);
        let model = FnModel::new(|_: &Context, d: Decision| d.index() as f64 * 2.0);
        let dm = DirectMethod::new(model);
        let newp = UniformRandomPolicy::new(t.space().clone());
        let e = dm.estimate(&t, &newp).unwrap();
        // 0.5·0 + 0.5·2 = 1.
        assert!((e.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_observed_rewards_entirely() {
        // DM with a constant model predicts the constant regardless of the
        // trace rewards — the essence of its bias risk.
        let t = trace(4);
        let dm = DirectMethod::new(ConstantModel::new(7.0));
        let newp = UniformRandomPolicy::new(t.space().clone());
        assert_eq!(dm.estimate(&t, &newp).unwrap().value, 7.0);
    }

    #[test]
    fn space_mismatch_detected() {
        let t = trace(2);
        let dm = DirectMethod::new(ConstantModel::zero());
        let newp = UniformRandomPolicy::new(DecisionSpace::of(&["only-one"]));
        assert!(matches!(
            dm.estimate(&t, &newp),
            Err(EstimatorError::SpaceMismatch {
                trace: 2,
                policy: 1
            })
        ));
    }
}
