//! Online (streaming) counterparts of the stationary estimator menu.
//!
//! The batch estimators of §3 are all per-record sums, so they admit an
//! incremental form: [`OnlineDm`], [`OnlineIps`], [`OnlineSnips`],
//! [`OnlineClippedIps`] and [`OnlineDr`] accept records one at a time via
//! `push` and produce an estimate at any point via `estimate`. The design
//! contract — property-tested in `tests/online_parity.rs` — is
//! **bit-identity with the batch engine**: replaying a full trace in order
//! through an online estimator yields exactly the bits that
//! [`crate::Estimator::estimate`] / [`crate::BatchEstimator::estimate_batch`]
//! produce, including the [`WeightDiagnostics`] and the error surface
//! (first missing propensity, SNIPS with zero weight mass).
//!
//! How bit-identity is achieved:
//!
//! - `Estimate::from_contributions` divides a *left-to-right* fold of the
//!   per-record contributions by `n`; a running `sum += contribution` in
//!   push order reproduces that fold exactly. DM, IPS, clipped IPS and DR
//!   contributions are final the moment the record arrives, so those four
//!   estimators keep O(1) state.
//! - [`WeightDiagnostics::from_weights`] is likewise a set of left folds
//!   (`Σw`, `Σw²`, zero count, running max), mirrored by [`WeightAcc`].
//! - SNIPS is the exception: its per-record term `n·w_k·r_k / Σw` embeds
//!   end-of-stream quantities inside non-associative float operations, so
//!   [`OnlineSnips`] retains the `(w_k, r_k)` pairs (O(n) state) and
//!   replays the exact batch loop at `estimate` time.
//!
//! Beyond the bit-identical estimate, every online estimator maintains
//! Welford-style streaming moments of its contributions
//! ([`StreamingMoments`]) — the variance early-warning the §2.2.2
//! discussion asks for, available *during* ingest instead of after the
//! trace closes — surfaced through `health_metrics` along with the
//! running ESS / max-weight diagnostics.
//!
//! For non-stationarity (§4.1), [`SlidingWindow`] bounds any online
//! estimator to the last `capacity` records: the windowed estimate equals
//! the batch estimate over exactly those records.

use crate::estimate::{EstimatorError, WeightDiagnostics};
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_stats::Json;
use ddn_trace::{DecisionSpace, TraceRecord};
use std::collections::VecDeque;

// ---- state serialization plumbing -------------------------------------
//
// `state_save`/`state_load` must round-trip *bits*, not values: the sums
// start at `-0.0` (the float `Sum` identity) and the running max starts
// at `-inf`, and JSON number formatting renders neither faithfully. Every
// f64 therefore travels as its `to_bits()` pattern in a JSON integer,
// which survives any JSON round trip exactly.

fn state_err(msg: impl Into<String>) -> EstimatorError {
    EstimatorError::State(msg.into())
}

fn bits(x: f64) -> Json {
    Json::Int(x.to_bits() as i64)
}

fn field<'a>(state: &'a Json, key: &str) -> Result<&'a Json, EstimatorError> {
    state
        .get(key)
        .ok_or_else(|| state_err(format!("missing field `{key}`")))
}

fn unbits(state: &Json, key: &str) -> Result<f64, EstimatorError> {
    field(state, key)?
        .as_i64()
        .map(|b| f64::from_bits(b as u64))
        .ok_or_else(|| state_err(format!("field `{key}` must hold f64 bits")))
}

fn uint(state: &Json, key: &str) -> Result<u64, EstimatorError> {
    field(state, key)?
        .as_u64()
        .ok_or_else(|| state_err(format!("field `{key}` must be a non-negative integer")))
}

fn check_kind(state: &Json, want: &str) -> Result<(), EstimatorError> {
    let got = field(state, "est")?
        .as_str()
        .ok_or_else(|| state_err("field `est` must be a string"))?;
    if got != want {
        return Err(state_err(format!(
            "state is for estimator {got:?}, not {want:?}"
        )));
    }
    Ok(())
}

/// Welford-style streaming mean/variance of per-record contributions.
///
/// This is health telemetry, not part of the bit-identity contract: the
/// estimate itself comes from the plain left-fold sum (matching the batch
/// engine), while these moments give an any-time view of estimator
/// variance — `variance / n` approximates the squared standard error.
#[derive(Debug, Clone)]
pub struct StreamingMoments {
    inner: ddn_stats::Welford,
}

impl StreamingMoments {
    fn new() -> Self {
        Self {
            inner: ddn_stats::Welford::new(),
        }
    }

    fn push(&mut self, x: f64) {
        self.inner.push(x);
    }

    /// Number of contributions observed.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Running mean contribution.
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Unbiased sample variance of the contributions.
    pub fn variance(&self) -> f64 {
        self.inner.variance()
    }

    /// Standard error of the value estimate implied by the running
    /// variance: `sqrt(variance / n)`; `0.0` before two observations.
    pub fn standard_error(&self) -> f64 {
        let n = self.inner.count();
        if n < 2 {
            0.0
        } else {
            (self.inner.variance() / n as f64).sqrt()
        }
    }

    fn state_save(&self) -> Json {
        let (n, mean, m2, min, max) = self.inner.to_raw();
        Json::Object(vec![
            ("n".into(), Json::Int(n as i64)),
            ("mean".into(), bits(mean)),
            ("m2".into(), bits(m2)),
            ("min".into(), bits(min)),
            ("max".into(), bits(max)),
        ])
    }

    fn state_load(state: &Json) -> Result<Self, EstimatorError> {
        Ok(Self {
            inner: ddn_stats::Welford::from_raw(
                uint(state, "n")?,
                unbits(state, "mean")?,
                unbits(state, "m2")?,
                unbits(state, "min")?,
                unbits(state, "max")?,
            ),
        })
    }
}

/// Running importance-weight accumulators replicating
/// [`WeightDiagnostics::from_weights`] bit-for-bit: each field is the same
/// left fold the batch version computes over the full weight vector.
#[derive(Debug, Clone)]
struct WeightAcc {
    n: usize,
    sum: f64,
    sum_sq: f64,
    zeros: usize,
    max: f64,
}

impl WeightAcc {
    fn new() -> Self {
        // std's float `Sum` folds from -0.0, so the batch sums start
        // there; matching the identity keeps the running sums
        // bit-identical even when every term is a signed zero.
        Self {
            n: 0,
            sum: -0.0,
            sum_sq: -0.0,
            zeros: 0,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, w: f64) {
        self.n += 1;
        self.sum += w;
        self.sum_sq += w * w;
        if w == 0.0 {
            self.zeros += 1;
        }
        self.max = f64::max(self.max, w);
    }

    fn diagnostics(&self) -> WeightDiagnostics {
        WeightDiagnostics {
            n: self.n,
            mean_weight: self.sum / self.n as f64,
            max_weight: self.max,
            effective_sample_size: if self.sum_sq > 0.0 {
                self.sum * self.sum / self.sum_sq
            } else {
                0.0
            },
            zero_weight_fraction: self.zeros as f64 / self.n as f64,
        }
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("n".into(), Json::Int(self.n as i64)),
            ("sum".into(), bits(self.sum)),
            ("sum_sq".into(), bits(self.sum_sq)),
            ("zeros".into(), Json::Int(self.zeros as i64)),
            ("max".into(), bits(self.max)),
        ])
    }

    fn state_load(state: &Json) -> Result<Self, EstimatorError> {
        Ok(Self {
            n: uint(state, "n")? as usize,
            sum: unbits(state, "sum")?,
            sum_sq: unbits(state, "sum_sq")?,
            zeros: uint(state, "zeros")? as usize,
            max: unbits(state, "max")?,
        })
    }
}

/// The output of an online estimator: the batch-identical value and
/// diagnostics, without the O(n) per-record vector an offline
/// [`crate::Estimate`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEstimate {
    /// The estimated expected reward `V̂(μ_new)` — bit-identical to the
    /// batch [`crate::Estimate::value`] over the same records in the same
    /// order.
    pub value: f64,
    /// Number of records pushed so far.
    pub n: usize,
    /// Importance-weight diagnostics, bit-identical to the batch path.
    pub diagnostics: WeightDiagnostics,
}

/// The streaming-estimator interface shared by the online menu, designed
/// to be object-safe so a serving layer can hold a heterogeneous bank of
/// `Box<dyn OnlineEstimator>` per session.
pub trait OnlineEstimator {
    /// Short name matching the batch twin ("DM", "IPS", "SNIPS", …).
    fn name(&self) -> &str;

    /// Ingests one record. Errors (e.g. a missing propensity) reject the
    /// record *without* corrupting accumulated state: a failed push leaves
    /// the estimator exactly as it was.
    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError>;

    /// The estimate over everything pushed so far.
    /// `Err(NoUsableRecords)` before the first record (and, for SNIPS,
    /// whenever the weight mass is not positive — same as the batch).
    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError>;

    /// Number of records accepted so far.
    fn len(&self) -> usize;

    /// Whether no records have been accepted yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears accumulated records/statistics, keeping the configuration
    /// (policy, model, thresholds). [`SlidingWindow`] relies on this.
    fn reset(&mut self);

    /// Streaming health metrics: the running weight diagnostics plus the
    /// Welford contribution moments. Safe to call at any time, including
    /// before the first record (returns `n = 0` only).
    fn health_metrics(&self) -> Vec<(&'static str, f64)>;

    /// Serializes the accumulated state (counts, running sums, weight
    /// accumulators, contribution moments) as JSON. Configuration — the
    /// policy, model, clip threshold — is *not* included: state belongs
    /// to the stream, configuration to the constructor.
    ///
    /// Every f64 is encoded as its raw bit pattern, so
    /// `state_save` → JSON text → [`OnlineEstimator::state_load`] is
    /// bit-identical: the restored estimator produces exactly the bits an
    /// unbroken estimator would, including the `-0.0` sum identity and
    /// `-inf` max-weight sentinel. This is the durability hook a serving
    /// layer's snapshot/crash-resume path builds on.
    fn state_save(&self) -> Json;

    /// Replaces this estimator's accumulated state with state captured by
    /// [`OnlineEstimator::state_save`] on an identically-configured
    /// estimator. On error (wrong estimator kind, corrupt field) the
    /// current state is left untouched.
    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError>;
}

impl<E: OnlineEstimator + ?Sized> OnlineEstimator for Box<E> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        (**self).push(rec)
    }
    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        (**self).estimate()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        (**self).health_metrics()
    }
    fn state_save(&self) -> Json {
        (**self).state_save()
    }
    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        (**self).state_load(state)
    }
}

fn common_health(
    n: usize,
    acc: Option<&WeightAcc>,
    moments: &StreamingMoments,
) -> Vec<(&'static str, f64)> {
    let mut m: Vec<(&'static str, f64)> = vec![("n", n as f64)];
    if n == 0 {
        return m;
    }
    let diag = match acc {
        Some(acc) => acc.diagnostics(),
        None => WeightDiagnostics::uniform(n),
    };
    m.push(("ess", diag.effective_sample_size));
    m.push(("max_weight", diag.max_weight));
    m.push(("mean_weight", diag.mean_weight));
    m.push(("zero_weight_fraction", diag.zero_weight_fraction));
    m.push(("contribution_mean", moments.mean()));
    m.push(("contribution_variance", moments.variance()));
    m.push(("standard_error", moments.standard_error()));
    m
}

fn check_policy_space(
    space: &DecisionSpace,
    policy: &dyn Policy,
) -> Result<(), EstimatorError> {
    if space.len() != policy.space().len() {
        return Err(EstimatorError::SpaceMismatch {
            trace: space.len(),
            policy: policy.space().len(),
        });
    }
    Ok(())
}

/// The importance weight for the record at stream position `k`, with the
/// batch path's error surface (`MissingPropensity { record: k }`).
fn weight_at(
    policy: &dyn Policy,
    rec: &TraceRecord,
    k: usize,
) -> Result<f64, EstimatorError> {
    let p_old = rec.require_propensity(k)?;
    let p_new = policy.prob(&rec.context, rec.decision);
    Ok(p_new / p_old)
}

/// Streaming Direct Method: `push` folds `Σ_d μ_new(d|c_k)·r̂(c_k,d)` into
/// a running sum. O(1) state; never needs propensities.
pub struct OnlineDm {
    space: DecisionSpace,
    policy: Box<dyn Policy + Send + Sync>,
    model: Box<dyn RewardModel + Send + Sync>,
    n: usize,
    contribution_sum: f64,
    moments: StreamingMoments,
}

impl OnlineDm {
    /// Creates a streaming DM over `space`, evaluating `policy` through
    /// `model`. Fails like the batch path when the policy's decision space
    /// does not match the trace's.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        model: Box<dyn RewardModel + Send + Sync>,
    ) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            space,
            policy,
            model,
            n: 0,
            contribution_sum: -0.0,
            moments: StreamingMoments::new(),
        })
    }
}

impl OnlineEstimator for OnlineDm {
    fn name(&self) -> &str {
        "DM"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let probs = self.policy.probabilities(&rec.context);
        let contribution: f64 = self
            .space
            .iter()
            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
            .sum();
        self.contribution_sum += contribution;
        self.moments.push(contribution);
        self.n += 1;
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.n == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.n as f64,
            n: self.n,
            diagnostics: WeightDiagnostics::uniform(self.n),
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.n = 0;
        self.contribution_sum = -0.0;
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        common_health(self.n, None, &self.moments)
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("n".into(), Json::Int(self.n as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let n = uint(state, "n")? as usize;
        let sum = unbits(state, "sum")?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.n = n;
        self.contribution_sum = sum;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming plain IPS: running `Σ w_k·r_k` plus weight accumulators.
/// O(1) state.
pub struct OnlineIps {
    policy: Box<dyn Policy + Send + Sync>,
    n: usize,
    contribution_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineIps {
    /// Creates a streaming IPS evaluator of `policy` over `space`.
    pub fn new(space: DecisionSpace, policy: Box<dyn Policy + Send + Sync>) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            policy,
            n: 0,
            contribution_sum: -0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }
}

impl OnlineEstimator for OnlineIps {
    fn name(&self) -> &str {
        "IPS"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let w = weight_at(self.policy.as_ref(), rec, self.n)?;
        let contribution = w * rec.reward;
        self.contribution_sum += contribution;
        self.acc.push(w);
        self.moments.push(contribution);
        self.n += 1;
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.n == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.n as f64,
            n: self.n,
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.n = 0;
        self.contribution_sum = -0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        common_health(self.n, Some(&self.acc), &self.moments)
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("n".into(), Json::Int(self.n as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let n = uint(state, "n")? as usize;
        let sum = unbits(state, "sum")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.n = n;
        self.contribution_sum = sum;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming self-normalized IPS.
///
/// SNIPS cannot be O(1): its per-record term `n·w_k·r_k / Σw` places the
/// final count and weight sum *inside* each term's non-associative float
/// expression, so `estimate` must replay the exact batch loop. The
/// retained state is the `(w_k, r_k)` pairs — two f64 per record.
pub struct OnlineSnips {
    policy: Box<dyn Policy + Send + Sync>,
    pairs: Vec<(f64, f64)>,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineSnips {
    /// Creates a streaming SNIPS evaluator of `policy` over `space`.
    pub fn new(space: DecisionSpace, policy: Box<dyn Policy + Send + Sync>) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            policy,
            pairs: Vec::new(),
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }
}

impl OnlineEstimator for OnlineSnips {
    fn name(&self) -> &str {
        "SNIPS"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let w = weight_at(self.policy.as_ref(), rec, self.pairs.len())?;
        self.pairs.push((w, rec.reward));
        self.acc.push(w);
        // The moments track the *unnormalized* w·r terms: the normalized
        // contributions are not knowable until the stream ends.
        self.moments.push(w * rec.reward);
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        // Same order of checks and float operations as the batch path:
        // wsum is a left fold over the weights, each contribution is
        // ((n·w)·r)/wsum, and the value is their left-fold mean.
        let wsum: f64 = self.pairs.iter().map(|(w, _)| *w).sum();
        if wsum <= 0.0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let n = self.pairs.len() as f64;
        let mut contribution_sum = -0.0;
        for (w, r) in &self.pairs {
            contribution_sum += n * w * r / wsum;
        }
        Ok(OnlineEstimate {
            value: contribution_sum / n,
            n: self.pairs.len(),
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn reset(&mut self) {
        self.pairs.clear();
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        common_health(self.pairs.len(), Some(&self.acc), &self.moments)
    }

    fn state_save(&self) -> Json {
        // The (w, r) tail is stored as a flat alternating bit array.
        let mut flat = Vec::with_capacity(self.pairs.len() * 2);
        for (w, r) in &self.pairs {
            flat.push(bits(*w));
            flat.push(bits(*r));
        }
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("pairs".into(), Json::Array(flat)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let flat = field(state, "pairs")?
            .as_array()
            .ok_or_else(|| state_err("field `pairs` must be an array"))?;
        if flat.len() % 2 != 0 {
            return Err(state_err("`pairs` must hold an even number of entries"));
        }
        let mut pairs = Vec::with_capacity(flat.len() / 2);
        for wr in flat.chunks(2) {
            let decode = |v: &Json| {
                v.as_i64()
                    .map(|b| f64::from_bits(b as u64))
                    .ok_or_else(|| state_err("`pairs` entries must hold f64 bits"))
            };
            pairs.push((decode(&wr[0])?, decode(&wr[1])?));
        }
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.pairs = pairs;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming weight-clipped IPS: weights are capped at `max_weight` before
/// they enter the running sums, exactly as [`crate::ClippedIps`] caps the
/// full vector. O(1) state.
pub struct OnlineClippedIps {
    policy: Box<dyn Policy + Send + Sync>,
    max_weight: f64,
    n: usize,
    clipped: usize,
    contribution_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineClippedIps {
    /// Creates a streaming clipped-IPS evaluator with the given weight cap.
    ///
    /// # Panics
    /// Panics unless `max_weight > 0` and finite, like
    /// [`crate::ClippedIps::new`].
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        max_weight: f64,
    ) -> Result<Self, EstimatorError> {
        assert!(
            max_weight > 0.0 && max_weight.is_finite(),
            "max_weight must be positive, got {max_weight}"
        );
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            policy,
            max_weight,
            n: 0,
            clipped: 0,
            contribution_sum: -0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }

    /// Fraction of records whose raw weight exceeded the cap.
    pub fn clip_rate(&self) -> f64 {
        self.clipped as f64 / self.n.max(1) as f64
    }
}

impl OnlineEstimator for OnlineClippedIps {
    fn name(&self) -> &str {
        "ClippedIPS"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let raw = weight_at(self.policy.as_ref(), rec, self.n)?;
        if raw > self.max_weight {
            self.clipped += 1;
        }
        let w = raw.min(self.max_weight);
        let contribution = w * rec.reward;
        self.contribution_sum += contribution;
        self.acc.push(w);
        self.moments.push(contribution);
        self.n += 1;
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.n == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.n as f64,
            n: self.n,
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.n = 0;
        self.clipped = 0;
        self.contribution_sum = -0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = common_health(self.n, Some(&self.acc), &self.moments);
        if self.n > 0 {
            m.push(("clip_rate", self.clip_rate()));
        }
        m
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("n".into(), Json::Int(self.n as i64)),
            ("clipped".into(), Json::Int(self.clipped as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let n = uint(state, "n")? as usize;
        let clipped = uint(state, "clipped")? as usize;
        let sum = unbits(state, "sum")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.n = n;
        self.clipped = clipped;
        self.contribution_sum = sum;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming Doubly Robust: running sum of
/// `dm_term_k + w_k·(r_k − r̂(c_k, d_k))`, in the exact expression shape of
/// the batch path. O(1) state.
pub struct OnlineDr {
    space: DecisionSpace,
    policy: Box<dyn Policy + Send + Sync>,
    model: Box<dyn RewardModel + Send + Sync>,
    n: usize,
    contribution_sum: f64,
    abs_residual_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineDr {
    /// Creates a streaming DR evaluator of `policy` over `space` with the
    /// given (pre-fitted) reward model.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        model: Box<dyn RewardModel + Send + Sync>,
    ) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            space,
            policy,
            model,
            n: 0,
            contribution_sum: -0.0,
            abs_residual_sum: 0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }

    /// Running mean absolute model residual at the logged decisions — the
    /// DM half's calibration check.
    pub fn mean_abs_residual(&self) -> f64 {
        self.abs_residual_sum / self.n.max(1) as f64
    }
}

impl OnlineEstimator for OnlineDr {
    fn name(&self) -> &str {
        "DR"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let w = weight_at(self.policy.as_ref(), rec, self.n)?;
        let probs = self.policy.probabilities(&rec.context);
        let dm_term: f64 = self
            .space
            .iter()
            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
            .sum();
        let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
        let contribution = dm_term + w * residual;
        self.contribution_sum += contribution;
        self.abs_residual_sum += residual.abs();
        self.acc.push(w);
        self.moments.push(contribution);
        self.n += 1;
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.n == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.n as f64,
            n: self.n,
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.n = 0;
        self.contribution_sum = -0.0;
        self.abs_residual_sum = 0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = common_health(self.n, Some(&self.acc), &self.moments);
        if self.n > 0 {
            m.push(("mean_abs_residual", self.mean_abs_residual()));
        }
        m
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("n".into(), Json::Int(self.n as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("abs_residual_sum".into(), bits(self.abs_residual_sum)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let n = uint(state, "n")? as usize;
        let sum = unbits(state, "sum")?;
        let abs_residual_sum = unbits(state, "abs_residual_sum")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.n = n;
        self.contribution_sum = sum;
        self.abs_residual_sum = abs_residual_sum;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming adaptively-weighted IPS ([`crate::AdaptiveIps`]).
///
/// Like SNIPS, the stabilized per-record term `(h_k·Γ_k)·(n/Σh)` embeds
/// end-of-stream quantities (`n`, `Σh`) inside non-associative float
/// expressions, so the estimator retains the `(h_k, Γ_k)` pairs — two
/// f64 per record — and replays the exact batch fold at `estimate` time.
pub struct OnlineAdaptiveIps {
    policy: Box<dyn Policy + Send + Sync>,
    mode: crate::adaptive::AdaptiveWeights,
    /// `(h_k, Γ_k)` per accepted record, in push order.
    pairs: Vec<(f64, f64)>,
    /// EMA of past squared weights — the stabilizer's variance tracker.
    ema: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineAdaptiveIps {
    /// Creates a streaming adaptive-IPS evaluator of `policy` over
    /// `space` with the given stabilizer schedule.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        mode: crate::adaptive::AdaptiveWeights,
    ) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            policy,
            mode,
            pairs: Vec::new(),
            ema: 1.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }

    /// The running stabilizer mass `Σh` — the same left fold the batch
    /// path computes.
    pub fn hsum(&self) -> f64 {
        self.pairs.iter().map(|(h, _)| *h).sum()
    }
}

/// The shared `estimate` tail of the adaptive family: replay the exact
/// batch fold `(1/n)·Σ (h_k·Γ_k)·(n/Σh)` over the retained pairs.
fn adaptive_estimate(
    pairs: &[(f64, f64)],
    acc: &WeightAcc,
) -> Result<OnlineEstimate, EstimatorError> {
    let hsum: f64 = pairs.iter().map(|(h, _)| *h).sum();
    if hsum <= 0.0 {
        return Err(EstimatorError::NoUsableRecords);
    }
    let n = pairs.len() as f64;
    let scale = n / hsum;
    let mut contribution_sum = -0.0;
    for (h, g) in pairs {
        contribution_sum += (h * g) * scale;
    }
    Ok(OnlineEstimate {
        value: contribution_sum / n,
        n: pairs.len(),
        diagnostics: acc.diagnostics(),
    })
}

/// Encodes `(a, b)` pairs as a flat alternating bit array (the SNIPS
/// state format).
fn save_pairs(pairs: &[(f64, f64)]) -> Json {
    let mut flat = Vec::with_capacity(pairs.len() * 2);
    for (a, b) in pairs {
        flat.push(bits(*a));
        flat.push(bits(*b));
    }
    Json::Array(flat)
}

/// Decodes a flat alternating bit array back into `(a, b)` pairs.
fn load_pairs(state: &Json, key: &str) -> Result<Vec<(f64, f64)>, EstimatorError> {
    let flat = field(state, key)?
        .as_array()
        .ok_or_else(|| state_err(format!("field `{key}` must be an array")))?;
    if flat.len() % 2 != 0 {
        return Err(state_err(format!(
            "`{key}` must hold an even number of entries"
        )));
    }
    let decode = |v: &Json| {
        v.as_i64()
            .map(|b| f64::from_bits(b as u64))
            .ok_or_else(|| state_err(format!("`{key}` entries must hold f64 bits")))
    };
    let mut pairs = Vec::with_capacity(flat.len() / 2);
    for ab in flat.chunks(2) {
        pairs.push((decode(&ab[0])?, decode(&ab[1])?));
    }
    Ok(pairs)
}

impl OnlineEstimator for OnlineAdaptiveIps {
    fn name(&self) -> &str {
        "AdaptiveIPS"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let w = weight_at(self.policy.as_ref(), rec, self.pairs.len())?;
        let gamma = w * rec.reward;
        // h sees only past weights; the tracker advances afterward.
        let h = self.mode.h_at(self.ema);
        self.ema = crate::adaptive::AdaptiveWeights::advance(self.ema, w);
        self.pairs.push((h, gamma));
        self.acc.push(w);
        // The moments track the unscaled stabilized terms: the final
        // normalization is not knowable until the stream ends.
        self.moments.push(h * gamma);
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        adaptive_estimate(&self.pairs, &self.acc)
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn reset(&mut self) {
        self.pairs.clear();
        self.ema = 1.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = common_health(self.pairs.len(), Some(&self.acc), &self.moments);
        if !self.pairs.is_empty() {
            m.push(("hsum", self.hsum()));
        }
        m
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("pairs".into(), save_pairs(&self.pairs)),
            ("ema".into(), bits(self.ema)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let pairs = load_pairs(state, "pairs")?;
        let ema = unbits(state, "ema")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.pairs = pairs;
        self.ema = ema;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming adaptively-weighted DR ([`crate::AdaptiveDr`]): retains
/// `(h_k, Γ_k)` pairs where `Γ_k` is the full DR contribution, and
/// replays the stabilized fold at `estimate` time.
pub struct OnlineAdaptiveDr {
    space: DecisionSpace,
    policy: Box<dyn Policy + Send + Sync>,
    model: Box<dyn RewardModel + Send + Sync>,
    mode: crate::adaptive::AdaptiveWeights,
    pairs: Vec<(f64, f64)>,
    /// EMA of past squared weights — the stabilizer's variance tracker.
    ema: f64,
    abs_residual_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineAdaptiveDr {
    /// Creates a streaming adaptive-DR evaluator of `policy` over
    /// `space` with the given (pre-fitted) reward model and stabilizer
    /// schedule.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        model: Box<dyn RewardModel + Send + Sync>,
        mode: crate::adaptive::AdaptiveWeights,
    ) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            space,
            policy,
            model,
            mode,
            pairs: Vec::new(),
            ema: 1.0,
            abs_residual_sum: 0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }
}

impl OnlineEstimator for OnlineAdaptiveDr {
    fn name(&self) -> &str {
        "AdaptiveDR"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let w = weight_at(self.policy.as_ref(), rec, self.pairs.len())?;
        let probs = self.policy.probabilities(&rec.context);
        let dm_term: f64 = self
            .space
            .iter()
            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
            .sum();
        let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
        let gamma = dm_term + w * residual;
        // h sees only past weights; the tracker advances afterward.
        let h = self.mode.h_at(self.ema);
        self.ema = crate::adaptive::AdaptiveWeights::advance(self.ema, w);
        self.pairs.push((h, gamma));
        self.abs_residual_sum += residual.abs();
        self.acc.push(w);
        self.moments.push(h * gamma);
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        adaptive_estimate(&self.pairs, &self.acc)
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn reset(&mut self) {
        self.pairs.clear();
        self.ema = 1.0;
        self.abs_residual_sum = 0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = common_health(self.pairs.len(), Some(&self.acc), &self.moments);
        if !self.pairs.is_empty() {
            m.push(("hsum", self.pairs.iter().map(|(h, _)| *h).sum()));
            m.push((
                "mean_abs_residual",
                self.abs_residual_sum / self.pairs.len() as f64,
            ));
        }
        m
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("pairs".into(), save_pairs(&self.pairs)),
            ("ema".into(), bits(self.ema)),
            ("abs_residual_sum".into(), bits(self.abs_residual_sum)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let pairs = load_pairs(state, "pairs")?;
        let ema = unbits(state, "ema")?;
        let abs_residual_sum = unbits(state, "abs_residual_sum")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.pairs = pairs;
        self.ema = ema;
        self.abs_residual_sum = abs_residual_sum;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming marginalized DR ([`crate::MarginalizedDr`]): the marginal
/// weight is final the moment a record arrives (both policy
/// distributions are configuration), so the state is O(1) like
/// [`OnlineDr`]. Never reads recorded propensities.
pub struct OnlineMarginalizedDr {
    space: DecisionSpace,
    policy: Box<dyn Policy + Send + Sync>,
    logging: Box<dyn Policy + Send + Sync>,
    model: Box<dyn RewardModel + Send + Sync>,
    embedding: crate::marginalized::ActionEmbedding,
    n: usize,
    contribution_sum: f64,
    abs_residual_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineMarginalizedDr {
    /// Creates a streaming marginalized-DR evaluator of `policy` over
    /// `space`, with the logging policy supplying marginal denominators
    /// over `embedding`'s groups.
    ///
    /// # Panics
    /// Panics if the embedding does not cover exactly `space`'s arms.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        logging: Box<dyn Policy + Send + Sync>,
        model: Box<dyn RewardModel + Send + Sync>,
        embedding: crate::marginalized::ActionEmbedding,
    ) -> Result<Self, EstimatorError> {
        check_policy_space(&space, policy.as_ref())?;
        check_policy_space(&space, logging.as_ref())?;
        assert_eq!(
            embedding.len(),
            space.len(),
            "embedding covers {} arms but the space has {}",
            embedding.len(),
            space.len()
        );
        Ok(Self {
            space,
            policy,
            logging,
            model,
            embedding,
            n: 0,
            contribution_sum: -0.0,
            abs_residual_sum: 0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }
}

impl OnlineEstimator for OnlineMarginalizedDr {
    fn name(&self) -> &str {
        "MarginalizedDR"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let a = rec.decision.index();
        let probs = self.policy.probabilities(&rec.context);
        let num = self.embedding.marginal(&probs, a);
        let den = self
            .embedding
            .marginal(&self.logging.probabilities(&rec.context), a);
        let w = num / den;
        let dm_term: f64 = self
            .space
            .iter()
            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
            .sum();
        let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
        let contribution = dm_term + w * residual;
        self.contribution_sum += contribution;
        self.abs_residual_sum += residual.abs();
        self.acc.push(w);
        self.moments.push(contribution);
        self.n += 1;
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.n == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.n as f64,
            n: self.n,
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.n = 0;
        self.contribution_sum = -0.0;
        self.abs_residual_sum = 0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = common_health(self.n, Some(&self.acc), &self.moments);
        if self.n > 0 {
            m.push(("embedding_groups", self.embedding.num_groups() as f64));
            m.push((
                "mean_abs_residual",
                self.abs_residual_sum / self.n as f64,
            ));
        }
        m
    }

    fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("n".into(), Json::Int(self.n as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("abs_residual_sum".into(), bits(self.abs_residual_sum)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let n = uint(state, "n")? as usize;
        let sum = unbits(state, "sum")?;
        let abs_residual_sum = unbits(state, "abs_residual_sum")?;
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.n = n;
        self.contribution_sum = sum;
        self.abs_residual_sum = abs_residual_sum;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Streaming per-decision sequential DR ([`crate::SeqDr`]).
///
/// Records buffer into a pending trajectory as precomputed
/// `(dm, w, residual)` steps — propensity errors therefore surface at
/// the offending `push`, leaving state untouched. When the pending
/// buffer reaches `horizon` the trajectory folds through the backward
/// recursion and collapses into the O(1) running sums; only a partial
/// trajectory (< horizon steps) is ever retained. Weight diagnostics
/// cover completed trajectories only, matching the batch path's
/// whole-trajectory slice.
pub struct OnlineSeqDr {
    space: DecisionSpace,
    policy: Box<dyn Policy + Send + Sync>,
    model: Box<dyn RewardModel + Send + Sync>,
    horizon: usize,
    /// `(dm, w, residual)` steps of the in-flight trajectory.
    pending: Vec<(f64, f64, f64)>,
    /// Completed trajectories.
    trajectories: usize,
    contribution_sum: f64,
    abs_residual_sum: f64,
    acc: WeightAcc,
    moments: StreamingMoments,
}

impl OnlineSeqDr {
    /// Creates a streaming sequential-DR evaluator of `policy` over
    /// `space` for trajectories of exactly `horizon` steps.
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn new(
        space: DecisionSpace,
        policy: Box<dyn Policy + Send + Sync>,
        model: Box<dyn RewardModel + Send + Sync>,
        horizon: usize,
    ) -> Result<Self, EstimatorError> {
        assert!(horizon > 0, "horizon must be positive");
        check_policy_space(&space, policy.as_ref())?;
        Ok(Self {
            space,
            policy,
            model,
            horizon,
            pending: Vec::new(),
            trajectories: 0,
            contribution_sum: -0.0,
            abs_residual_sum: 0.0,
            acc: WeightAcc::new(),
            moments: StreamingMoments::new(),
        })
    }

    /// The trajectory length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Completed trajectories so far.
    pub fn trajectories(&self) -> usize {
        self.trajectories
    }
}

impl OnlineEstimator for OnlineSeqDr {
    fn name(&self) -> &str {
        "SeqDR"
    }

    fn push(&mut self, rec: &TraceRecord) -> Result<(), EstimatorError> {
        let k = self.trajectories * self.horizon + self.pending.len();
        let w = weight_at(self.policy.as_ref(), rec, k)?;
        let probs = self.policy.probabilities(&rec.context);
        let dm_term: f64 = self
            .space
            .iter()
            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
            .sum();
        let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
        self.pending.push((dm_term, w, residual));
        if self.pending.len() == self.horizon {
            // Fold the completed trajectory into the running sums. The
            // accumulators mirror the batch path's record order: weights
            // and residuals forward, then the backward value recursion.
            for &(_, w, residual) in &self.pending {
                self.acc.push(w);
                self.abs_residual_sum += residual.abs();
            }
            let v = crate::seq::trajectory_value(&self.pending);
            self.contribution_sum += v;
            self.moments.push(v);
            self.trajectories += 1;
            self.pending.clear();
        }
        Ok(())
    }

    fn estimate(&self) -> Result<OnlineEstimate, EstimatorError> {
        if self.trajectories == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        Ok(OnlineEstimate {
            value: self.contribution_sum / self.trajectories as f64,
            n: self.trajectories,
            diagnostics: self.acc.diagnostics(),
        })
    }

    fn len(&self) -> usize {
        self.trajectories * self.horizon + self.pending.len()
    }

    fn reset(&mut self) {
        self.pending.clear();
        self.trajectories = 0;
        self.contribution_sum = -0.0;
        self.abs_residual_sum = 0.0;
        self.acc = WeightAcc::new();
        self.moments = StreamingMoments::new();
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        let completed = self.trajectories * self.horizon;
        let mut m = common_health(completed, Some(&self.acc), &self.moments);
        if completed > 0 {
            m.push(("horizon", self.horizon as f64));
            m.push(("trajectories", self.trajectories as f64));
            m.push((
                "mean_abs_residual",
                self.abs_residual_sum / completed as f64,
            ));
        }
        m
    }

    fn state_save(&self) -> Json {
        let mut flat = Vec::with_capacity(self.pending.len() * 3);
        for (dm, w, residual) in &self.pending {
            flat.push(bits(*dm));
            flat.push(bits(*w));
            flat.push(bits(*residual));
        }
        Json::Object(vec![
            ("est".into(), Json::str(self.name())),
            ("trajectories".into(), Json::Int(self.trajectories as i64)),
            ("sum".into(), bits(self.contribution_sum)),
            ("abs_residual_sum".into(), bits(self.abs_residual_sum)),
            ("pending".into(), Json::Array(flat)),
            ("acc".into(), self.acc.state_save()),
            ("moments".into(), self.moments.state_save()),
        ])
    }

    fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.name())?;
        let trajectories = uint(state, "trajectories")? as usize;
        let sum = unbits(state, "sum")?;
        let abs_residual_sum = unbits(state, "abs_residual_sum")?;
        let flat = field(state, "pending")?
            .as_array()
            .ok_or_else(|| state_err("field `pending` must be an array"))?;
        if flat.len() % 3 != 0 {
            return Err(state_err("`pending` must hold step triples"));
        }
        if flat.len() / 3 >= self.horizon {
            return Err(state_err(format!(
                "pending trajectory holds {} steps but the horizon is {}",
                flat.len() / 3,
                self.horizon
            )));
        }
        let decode = |v: &Json| {
            v.as_i64()
                .map(|b| f64::from_bits(b as u64))
                .ok_or_else(|| state_err("`pending` entries must hold f64 bits"))
        };
        let mut pending = Vec::with_capacity(flat.len() / 3);
        for step in flat.chunks(3) {
            pending.push((decode(&step[0])?, decode(&step[1])?, decode(&step[2])?));
        }
        let acc = WeightAcc::state_load(field(state, "acc")?)?;
        let moments = StreamingMoments::state_load(field(state, "moments")?)?;
        self.trajectories = trajectories;
        self.contribution_sum = sum;
        self.abs_residual_sum = abs_residual_sum;
        self.pending = pending;
        self.acc = acc;
        self.moments = moments;
        Ok(())
    }
}

/// Bounds any online estimator to the most recent `capacity` records —
/// the streaming answer to §4.1 non-stationarity: when the logged world
/// drifts, only the recent regime should vote.
///
/// `push` is O(1) (it only maintains the window); `estimate` replays the
/// window through the inner estimator, so the windowed estimate is exactly
/// the batch estimate over the window's records. `estimate` therefore
/// takes `&mut self` here — it is not part of [`OnlineEstimator`].
pub struct SlidingWindow<E: OnlineEstimator> {
    inner: E,
    window: VecDeque<TraceRecord>,
    capacity: usize,
    evicted: u64,
}

impl<E: OnlineEstimator> SlidingWindow<E> {
    /// Wraps `inner`, keeping at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(inner: E, capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            inner,
            window: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Name of the wrapped estimator.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Appends a record, evicting the oldest when the window is full.
    pub fn push(&mut self, rec: &TraceRecord) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
            self.evicted += 1;
        }
        self.window.push_back(rec.clone());
    }

    /// Estimate over exactly the windowed records, computed by replaying
    /// them through the inner estimator (after a reset). Equal to the
    /// batch estimate over the same records.
    pub fn estimate(&mut self) -> Result<OnlineEstimate, EstimatorError> {
        self.inner.reset();
        for rec in &self.window {
            self.inner.push(rec)?;
        }
        self.inner.estimate()
    }

    /// Records currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window holds no records.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted so far (total pushed − window size).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serializes the window's state: the retained records (the inner
    /// estimator's accumulated state is immaterial — [`Self::estimate`]
    /// resets and replays it) plus the eviction count. The record round
    /// trip goes through [`TraceRecord::to_json`], whose float formatting
    /// is bit-exact, so a restored window estimates identically.
    pub fn state_save(&self) -> Json {
        Json::Object(vec![
            ("est".into(), Json::str(self.inner.name())),
            (
                "window".into(),
                Json::Array(self.window.iter().map(|r| r.to_json()).collect()),
            ),
            ("evicted".into(), Json::Int(self.evicted as i64)),
        ])
    }

    /// Restores window state captured by [`Self::state_save`] on a window
    /// around an identically-configured inner estimator. On error the
    /// current window is left untouched.
    pub fn state_load(&mut self, state: &Json) -> Result<(), EstimatorError> {
        check_kind(state, self.inner.name())?;
        let raw = field(state, "window")?
            .as_array()
            .ok_or_else(|| state_err("field `window` must be an array"))?;
        if raw.len() > self.capacity {
            return Err(state_err(format!(
                "window holds {} records but capacity is {}",
                raw.len(),
                self.capacity
            )));
        }
        let mut window = VecDeque::with_capacity(self.capacity);
        for rec in raw {
            window.push_back(
                TraceRecord::from_json(rec)
                    .map_err(|e| state_err(format!("bad window record: {e}")))?,
            );
        }
        self.evicted = uint(state, "evicted")?;
        self.window = window;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClippedIps, DirectMethod, DoublyRobust, Estimator, Ips, SelfNormalizedIps};
    use ddn_models::FnModel;
    use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn skewed_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let logger =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.5);
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                let (d, p) = logger.sample_with_prob(&c, &mut rng);
                let r = 2.0 + g as f64 + 3.0 * d.index() as f64;
                TraceRecord::new(c, d, r).with_propensity(p)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    fn model() -> FnModel<fn(&Context, Decision) -> f64> {
        fn f(c: &Context, d: Decision) -> f64 {
            1.5 + c.cat(0) as f64 + 2.0 * d.index() as f64
        }
        FnModel::new(f)
    }

    fn target() -> LookupPolicy {
        LookupPolicy::constant(space(), 1)
    }

    fn replay<E: OnlineEstimator>(online: &mut E, trace: &Trace) {
        for rec in trace.records() {
            online.push(rec).unwrap();
        }
    }

    #[test]
    fn ips_replay_is_bit_identical() {
        let t = skewed_trace(300, 7);
        let batch = Ips::new().estimate(&t, &target()).unwrap();
        let mut online = OnlineIps::new(space(), Box::new(target())).unwrap();
        replay(&mut online, &t);
        let e = online.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch.value.to_bits());
        assert_eq!(e.diagnostics, batch.diagnostics);
    }

    #[test]
    fn snips_replay_is_bit_identical() {
        let t = skewed_trace(300, 8);
        let batch = SelfNormalizedIps::new().estimate(&t, &target()).unwrap();
        let mut online = OnlineSnips::new(space(), Box::new(target())).unwrap();
        replay(&mut online, &t);
        let e = online.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch.value.to_bits());
        assert_eq!(e.diagnostics, batch.diagnostics);
    }

    #[test]
    fn clipped_ips_replay_is_bit_identical() {
        let t = skewed_trace(300, 9);
        let batch = ClippedIps::new(2.0).estimate(&t, &target()).unwrap();
        let mut online = OnlineClippedIps::new(space(), Box::new(target()), 2.0).unwrap();
        replay(&mut online, &t);
        let e = online.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch.value.to_bits());
        assert_eq!(e.diagnostics, batch.diagnostics);
        assert!(online.clip_rate() > 0.0, "weight-4 records must clip");
    }

    #[test]
    fn dm_and_dr_replay_are_bit_identical() {
        let t = skewed_trace(300, 10);
        let batch_dm = DirectMethod::new(model()).estimate(&t, &target()).unwrap();
        let mut online_dm =
            OnlineDm::new(space(), Box::new(target()), Box::new(model())).unwrap();
        replay(&mut online_dm, &t);
        let e = online_dm.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch_dm.value.to_bits());

        let batch_dr = DoublyRobust::new(model()).estimate(&t, &target()).unwrap();
        let mut online_dr = OnlineDr::new(space(), Box::new(target()), Box::new(model())).unwrap();
        replay(&mut online_dr, &t);
        let e = online_dr.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch_dr.value.to_bits());
        assert_eq!(e.diagnostics, batch_dr.diagnostics);
    }

    #[test]
    fn missing_propensity_fails_at_the_offending_record() {
        let s = schema();
        let good = TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )
        .with_propensity(0.5);
        let bad = TraceRecord::new(
            Context::build(&s).set_cat("g", 1).finish(),
            Decision::from_index(1),
            2.0,
        );
        let mut online = OnlineIps::new(space(), Box::new(target())).unwrap();
        online.push(&good).unwrap();
        let err = online.push(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                EstimatorError::Trace(ddn_trace::TraceError::MissingPropensity { record: 1 })
            ),
            "{err:?}"
        );
        // The failed push left state untouched: the estimator still
        // reports exactly one record.
        assert_eq!(online.len(), 1);
        assert!(online.estimate().is_ok());
    }

    #[test]
    fn empty_stream_has_no_estimate() {
        let online = OnlineIps::new(space(), Box::new(target())).unwrap();
        assert!(matches!(
            online.estimate(),
            Err(EstimatorError::NoUsableRecords)
        ));
        let health = online.health_metrics();
        assert_eq!(health, vec![("n", 0.0)]);
    }

    #[test]
    fn snips_zero_weight_mass_errors() {
        let s = schema();
        let rec = TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )
        .with_propensity(0.5);
        let mut online = OnlineSnips::new(space(), Box::new(target())).unwrap();
        online.push(&rec).unwrap();
        assert!(matches!(
            online.estimate(),
            Err(EstimatorError::NoUsableRecords)
        ));
        // Plain IPS over the same stream is defined (value 0).
        let mut ips = OnlineIps::new(space(), Box::new(target())).unwrap();
        ips.push(&rec).unwrap();
        let e = ips.estimate().unwrap();
        assert_eq!(e.value, 0.0);
        assert_eq!(e.diagnostics.zero_weight_fraction, 1.0);
    }

    #[test]
    fn space_mismatch_rejected_at_construction() {
        let wide = DecisionSpace::of(&["a", "b", "c"]);
        let err = match OnlineIps::new(wide, Box::new(target())) {
            Err(e) => e,
            Ok(_) => panic!("mismatched space must be rejected"),
        };
        assert!(matches!(
            err,
            EstimatorError::SpaceMismatch {
                trace: 3,
                policy: 2
            }
        ));
    }

    #[test]
    fn health_metrics_stream_with_the_records() {
        let t = skewed_trace(100, 11);
        let mut online = OnlineIps::new(space(), Box::new(target())).unwrap();
        replay(&mut online, &t);
        let metrics = online.health_metrics();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("n"), 100.0);
        assert!(get("ess") > 0.0 && get("ess") <= 100.0);
        assert_eq!(get("max_weight"), 4.0);
        assert!(get("standard_error") > 0.0);
    }

    #[test]
    fn sliding_window_matches_batch_over_the_window() {
        let t = skewed_trace(200, 12);
        let mut window =
            SlidingWindow::new(OnlineIps::new(space(), Box::new(target())).unwrap(), 50);
        for rec in t.records() {
            window.push(rec);
        }
        assert_eq!(window.len(), 50);
        assert_eq!(window.evicted(), 150);
        let windowed = window.estimate().unwrap();
        // The window is the last 50 records: estimate equals the batch
        // estimate over exactly that sub-trace.
        let tail = Trace::from_records(
            t.schema().clone(),
            t.space().clone(),
            t.records()[150..].to_vec(),
        )
        .unwrap();
        let batch = Ips::new().estimate(&tail, &target()).unwrap();
        assert_eq!(windowed.value.to_bits(), batch.value.to_bits());
        assert_eq!(windowed.diagnostics, batch.diagnostics);
    }

    #[test]
    fn sliding_window_tracks_regime_change() {
        // Reward doubles mid-stream: the windowed estimate follows the new
        // regime while the unwindowed estimate stays blended.
        let s = schema();
        let mk = |r: f64| {
            TraceRecord::new(
                Context::build(&s).set_cat("g", 0).finish(),
                Decision::from_index(1),
                r,
            )
            .with_propensity(0.5)
        };
        let mut full = OnlineIps::new(space(), Box::new(UniformRandomPolicy::new(space())))
            .unwrap();
        let mut window = SlidingWindow::new(
            OnlineIps::new(space(), Box::new(UniformRandomPolicy::new(space()))).unwrap(),
            40,
        );
        for _ in 0..100 {
            let rec = mk(1.0);
            full.push(&rec).unwrap();
            window.push(&rec);
        }
        for _ in 0..40 {
            let rec = mk(2.0);
            full.push(&rec).unwrap();
            window.push(&rec);
        }
        let blended = full.estimate().unwrap().value;
        let recent = window.estimate().unwrap().value;
        assert!((recent - 2.0).abs() < 1e-12, "window sees only the new regime");
        assert!(blended < recent, "full stream stays blended: {blended}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_window_panics() {
        let _ = SlidingWindow::new(OnlineIps::new(space(), Box::new(target())).unwrap(), 0);
    }

    #[test]
    fn adaptive_replay_is_bit_identical() {
        use crate::adaptive::{AdaptiveDr, AdaptiveIps, AdaptiveWeights};
        let t = skewed_trace(300, 14);
        for mode in [AdaptiveWeights::Stabilized, AdaptiveWeights::Constant] {
            let batch = AdaptiveIps::new(mode).estimate(&t, &target()).unwrap();
            let mut online =
                OnlineAdaptiveIps::new(space(), Box::new(target()), mode).unwrap();
            replay(&mut online, &t);
            let e = online.estimate().unwrap();
            assert_eq!(e.value.to_bits(), batch.value.to_bits());
            assert_eq!(e.diagnostics, batch.diagnostics);

            let batch = AdaptiveDr::new(model(), mode).estimate(&t, &target()).unwrap();
            let mut online = OnlineAdaptiveDr::new(
                space(),
                Box::new(target()),
                Box::new(model()),
                mode,
            )
            .unwrap();
            replay(&mut online, &t);
            let e = online.estimate().unwrap();
            assert_eq!(e.value.to_bits(), batch.value.to_bits());
            assert_eq!(e.diagnostics, batch.diagnostics);
        }
    }

    #[test]
    fn marginalized_replay_is_bit_identical() {
        use crate::marginalized::{ActionEmbedding, MarginalizedDr};
        let t = skewed_trace(300, 15);
        let logger = || {
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.5)
        };
        let emb = ActionEmbedding::identity(2);
        let batch = MarginalizedDr::new(model(), emb.clone(), Box::new(logger()))
            .estimate(&t, &target())
            .unwrap();
        let mut online = OnlineMarginalizedDr::new(
            space(),
            Box::new(target()),
            Box::new(logger()),
            Box::new(model()),
            emb,
        )
        .unwrap();
        replay(&mut online, &t);
        let e = online.estimate().unwrap();
        assert_eq!(e.value.to_bits(), batch.value.to_bits());
        assert_eq!(e.diagnostics, batch.diagnostics);
    }

    #[test]
    fn seq_replay_is_bit_identical() {
        use crate::seq::SeqDr;
        let t = skewed_trace(300, 16);
        for horizon in [1, 5] {
            let batch = SeqDr::new(model(), horizon).estimate(&t, &target()).unwrap();
            let mut online = OnlineSeqDr::new(
                space(),
                Box::new(target()),
                Box::new(model()),
                horizon,
            )
            .unwrap();
            replay(&mut online, &t);
            let e = online.estimate().unwrap();
            assert_eq!(e.value.to_bits(), batch.value.to_bits());
            assert_eq!(e.diagnostics, batch.diagnostics);
            assert_eq!(e.n, 300 / horizon);
        }
    }

    #[test]
    fn seq_pending_trajectory_stays_out_of_the_estimate() {
        let t = skewed_trace(10, 17);
        let mut online = OnlineSeqDr::new(
            space(),
            Box::new(target()),
            Box::new(model()),
            4,
        )
        .unwrap();
        for rec in &t.records()[..3] {
            online.push(rec).unwrap();
        }
        // Three steps of a four-step trajectory: no estimate yet.
        assert_eq!(online.len(), 3);
        assert!(matches!(
            online.estimate(),
            Err(EstimatorError::NoUsableRecords)
        ));
        online.push(&t.records()[3]).unwrap();
        assert_eq!(online.trajectories(), 1);
        assert!(online.estimate().is_ok());
    }

    #[test]
    fn reset_clears_state_but_keeps_config() {
        let t = skewed_trace(50, 13);
        let mut online = OnlineClippedIps::new(space(), Box::new(target()), 2.0).unwrap();
        replay(&mut online, &t);
        assert_eq!(online.len(), 50);
        online.reset();
        assert_eq!(online.len(), 0);
        replay(&mut online, &t);
        let again = online.estimate().unwrap();
        let batch = ClippedIps::new(2.0).estimate(&t, &target()).unwrap();
        assert_eq!(again.value.to_bits(), batch.value.to_bits());
    }
}
