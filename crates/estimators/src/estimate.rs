//! The [`Estimator`] trait, its output type [`Estimate`], and shared
//! importance-weight diagnostics.

use ddn_policy::Policy;
use ddn_trace::{Trace, TraceError};
use std::fmt;

/// Errors produced by estimators.
#[derive(Debug)]
pub enum EstimatorError {
    /// A record needed a logging propensity (`μ_old(d_k|c_k)`) but the
    /// trace doesn't carry one. Attach propensities when generating the
    /// trace, or estimate them with
    /// `ddn_trace::coverage::EmpiricalPropensity`.
    Trace(TraceError),
    /// The policy's decision space does not match the trace's.
    SpaceMismatch {
        /// Decision count in the trace.
        trace: usize,
        /// Decision count in the policy.
        policy: usize,
    },
    /// The estimator used zero records (e.g. replay rejected everything, or
    /// state matching filtered the whole trace) — no estimate exists.
    NoUsableRecords,
    /// A serialized estimator state (from `state_save`) failed to load:
    /// wrong shape, wrong estimator, or corrupt field. Loading never
    /// partially applies — on error the estimator keeps its prior state.
    State(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::Trace(e) => write!(f, "trace error: {e}"),
            EstimatorError::SpaceMismatch { trace, policy } => write!(
                f,
                "decision-space mismatch: trace has {trace} decisions, policy has {policy}"
            ),
            EstimatorError::NoUsableRecords => {
                write!(f, "no usable records — estimator cannot produce a value")
            }
            EstimatorError::State(msg) => write!(f, "invalid estimator state: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimatorError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for EstimatorError {
    fn from(e: TraceError) -> Self {
        EstimatorError::Trace(e)
    }
}

/// Importance-weight diagnostics — the variance early-warning system.
///
/// Large `max_weight` / small `effective_sample_size` is exactly the §2.2.2
/// pathology: "the estimate can be based only on a small amount of
/// matches… this can cause high variance in the evaluation results".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDiagnostics {
    /// Number of records contributing a weight (for DM this is all of
    /// them with weight 1).
    pub n: usize,
    /// Mean importance weight. For a correctly specified IPS this
    /// converges to 1.
    pub mean_weight: f64,
    /// Largest weight.
    pub max_weight: f64,
    /// Kish effective sample size `(Σw)² / Σw²`.
    pub effective_sample_size: f64,
    /// Fraction of records with weight exactly zero (decision disagrees
    /// with a deterministic new policy) — the "no match" mass.
    pub zero_weight_fraction: f64,
}

impl WeightDiagnostics {
    /// Computes diagnostics from a weight vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weight diagnostics of empty weights");
        let n = weights.len();
        let sum: f64 = weights.iter().sum();
        let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
        let zeros = weights.iter().filter(|&&w| w == 0.0).count();
        Self {
            n,
            mean_weight: sum / n as f64,
            max_weight: weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            effective_sample_size: if sum_sq > 0.0 {
                sum * sum / sum_sq
            } else {
                0.0
            },
            zero_weight_fraction: zeros as f64 / n as f64,
        }
    }

    /// Diagnostics for an estimator that weights every record equally.
    pub fn uniform(n: usize) -> Self {
        Self {
            n,
            mean_weight: 1.0,
            max_weight: 1.0,
            effective_sample_size: n as f64,
            zero_weight_fraction: 0.0,
        }
    }
}

/// The output of an estimator: the value estimate plus per-record
/// contributions (for bootstrap CIs) and weight diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated expected reward `V̂(μ_new)`.
    pub value: f64,
    /// Per-record contributions; their mean equals `value` for averaging
    /// estimators. Feed these to `ddn_stats::bootstrap_ci` for intervals.
    pub per_record: Vec<f64>,
    /// Importance-weight diagnostics.
    pub diagnostics: WeightDiagnostics,
}

impl Estimate {
    /// Builds an estimate whose value is the mean of `per_record`.
    pub fn from_contributions(per_record: Vec<f64>, diagnostics: WeightDiagnostics) -> Self {
        assert!(
            !per_record.is_empty(),
            "estimate needs at least one contribution"
        );
        let value = per_record.iter().sum::<f64>() / per_record.len() as f64;
        Self {
            value,
            per_record,
            diagnostics,
        }
    }
}

/// A policy evaluator: estimates the value of a (stationary) new policy
/// from a logged trace. The paper's DM, IPS, and DR all implement this.
pub trait Estimator {
    /// Short human-readable name ("DM", "IPS", "DR", …) used in reports.
    fn name(&self) -> &str;

    /// Estimates `V(new_policy)` from `trace`.
    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError>;
}

/// Emits an estimator's weight diagnostics (plus estimator-specific
/// `extras` such as clip rate or residual magnitude) as telemetry health
/// metrics. No-op — including the metric assembly — when no telemetry
/// collector is installed, so un-instrumented callers pay one
/// thread-local check.
pub(crate) fn emit_weight_health(
    source: &str,
    diagnostics: &WeightDiagnostics,
    extras: &[(&'static str, f64)],
) {
    if !ddn_telemetry::enabled() {
        return;
    }
    let mut metrics: Vec<(&'static str, f64)> = vec![
        ("n", diagnostics.n as f64),
        ("ess", diagnostics.effective_sample_size),
        ("max_weight", diagnostics.max_weight),
        ("mean_weight", diagnostics.mean_weight),
        ("zero_weight_fraction", diagnostics.zero_weight_fraction),
    ];
    metrics.extend_from_slice(extras);
    ddn_telemetry::record_health(source, &metrics);
}

/// Validates that the policy and trace agree on the decision space size.
/// All estimators call this first.
pub(crate) fn check_space(trace: &Trace, policy: &dyn Policy) -> Result<(), EstimatorError> {
    if trace.space().len() != policy.space().len() {
        return Err(EstimatorError::SpaceMismatch {
            trace: trace.space().len(),
            policy: policy.space().len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_diagnostics_uniform_weights() {
        let d = WeightDiagnostics::from_weights(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(d.n, 4);
        assert_eq!(d.mean_weight, 1.0);
        assert_eq!(d.max_weight, 1.0);
        assert_eq!(d.effective_sample_size, 4.0);
        assert_eq!(d.zero_weight_fraction, 0.0);
    }

    #[test]
    fn weight_diagnostics_skewed_weights() {
        // One dominant weight: ESS collapses toward 1.
        let d = WeightDiagnostics::from_weights(&[100.0, 0.0, 0.0, 0.0]);
        assert!((d.effective_sample_size - 1.0).abs() < 1e-12);
        assert_eq!(d.max_weight, 100.0);
        assert_eq!(d.zero_weight_fraction, 0.75);
    }

    #[test]
    fn estimate_from_contributions_averages() {
        let e = Estimate::from_contributions(vec![1.0, 2.0, 3.0], WeightDiagnostics::uniform(3));
        assert!((e.value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = EstimatorError::SpaceMismatch {
            trace: 4,
            policy: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        assert!(EstimatorError::NoUsableRecords
            .to_string()
            .contains("no usable"));
    }
}
