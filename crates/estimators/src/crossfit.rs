//! Cross-fitted Doubly Robust estimation.
//!
//! The plain [`crate::DoublyRobust`] is usually handed a model fitted on
//! the *same* trace it estimates from. An overfitted model's residuals on
//! its own training data are artificially small, which mutes the IPS
//! correction exactly where the model is wrong — an own-data bias that
//! the causal-inference literature (the "double/debiased ML" line
//! descending from the paper's refs \[5, 9\]) removes by **cross-fitting**:
//! split the trace into K folds, fit the model on K−1 of them, and apply
//! the DR formula to the held-out fold with that out-of-fold model.
//!
//! [`CrossFitDr`] implements this for any model-fitting closure. It costs
//! K model fits but keeps both DR guarantees while being honest about
//! model error.

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::{Trace, TraceRecord};

/// K-fold cross-fitted DR estimator.
///
/// The folds are contiguous blocks of the trace in logging order (which
/// also makes the scheme sensible for weakly non-stationary traces: each
/// fold's model is fitted mostly on other time ranges).
pub struct CrossFitDr<M, F>
where
    M: RewardModel,
    F: Fn(&Trace) -> M,
{
    fit: F,
    folds: usize,
}

impl<M, F> CrossFitDr<M, F>
where
    M: RewardModel,
    F: Fn(&Trace) -> M,
{
    /// Creates a cross-fitted DR estimator with `folds` folds.
    ///
    /// # Panics
    /// Panics if `folds < 2`.
    pub fn new(folds: usize, fit: F) -> Self {
        assert!(folds >= 2, "cross-fitting needs at least two folds");
        Self { fit, folds }
    }

    /// Number of folds.
    pub fn folds(&self) -> usize {
        self.folds
    }
}

impl<M, F> Estimator for CrossFitDr<M, F>
where
    M: RewardModel,
    F: Fn(&Trace) -> M,
{
    fn name(&self) -> &str {
        "CrossFitDR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let n = trace.len();
        if n < self.folds {
            return Err(EstimatorError::NoUsableRecords);
        }
        let records = trace.records();
        let space = trace.space();
        let mut per_record = vec![0.0; n];
        let mut weights = vec![0.0; n];

        for f in 0..self.folds {
            let lo = f * n / self.folds;
            let hi = (f + 1) * n / self.folds;
            if lo == hi {
                continue;
            }
            let train: Vec<TraceRecord> = records[..lo]
                .iter()
                .chain(&records[hi..])
                .cloned()
                .collect();
            let train_trace =
                Trace::from_records(trace.schema().clone(), trace.space().clone(), train)
                    .map_err(EstimatorError::Trace)?;
            let model = (self.fit)(&train_trace);
            for (k, rec) in records[lo..hi].iter().enumerate() {
                let idx = lo + k;
                let p_old = rec.require_propensity(idx)?;
                let w = new_policy.prob(&rec.context, rec.decision) / p_old;
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - model.predict(&rec.context, rec.decision);
                per_record[idx] = dm_term + w * residual;
                weights[idx] = w;
            }
        }
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(self.name(), &diagnostics, &[("folds", self.folds as f64)]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M, F> BatchEstimator for CrossFitDr<M, F>
where
    M: RewardModel,
    F: Fn(&Trace) -> M,
{
    /// Batched cross-fitting reuses the shared importance weights and
    /// probability rows, but deliberately **ignores** any cached model
    /// scores: the whole point of cross-fitting is that each held-out
    /// record is scored by a fold-local, out-of-fold model.
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let n = trace.len();
        if n < self.folds {
            return Err(EstimatorError::NoUsableRecords);
        }
        let weights = batch.weights()?;
        note_reuse(self.name(), 2 * n as u64, n as u64);
        let records = trace.records();
        let space = trace.space();
        let mut per_record = vec![0.0; n];

        for f in 0..self.folds {
            let lo = f * n / self.folds;
            let hi = (f + 1) * n / self.folds;
            if lo == hi {
                continue;
            }
            let train: Vec<TraceRecord> = records[..lo]
                .iter()
                .chain(&records[hi..])
                .cloned()
                .collect();
            let train_trace =
                Trace::from_records(trace.schema().clone(), trace.space().clone(), train)
                    .map_err(EstimatorError::Trace)?;
            let model = (self.fit)(&train_trace);
            for (k, rec) in records[lo..hi].iter().enumerate() {
                let idx = lo + k;
                let w = weights[idx];
                let probs = batch.probs_row(idx);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - model.predict(&rec.context, rec.decision);
                per_record[idx] = dm_term + w * residual;
            }
        }
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(self.name(), &diagnostics, &[("folds", self.folds as f64)]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use ddn_models::{ConstantModel, KnnConfig, KnnRegressor, TabularMeanModel};
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 4).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn truth(g: u32, d: usize) -> f64 {
        g as f64 + 2.0 * d as f64
    }

    fn noisy_trace(n: usize, noise: f64, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(4) as u32;
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", g).finish();
                let r = truth(g, d) + noise * (rng.next_f64() - 0.5);
                TraceRecord::new(c, Decision::from_index(d), r).with_propensity(0.5)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn crossfit_estimates_truth() {
        let t = noisy_trace(4_000, 1.0, 1);
        let newp = LookupPolicy::constant(space(), 1);
        let est = CrossFitDr::new(5, |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0));
        let v = est.estimate(&t, &newp).unwrap().value;
        // Truth: E[g] + 2 = 1.5 + 2 = 3.5.
        assert!((v - 3.5).abs() < 0.1, "{v}");
    }

    #[test]
    fn crossfit_matches_plain_dr_for_constant_model() {
        // A model that ignores the training data entirely: cross-fitting
        // must be exactly equivalent to plain DR.
        let t = noisy_trace(300, 1.0, 2);
        let newp = UniformRandomPolicy::new(space());
        let cf = CrossFitDr::new(3, |_: &Trace| ConstantModel::new(2.0));
        let plain = DoublyRobust::new(ConstantModel::new(2.0));
        let a = cf.estimate(&t, &newp).unwrap();
        let b = plain.estimate(&t, &newp).unwrap();
        assert!((a.value - b.value).abs() < 1e-12);
        for (x, y) in a.per_record.iter().zip(&b.per_record) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn crossfit_residuals_are_honest() {
        // k=1 nearest neighbour memorizes its training data: in-sample
        // residuals are ~0, out-of-fold residuals are not. Cross-fitting
        // should therefore produce a *larger* mean |residual| footprint
        // than the own-data fit — measured through the correction term's
        // dispersion.
        let t = noisy_trace(600, 4.0, 3);
        let newp = LookupPolicy::constant(space(), 1);
        let knn_cfg = KnnConfig {
            k: 1,
            standardize: false,
            match_decision: true,
        };
        let own = {
            let model = KnnRegressor::fit(&t, knn_cfg);
            DoublyRobust::new(model).estimate(&t, &newp).unwrap()
        };
        let cf = CrossFitDr::new(5, move |tr: &Trace| KnnRegressor::fit(tr, knn_cfg))
            .estimate(&t, &newp)
            .unwrap();
        let dispersion = |e: &Estimate| {
            let m = e.value;
            e.per_record.iter().map(|x| (x - m).powi(2)).sum::<f64>() / e.per_record.len() as f64
        };
        assert!(
            dispersion(&cf) > dispersion(&own),
            "own-data k=1 residuals should be suspiciously quiet: own {} vs cf {}",
            dispersion(&own),
            dispersion(&cf)
        );
    }

    #[test]
    fn too_few_records_errors() {
        let t = noisy_trace(3, 0.1, 4);
        let newp = UniformRandomPolicy::new(space());
        let est = CrossFitDr::new(5, |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0));
        assert!(matches!(
            est.estimate(&t, &newp),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let _ = CrossFitDr::new(1, |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0));
    }
}
