//! # ddn-estimators — off-policy evaluators for trace-driven networking
//!
//! **This crate is the paper's primary contribution** (§3–§4): given a
//! trace `T = {(c_k, d_k, r_k)}` logged under an old policy `μ_old` and a
//! new policy `μ_new`, estimate the expected reward
//! `V(μ_new) = (1/n) Σ_k Σ_d μ_new(d|c_k) · r(c_k, d)` the new policy would
//! have obtained on the same clients.
//!
//! ## The three basic estimators (paper §3)
//!
//! - [`DirectMethod`] (DM) — plug a reward model r̂ into the definition.
//!   Biased whenever the model is misspecified or under-fit (§2.2.1), but
//!   low variance: it uses every record.
//! - [`Ips`] (Inverse Propensity Scoring) — importance-weight the observed
//!   rewards by `μ_new(d_k|c_k)/μ_old(d_k|c_k)`. Unbiased when propensities
//!   are correct, but variance explodes when the policies overlap poorly
//!   (§2.2.2). [`SelfNormalizedIps`] and [`ClippedIps`] are the standard
//!   variance-reduced variants.
//! - [`DoublyRobust`] (DR, Eq. 1/2) — DM plus an IPS correction on the
//!   model's *residuals*. Accurate when **either** the model or the
//!   propensities are accurate ("second-order bias"), and lower-variance
//!   than IPS because the residuals are smaller than the rewards.
//!   [`SwitchDr`] additionally falls back to pure DM for records whose
//!   importance weight exceeds a threshold.
//!
//! ## The networking extensions (paper §4)
//!
//! - [`ReplayEvaluator`] — the §4.2 rejection-sampling replay algorithm
//!   extending DR to non-stationary (history-based) policies.
//! - [`StateAwareDr`] — §4.3 state matching: only reuse records whose
//!   system state matches the evaluation target, or transport rewards
//!   across states with a [`TransitionModel`].
//! - [`CouplingDetector`] — §4.3 change-point gating: detect self-induced
//!   state changes from a load-proxy series and segment the trace so DR
//!   only pools records from comparable regimes.
//!
//! ## The OPE-literature extensions (ROADMAP item 3)
//!
//! - [`AdaptiveIps`] / [`AdaptiveDr`] — variance-stabilizing adaptive
//!   weights (Zhan et al. 2021) for *adaptively collected* logs, where a
//!   learning logger's decaying propensities make plain IPS/SNIPS
//!   confidence collapse.
//! - [`MarginalizedDr`] — action-embedding marginalization for *large
//!   composite action spaces* (thousands of CDN×bitrate×relay arms),
//!   where vanilla importance weights explode but the reward depends on
//!   the arm only through a coarse [`ActionEmbedding`].
//! - [`SeqDr`] — per-decision sequential DR (Jiang & Li 2016) for
//!   *multi-step session traces* (ABR trajectories), beating
//!   trajectory-level weighting on variance by threading the correction
//!   backward through each session.
//!
//! ## Experiment harness
//!
//! [`experiment`] provides the paper's evaluation protocol: run an
//! estimator across seeded simulations, compute the relative error
//! `|V − V̂| / |V|` per run, and aggregate mean/min/max (Figure 7's bars).
//!
//! ## Shared-score batching
//!
//! [`EvalBatch`] precomputes, once per (seed, trace), the per-record
//! scores the whole menu shares — logged propensities, target-policy
//! probability rows, reward-model predictions — in contiguous columnar
//! arrays; every estimator exposes a batched path ([`BatchEstimator`],
//! plus inherent `estimate_batch` methods on the replay and state-aware
//! evaluators) that is bit-identical to the unbatched one.
//!
//! ## Online (streaming) estimation
//!
//! [`online`] provides `push(record)`/`estimate()` counterparts of the
//! stationary menu ([`OnlineDm`], [`OnlineIps`], [`OnlineSnips`],
//! [`OnlineClippedIps`], [`OnlineDr`]) that are bit-identical to the batch
//! engine when a trace is replayed in order, plus a [`SlidingWindow`]
//! variant for non-stationary streams. The `ddn-serve` crate builds its
//! ingest service on this layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod batch;
pub mod coupling;
pub mod crossfit;
pub mod dm;
pub mod dr;
pub mod estimate;
pub mod experiment;
pub mod ips;
pub mod marginalized;
pub mod matching;
pub mod online;
pub mod optimize;
pub mod overlap;
pub mod replay;
pub mod selection;
pub mod seq;
pub mod state_aware;

pub use adaptive::{AdaptiveDr, AdaptiveIps, AdaptiveWeights};
pub use batch::{BatchEstimator, EvalBatch, ModelScores};
pub use coupling::{CouplingDetector, CouplingReport};
pub use crossfit::CrossFitDr;
pub use dm::DirectMethod;
pub use dr::{DoublyRobust, SwitchDr};
pub use estimate::{Estimate, Estimator, EstimatorError, WeightDiagnostics};
pub use experiment::{relative_error, ErrorTable, ExperimentRunner};
pub use ips::{ClippedIps, Ips, SelfNormalizedIps};
pub use marginalized::{ActionEmbedding, MarginalizedDr};
pub use matching::MatchingEstimator;
pub use online::{
    OnlineAdaptiveDr, OnlineAdaptiveIps, OnlineClippedIps, OnlineDm, OnlineDr, OnlineEstimate,
    OnlineEstimator, OnlineIps, OnlineMarginalizedDr, OnlineSeqDr, OnlineSnips, SlidingWindow,
    StreamingMoments,
};
pub use optimize::{dm_greedy_policy, dr_select, SearchResult};
pub use overlap::OverlapReport;
pub use replay::{ReplayEvaluator, ReplayOutcome};
pub use selection::{selection_accuracy, Candidate, Comparison, PolicyComparator};
pub use seq::SeqDr;
pub use state_aware::{ScaleTransition, StateAwareDr, TransitionModel};
