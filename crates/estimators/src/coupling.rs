//! Detection of self-induced state changes — paper §4.1 "Hidden
//! decision-reward coupling" and §4.3 "Tackling reward-decision coupling".
//!
//! "If we assign clients to a specific server … the performance of future
//! clients using that server instance may be degraded due to increased
//! load." When the *evaluated* trace was produced while the old policy was
//! itself shifting the system state, pooling records across the shift
//! biases any estimator. The paper proposes monitoring a domain-specific
//! proxy metric (e.g. per-server load) and using change-point detection
//! (refs \[23, 26\]) to find when "our decisions have affected the system
//! state", then restricting estimation to records from a consistent
//! regime.
//!
//! [`CouplingDetector`] wraps the PELT detector from `ddn-stats` and turns
//! its change points into per-record segment labels and filtered
//! sub-traces.

use crate::estimate::EstimatorError;
use ddn_stats::changepoint::{pelt, segments, CostModel, Penalty};
use ddn_trace::Trace;

/// Result of coupling analysis over a trace-aligned proxy series.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingReport {
    /// Change-point indices into the record sequence (each starts a new
    /// regime). Empty means no self-induced state change was detected.
    pub changepoints: Vec<usize>,
    /// Half-open `(start, end)` record ranges of the detected regimes.
    pub segments: Vec<(usize, usize)>,
    /// Mean of the proxy within each regime — the "low load / high load /
    /// overload" levels the paper's threshold scheme would label.
    pub segment_means: Vec<f64>,
}

impl CouplingReport {
    /// Whether any decision-induced state change was detected.
    pub fn coupled(&self) -> bool {
        !self.changepoints.is_empty()
    }

    /// Index of the segment containing record `k`.
    ///
    /// # Panics
    /// Panics if `k` is outside every segment.
    pub fn segment_of(&self, k: usize) -> usize {
        self.segments
            .iter()
            .position(|&(a, b)| k >= a && k < b)
            .expect("record index outside all segments")
    }
}

/// Change-point-based coupling detector.
#[derive(Debug, Clone)]
pub struct CouplingDetector {
    penalty: Penalty,
    min_segment: usize,
}

impl CouplingDetector {
    /// Creates a detector with BIC penalty and the given minimum regime
    /// length (in records).
    ///
    /// # Panics
    /// Panics if `min_segment == 0`.
    pub fn new(min_segment: usize) -> Self {
        assert!(min_segment > 0, "min_segment must be positive");
        Self {
            penalty: Penalty::Bic,
            min_segment,
        }
    }

    /// Overrides the detection penalty (e.g. `Penalty::Manual` to tune
    /// sensitivity).
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Analyses a proxy series aligned 1:1 with the trace records (e.g.
    /// the load of the server each request hit, or a smoothed global load
    /// metric at each logging instant).
    ///
    /// # Panics
    /// Panics if `proxy.len() != trace.len()`.
    pub fn analyze(&self, trace: &Trace, proxy: &[f64]) -> CouplingReport {
        assert_eq!(
            proxy.len(),
            trace.len(),
            "proxy series must align 1:1 with trace records"
        );
        if proxy.len() < 2 * self.min_segment {
            // Too short to ever split: single regime.
            let mean = proxy.iter().sum::<f64>() / proxy.len() as f64;
            let report = CouplingReport {
                changepoints: vec![],
                segments: vec![(0, proxy.len())],
                segment_means: vec![mean],
            };
            Self::emit_health(&report);
            return report;
        }
        let cps = pelt(proxy, CostModel::NormalMean, self.penalty, self.min_segment);
        let segs = segments(proxy.len(), &cps);
        let means = segs
            .iter()
            .map(|&(a, b)| proxy[a..b].iter().sum::<f64>() / (b - a) as f64)
            .collect();
        let report = CouplingReport {
            changepoints: cps,
            segments: segs,
            segment_means: means,
        };
        Self::emit_health(&report);
        report
    }

    /// Reports segment structure as telemetry (no-op when disabled).
    fn emit_health(report: &CouplingReport) {
        if !ddn_telemetry::enabled() {
            return;
        }
        ddn_telemetry::record_health(
            "CouplingDetector",
            &[
                ("segments", report.segments.len() as f64),
                ("changepoints", report.changepoints.len() as f64),
                ("coupled", if report.coupled() { 1.0 } else { 0.0 }),
            ],
        );
    }

    /// Returns the sub-trace belonging to regime `segment` of `report`.
    ///
    /// Use this to estimate within a consistent system state: "the DR
    /// estimator can use the empirical data in the trace when the network
    /// states match" (§4.3).
    pub fn gate(
        &self,
        trace: &Trace,
        report: &CouplingReport,
        segment: usize,
    ) -> Result<Trace, EstimatorError> {
        let (a, b) = *report
            .segments
            .get(segment)
            .unwrap_or_else(|| panic!("segment {segment} out of range"));
        let mut idx = 0usize;
        let filtered = trace.filtered(|_| {
            let keep = idx >= a && idx < b;
            idx += 1;
            keep
        })?;
        Ok(filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::dist::{Distribution, Normal};
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn trace_of(n: usize) -> Trace {
        let s = ContextSchema::builder().numeric("x").build();
        let recs = (0..n)
            .map(|i| {
                let c = Context::build(&s).set_numeric("x", i as f64).finish();
                TraceRecord::new(c, Decision::from_index(0), i as f64)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap()
    }

    fn shifted_proxy(n1: usize, n2: usize, seed: u64) -> Vec<f64> {
        let mut g = Xoshiro256::seed_from(seed);
        let mut p = Normal::new(0.3, 0.05).sample_n(&mut g, n1);
        p.extend(Normal::new(0.9, 0.05).sample_n(&mut g, n2));
        p
    }

    #[test]
    fn detects_load_shift_and_segments_trace() {
        let t = trace_of(200);
        let proxy = shifted_proxy(100, 100, 41);
        let det = CouplingDetector::new(10);
        let rep = det.analyze(&t, &proxy);
        assert!(rep.coupled());
        assert_eq!(rep.segments.len(), 2);
        assert!((rep.changepoints[0] as i64 - 100).unsigned_abs() <= 3);
        assert!(rep.segment_means[0] < 0.5 && rep.segment_means[1] > 0.7);

        // Gate to the first regime: records 0..cp.
        let gated = det.gate(&t, &rep, 0).unwrap();
        assert_eq!(gated.len(), rep.changepoints[0]);
        assert_eq!(gated.records()[0].reward, 0.0);
        let gated2 = det.gate(&t, &rep, 1).unwrap();
        assert_eq!(gated2.records()[0].reward, rep.changepoints[0] as f64);
    }

    #[test]
    fn stationary_proxy_yields_single_regime() {
        let t = trace_of(150);
        let mut g = Xoshiro256::seed_from(42);
        let proxy = Normal::new(0.5, 0.05).sample_n(&mut g, 150);
        let rep = CouplingDetector::new(10).analyze(&t, &proxy);
        assert!(!rep.coupled());
        assert_eq!(rep.segments, vec![(0, 150)]);
        assert_eq!(rep.segment_of(0), 0);
        assert_eq!(rep.segment_of(149), 0);
    }

    #[test]
    fn short_series_never_splits() {
        let t = trace_of(5);
        let rep = CouplingDetector::new(10).analyze(&t, &[0.0, 10.0, 0.0, 10.0, 0.0]);
        assert!(!rep.coupled());
        assert_eq!(rep.segments, vec![(0, 5)]);
    }

    #[test]
    fn segment_of_maps_records() {
        let t = trace_of(200);
        let proxy = shifted_proxy(100, 100, 43);
        let rep = CouplingDetector::new(10).analyze(&t, &proxy);
        let cp = rep.changepoints[0];
        assert_eq!(rep.segment_of(cp - 1), 0);
        assert_eq!(rep.segment_of(cp), 1);
    }

    #[test]
    #[should_panic(expected = "align 1:1")]
    fn misaligned_proxy_panics() {
        let t = trace_of(10);
        let _ = CouplingDetector::new(2).analyze(&t, &[1.0, 2.0]);
    }
}
