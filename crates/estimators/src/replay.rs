//! Rejection-sampling replay for **non-stationary** policies — the paper's
//! §4.2 algorithm (after Li et al.'s contextual-bandit replay, paper ref
//! \[27\], and Dudík et al.'s DR extension, paper ref \[9\]).
//!
//! The basic DR estimator assumes the new policy is history-agnostic. Real
//! networking policies adapt to what they observe, so the paper extends DR:
//! maintain a separate history `g` containing only the tuples where the
//! *replayed* new policy's decision matched the logged one, and update the
//! DR estimate on exactly those tuples:
//!
//! ```text
//! g₁ = ∅, M = 0
//! for k = 1..n:
//!   sample d' ~ μ_new(· | c_k, g_k)
//!   if d' == d_k:
//!     M += Σ_d μ_new(d|c_k,g_k)·r̂(c_k,d) + w_k · (r_k − r̂(c_k,d_k))
//!     g_{k+1} = g_k ⊕ (c_k, d_k, r_k)
//!   else: g_{k+1} = g_k
//! return M / |g_{n+1}|
//! ```
//!
//! ## A correction to the paper's printed weight
//!
//! The paper writes `w_k = μ_new(d_k|c_k,g_k)/μ_old(d_k|c_k)`, the basic-DR
//! weight. But conditioned on *acceptance*, the logged decision is
//! distributed `q(d) ∝ μ_old(d|c_k) · μ_new(d|c_k,g_k)` — the rejection
//! step has already reshaped the proportions — so the unbiased correction
//! weight is `μ_new(d_k)/q(d_k) = Z_k / μ_old(d_k|c_k)` with
//! `Z_k = Σ_d μ_old(d|c_k)·μ_new(d|c_k,g_k)`. With that weight each
//! accepted tuple's conditional expectation is the per-client DR value
//! (paper Eq. 2), which is what makes the estimator "identical to the
//! basic DR under the assumption of stationary policies" as §4.2 claims;
//! the printed weight inflates the correction by `1/Z_k` (e.g. ×2 for a
//! uniform binary logger). We implement the unbiased weight and verify the
//! stationary-equivalence property in tests. Computing `Z_k` needs the full
//! old-policy distribution, which §2.1 assumes known ("we assume that the
//! policy μ_old is known").

use crate::batch::{note_reuse, EvalBatch};
use crate::estimate::{emit_weight_health, Estimate, EstimatorError, WeightDiagnostics};
use ddn_models::RewardModel;
use ddn_policy::{HistoryPolicy, Policy};
use ddn_stats::rng::Rng;
use ddn_trace::Trace;

/// Output of a replay evaluation: the estimate plus acceptance accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The DR estimate over accepted tuples.
    pub estimate: Estimate,
    /// Tuples where the replayed decision matched the logged one (and were
    /// therefore fed into the new policy's history and the estimate).
    pub accepted: usize,
    /// Tuples skipped because the replayed decision disagreed.
    pub rejected: usize,
}

impl ReplayOutcome {
    /// Acceptance rate — a coverage diagnostic: low acceptance means the
    /// new policy's trajectory diverges quickly from the logged one and
    /// the estimate rests on few tuples.
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// The §4.2 replay evaluator, parameterized by the DR reward model.
#[derive(Debug, Clone)]
pub struct ReplayEvaluator<M: RewardModel> {
    model: M,
}

impl<M: RewardModel> ReplayEvaluator<M> {
    /// Creates a replay evaluator around a fitted reward model.
    pub fn new(model: M) -> Self {
        Self { model }
    }

    /// Runs the replay of `new_policy` (reset first) over the trace logged
    /// by `old_policy`.
    ///
    /// The policy is driven sequentially: for each logged tuple the
    /// evaluator samples the new policy's decision under its current
    /// history; on a match, the tuple both contributes to the DR estimate
    /// and is appended (via [`HistoryPolicy::observe`]) to the policy's
    /// history.
    ///
    /// Errors with [`EstimatorError::NoUsableRecords`] if no tuple is
    /// accepted.
    pub fn evaluate(
        &self,
        trace: &Trace,
        old_policy: &dyn Policy,
        new_policy: &mut dyn HistoryPolicy,
        rng: &mut dyn Rng,
    ) -> Result<ReplayOutcome, EstimatorError> {
        if trace.space().len() != new_policy.space().len() {
            return Err(EstimatorError::SpaceMismatch {
                trace: trace.space().len(),
                policy: new_policy.space().len(),
            });
        }
        if trace.space().len() != old_policy.space().len() {
            return Err(EstimatorError::SpaceMismatch {
                trace: trace.space().len(),
                policy: old_policy.space().len(),
            });
        }
        new_policy.reset();
        let space = trace.space();
        let mut contributions = Vec::new();
        let mut weights = Vec::new();
        let mut rejected = 0usize;

        for rec in trace.records() {
            let probs_new = new_policy.probabilities(&rec.context);
            // Step 1: sample d' from μ_new(· | c_k, g_k).
            let u = rng.next_f64();
            let mut acc = 0.0;
            let mut sampled = probs_new.len() - 1;
            for (i, &p) in probs_new.iter().enumerate() {
                acc += p;
                if u < acc {
                    sampled = i;
                    break;
                }
            }
            // Step 2/3: accept iff the sampled decision matches the log.
            if sampled != rec.decision.index() {
                rejected += 1;
                continue;
            }
            let probs_old = old_policy.probabilities(&rec.context);
            let p_old = probs_old[rec.decision.index()];
            if p_old <= 0.0 {
                // The old policy claims it could never have logged this
                // decision — inconsistent inputs; skip defensively.
                rejected += 1;
                continue;
            }
            // Effective acceptance-conditioned propensity: q(d) = p_old·p_new/Z.
            let z: f64 = probs_old.iter().zip(&probs_new).map(|(a, b)| a * b).sum();
            let w = z / p_old;
            let dm_term: f64 = space
                .iter()
                .map(|d| probs_new[d.index()] * self.model.predict(&rec.context, d))
                .sum();
            let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
            contributions.push(dm_term + w * residual);
            weights.push(w);
            new_policy.observe(&rec.context, rec.decision, rec.reward);
        }

        if contributions.is_empty() {
            return Err(EstimatorError::NoUsableRecords);
        }
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        let accepted = contributions.len();
        let outcome = ReplayOutcome {
            estimate: Estimate::from_contributions(contributions, diagnostics),
            accepted,
            rejected,
        };
        emit_weight_health(
            "Replay",
            &diagnostics,
            &[
                ("acceptance_rate", outcome.acceptance_rate()),
                ("accepted", accepted as f64),
                ("rejected", rejected as f64),
            ],
        );
        Ok(outcome)
    }

    /// Batched counterpart of [`ReplayEvaluator::evaluate`]: `old_batch`
    /// must be built from the same trace with the *old* (logging)
    /// policy — its probability rows replace the per-record
    /// `old_policy.probabilities` calls, and its model scores (when
    /// built with this evaluator's model) replace the per-record
    /// predictions. The new policy's probabilities stay live because
    /// they depend on the replay history; the RNG consumption and all
    /// float arithmetic are identical to the unbatched path.
    pub fn evaluate_batch(
        &self,
        trace: &Trace,
        old_batch: &EvalBatch,
        new_policy: &mut dyn HistoryPolicy,
        rng: &mut dyn Rng,
    ) -> Result<ReplayOutcome, EstimatorError> {
        if trace.space().len() != new_policy.space().len() {
            return Err(EstimatorError::SpaceMismatch {
                trace: trace.space().len(),
                policy: new_policy.space().len(),
            });
        }
        old_batch.check_trace(trace);
        new_policy.reset();
        let space = trace.space();
        let scores = old_batch.model_scores();
        let mut contributions = Vec::new();
        let mut weights = Vec::new();
        let mut rejected = 0usize;

        for (i, rec) in trace.records().iter().enumerate() {
            let probs_new = new_policy.probabilities(&rec.context);
            let u = rng.next_f64();
            let mut acc = 0.0;
            let mut sampled = probs_new.len() - 1;
            for (j, &p) in probs_new.iter().enumerate() {
                acc += p;
                if u < acc {
                    sampled = j;
                    break;
                }
            }
            if sampled != rec.decision.index() {
                rejected += 1;
                continue;
            }
            let probs_old = old_batch.probs_row(i);
            let p_old = probs_old[rec.decision.index()];
            if p_old <= 0.0 {
                rejected += 1;
                continue;
            }
            let z: f64 = probs_old.iter().zip(&probs_new).map(|(a, b)| a * b).sum();
            let w = z / p_old;
            let (dm_term, q_logged) = match scores {
                Some(s) => {
                    // The cached q row is the old-policy batch's, but q̂
                    // depends only on (context, decision), not on which
                    // policy the batch was built for.
                    let q = s.q_row(i, space.len());
                    let dm: f64 = space
                        .iter()
                        .map(|d| probs_new[d.index()] * q[d.index()])
                        .sum();
                    (dm, s.q_logged()[i])
                }
                None => {
                    let dm: f64 = space
                        .iter()
                        .map(|d| probs_new[d.index()] * self.model.predict(&rec.context, d))
                        .sum();
                    (dm, self.model.predict(&rec.context, rec.decision))
                }
            };
            let residual = rec.reward - q_logged;
            contributions.push(dm_term + w * residual);
            weights.push(w);
            new_policy.observe(&rec.context, rec.decision, rec.reward);
        }

        if contributions.is_empty() {
            note_reuse("Replay", trace.len() as u64, 0);
            return Err(EstimatorError::NoUsableRecords);
        }
        let accepted = contributions.len();
        match scores {
            Some(_) => note_reuse("Replay", (trace.len() + 2 * accepted) as u64, 0),
            None => note_reuse("Replay", trace.len() as u64, 2 * accepted as u64),
        }
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        let outcome = ReplayOutcome {
            estimate: Estimate::from_contributions(contributions, diagnostics),
            accepted,
            rejected,
        };
        emit_weight_health(
            "Replay",
            &diagnostics,
            &[
                ("acceptance_rate", outcome.acceptance_rate()),
                ("accepted", accepted as f64),
                ("rejected", rejected as f64),
            ],
        );
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use crate::estimate::Estimator;
    use ddn_models::{ConstantModel, FnModel};
    use ddn_policy::{LookupPolicy, StationaryAsHistory, UniformRandomPolicy};
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn truth(g: u32, d: usize) -> f64 {
        1.0 + 2.0 * g as f64 + 3.0 * d as f64
    }

    fn uniform_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), truth(g, d)).with_propensity(0.5)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn replay_matches_basic_dr_for_stationary_policy() {
        // §4.2's claim: on a stationary policy, replay estimates the same
        // quantity as basic DR (statistically — replay subsamples), even
        // with a wrong reward model.
        let t = uniform_trace(5000, 21);
        let old = UniformRandomPolicy::new(space());
        let stationary = LookupPolicy::constant(space(), 1);
        let dr = DoublyRobust::new(ConstantModel::new(2.0))
            .estimate(&t, &stationary)
            .unwrap();
        let mut hist = StationaryAsHistory::new(stationary);
        let mut rng = Xoshiro256::seed_from(99);
        let replay = ReplayEvaluator::new(ConstantModel::new(2.0))
            .evaluate(&t, &old, &mut hist, &mut rng)
            .unwrap();
        assert!(
            (replay.estimate.value - dr.value).abs() < 0.3,
            "replay {} vs dr {}",
            replay.estimate.value,
            dr.value
        );
        // Truth for "always d1": E[1 + 2g + 3] = 5.
        assert!((replay.estimate.value - 5.0).abs() < 0.3);
        // Deterministic new policy: acceptance equals the trace's share of
        // matching decisions (~50%).
        assert!((replay.acceptance_rate() - 0.5).abs() < 0.05);
    }

    #[test]
    fn replay_unbiased_for_stochastic_stationary_policy() {
        // A stochastic new policy exercises the Z_k correction: the
        // paper's printed weight would be off by 1/Z ≈ 2 here.
        let t = uniform_trace(20_000, 26);
        let old = UniformRandomPolicy::new(space());
        let newp = UniformRandomPolicy::new(space());
        // Truth for uniform new policy: E[1 + 2g + 3d] = 3.5.
        let mut hist = StationaryAsHistory::new(newp);
        let mut rng = Xoshiro256::seed_from(17);
        let out = ReplayEvaluator::new(ConstantModel::zero())
            .evaluate(&t, &old, &mut hist, &mut rng)
            .unwrap();
        assert!(
            (out.estimate.value - 3.5).abs() < 0.15,
            "{}",
            out.estimate.value
        );
    }

    #[test]
    fn replay_estimates_truth_with_perfect_model() {
        let t = uniform_trace(2000, 22);
        let old = UniformRandomPolicy::new(space());
        let model = FnModel::new(|c: &Context, d: Decision| truth(c.cat(0), d.index()));
        let mut hist = StationaryAsHistory::new(UniformRandomPolicy::new(space()));
        let mut rng = Xoshiro256::seed_from(7);
        let out = ReplayEvaluator::new(model)
            .evaluate(&t, &old, &mut hist, &mut rng)
            .unwrap();
        assert!(
            (out.estimate.value - 3.5).abs() < 0.15,
            "{}",
            out.estimate.value
        );
    }

    /// ε-greedy history policy: prefers (with prob 0.9) the decision that
    /// last yielded reward ≥ 4, exploring the rest uniformly.
    struct Adaptive {
        space: DecisionSpace,
        preferred: usize,
    }

    impl HistoryPolicy for Adaptive {
        fn space(&self) -> &DecisionSpace {
            &self.space
        }
        fn reset(&mut self) {
            self.preferred = 0;
        }
        fn probabilities(&self, _c: &Context) -> Vec<f64> {
            let k = self.space.len();
            let mut p = vec![0.1 / (k - 1) as f64; k];
            p[self.preferred] = 0.9;
            p
        }
        fn observe(&mut self, _c: &Context, d: Decision, r: f64) {
            if r >= 4.0 {
                self.preferred = d.index();
            }
        }
    }

    #[test]
    fn replay_feeds_history_only_on_match() {
        let t = uniform_trace(3000, 23);
        let old = UniformRandomPolicy::new(space());
        let mut pol = Adaptive {
            space: space(),
            preferred: 1,
        }; // reset() sets 0
        let mut rng = Xoshiro256::seed_from(3);
        let out = ReplayEvaluator::new(ConstantModel::zero())
            .evaluate(&t, &old, &mut pol, &mut rng)
            .unwrap();
        assert!(out.accepted > 0 && out.rejected > 0);
        assert_eq!(out.accepted + out.rejected, 3000);
        // The adaptive policy locks onto high-reward decisions; its value
        // estimate should exceed the logging policy's on-trace mean.
        assert!(
            out.estimate.value > t.mean_reward(),
            "adaptive {} should beat logging {}",
            out.estimate.value,
            t.mean_reward()
        );
    }

    #[test]
    fn replay_errors_when_nothing_accepted() {
        // Trace only has d0; new policy deterministically d1.
        let s = schema();
        let recs: Vec<TraceRecord> = (0..10)
            .map(|_| {
                let c = Context::build(&s).set_cat("g", 0).finish();
                TraceRecord::new(c, Decision::from_index(0), 1.0).with_propensity(1.0)
            })
            .collect();
        let t = Trace::from_records(s, space(), recs).unwrap();
        let old = LookupPolicy::constant(space(), 0);
        let mut pol = StationaryAsHistory::new(LookupPolicy::constant(space(), 1));
        let mut rng = Xoshiro256::seed_from(1);
        assert!(matches!(
            ReplayEvaluator::new(ConstantModel::zero()).evaluate(&t, &old, &mut pol, &mut rng),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    fn replay_resets_policy_between_runs() {
        let t = uniform_trace(500, 24);
        let old = UniformRandomPolicy::new(space());
        let mut pol = Adaptive {
            space: space(),
            preferred: 1,
        };
        let mut rng = Xoshiro256::seed_from(4);
        let ev = ReplayEvaluator::new(ConstantModel::zero());
        let a = ev.evaluate(&t, &old, &mut pol, &mut rng).unwrap();
        // Second run with identical rng seed should be identical because
        // reset() clears the adaptive state.
        let mut rng2 = Xoshiro256::seed_from(4);
        let b = ev.evaluate(&t, &old, &mut pol, &mut rng2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn space_mismatch_rejected() {
        let t = uniform_trace(10, 25);
        let old = UniformRandomPolicy::new(space());
        let mut pol = StationaryAsHistory::new(UniformRandomPolicy::new(DecisionSpace::of(&["x"])));
        let mut rng = Xoshiro256::seed_from(5);
        assert!(matches!(
            ReplayEvaluator::new(ConstantModel::zero()).evaluate(&t, &old, &mut pol, &mut rng),
            Err(EstimatorError::SpaceMismatch { .. })
        ));
    }
}
