//! Adaptively-weighted IPS/DR for adaptively collected logs
//! (Zhan et al. 2021, "Off-Policy Evaluation via Adaptive Weighting").
//!
//! When the logging policy *learns while it logs* — a LinUCB bandit, an
//! ε-decaying explorer, any history-driven controller — the propensities
//! `μ_old(d_k|c_k)` shrink over time on the arms the logger abandons. A
//! late record of an abandoned arm then carries an enormous importance
//! weight, and plain IPS/SNIPS confidence collapses: the estimate is
//! hostage to a handful of low-propensity tail records. Zhan et al.'s fix
//! is to re-weight record `k` by an *adaptive stabilizer* `h_k` that
//! tracks the per-record variance, and self-normalize:
//!
//! ```text
//! V̂_adaptive = (1/n) Σ_k (h_k · Γ_k) · (n / Σ_j h_j)
//! ```
//!
//! where `Γ_k` is the underlying estimator's per-record contribution
//! (`w_k·r_k` for IPS, `dm_k + w_k·(r_k − q̂_k)` for DR). The stabilizer
//! must be measurable with respect to the *history* — it may look at
//! records `0..k` but never at record `k`'s own realized action, or the
//! correlation between `h_k` and `Γ_k` biases the ratio. We therefore
//! use `h_k = 1/√(max(1, m_k))` where `m_k` is an exponential moving
//! average of the *past* squared importance weights `w_j², j < k`:
//! `E[w²]` given the epoch is exactly the variance-inflation factor of
//! that epoch, so `h_k` approximates inverse-standard-deviation
//! (precision) weighting while remaining action-independent at `k` —
//! records from the logger's collapsed late epochs are shrunk toward
//! zero influence, and `E[h_k·Γ_k | history] = h_k·V` keeps the
//! normalized estimator consistent.
//!
//! With [`AdaptiveWeights::Constant`] every `h_k` is `1.0` and the
//! expression collapses **bit-identically** onto plain IPS/DR: `1.0·Γ`
//! is exact, `Σ_j 1.0 = n` is exact for any trace that fits in memory,
//! and `n/n = 1.0` is exact — pinned by the reduction property tests.

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::dr::dr_contributions_batch;
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use crate::ips::importance_weights;
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::Trace;

/// EMA decay for the squared-weight variance tracker: each record moves
/// the tracked `E[w²]` 5% toward its own `w²`, so the stabilizer adapts
/// over a ~20-record timescale — fast enough to follow a learning
/// logger, slow enough that one tail weight cannot whipsaw it.
pub(crate) const EMA_ALPHA: f64 = 0.05;

/// The stabilizer schedule for the adaptive family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveWeights {
    /// `h_k = 1/√(max(1, EMA of past w²))` — precision weighting against
    /// the logger's variance trajectory; see the module docs.
    Stabilized,
    /// `h_k = 1` — degenerates bit-identically to the unweighted
    /// estimator; exists so the reduction is a testable property, and as
    /// the safe default when the log is known to be stationary.
    Constant,
}

impl AdaptiveWeights {
    /// The stabilizer at the current variance-tracker value `m`.
    pub(crate) fn h_at(self, m: f64) -> f64 {
        match self {
            AdaptiveWeights::Stabilized => 1.0 / m.max(1.0).sqrt(),
            AdaptiveWeights::Constant => 1.0,
        }
    }

    /// Folds record `k`'s squared weight into the variance tracker
    /// (after `h_k` has been taken — `h_k` must not see `w_k`).
    pub(crate) fn advance(m: f64, w: f64) -> f64 {
        (1.0 - EMA_ALPHA) * m + EMA_ALPHA * (w * w)
    }
}

/// Per-record stabilizers `h_k` from the weight stream: `h_k` sees only
/// `w_j, j < k`, starting from a tracker value of `1` (no history).
fn stabilizers(weights: &[f64], mode: AdaptiveWeights) -> Vec<f64> {
    let mut m = 1.0_f64;
    weights
        .iter()
        .map(|&w| {
            let h = mode.h_at(m);
            m = AdaptiveWeights::advance(m, w);
            h
        })
        .collect()
}

/// Folds stabilized contributions `(h_k·Γ_k)·(n/Σh)` — the shared tail of
/// both adaptive estimators. Errors with [`EstimatorError::NoUsableRecords`]
/// when the stabilizer mass is not positive (mirroring SNIPS).
fn stabilized_contributions(
    gammas: &[f64],
    hs: &[f64],
) -> Result<(Vec<f64>, f64), EstimatorError> {
    let hsum: f64 = hs.iter().sum();
    if hsum <= 0.0 {
        return Err(EstimatorError::NoUsableRecords);
    }
    let scale = gammas.len() as f64 / hsum;
    let per_record = gammas
        .iter()
        .zip(hs)
        .map(|(g, h)| (h * g) * scale)
        .collect();
    Ok((per_record, hsum))
}

/// Adaptively-weighted IPS — see the module docs for the estimand.
///
/// ```
/// use ddn_estimators::{AdaptiveIps, AdaptiveWeights, Estimator, Ips};
/// use ddn_policy::LookupPolicy;
/// use ddn_trace::{Context, ContextSchema, DecisionSpace, Trace, TraceRecord};
///
/// let schema = ContextSchema::builder().categorical("g", 2).build();
/// let space = DecisionSpace::of(&["a", "b"]);
/// let records: Vec<TraceRecord> = (0..100)
///     .map(|i| {
///         let ctx = Context::build(&schema).set_cat("g", (i % 2) as u32).finish();
///         let d = space.decision(i % 2);
///         TraceRecord::new(ctx, d, d.index() as f64).with_propensity(0.5)
///     })
///     .collect();
/// let trace = Trace::from_records(schema, space.clone(), records).unwrap();
/// let newp = LookupPolicy::constant(space, 1);
///
/// // Constant stabilizers reduce bit-identically to plain IPS.
/// let adaptive = AdaptiveIps::new(AdaptiveWeights::Constant)
///     .estimate(&trace, &newp)
///     .unwrap();
/// let ips = Ips::new().estimate(&trace, &newp).unwrap();
/// assert_eq!(adaptive.value.to_bits(), ips.value.to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveIps {
    mode: AdaptiveWeights,
}

impl AdaptiveIps {
    /// Creates an adaptively-weighted IPS estimator.
    pub fn new(mode: AdaptiveWeights) -> Self {
        Self { mode }
    }

    /// The stabilizer schedule.
    pub fn mode(&self) -> AdaptiveWeights {
        self.mode
    }
}

impl Estimator for AdaptiveIps {
    fn name(&self) -> &str {
        "AdaptiveIPS"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let hs = stabilizers(&weights, self.mode);
        let gammas: Vec<f64> = trace
            .records()
            .iter()
            .zip(&weights)
            .map(|(rec, &w)| w * rec.reward)
            .collect();
        let (per_record, hsum) = stabilized_contributions(&gammas, &hs)?;
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(self.name(), &diagnostics, &[("hsum", hsum)]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl BatchEstimator for AdaptiveIps {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        note_reuse(self.name(), trace.len() as u64, 0);
        let hs = stabilizers(&weights, self.mode);
        let gammas: Vec<f64> = weights
            .iter()
            .zip(batch.rewards())
            .map(|(&w, r)| w * r)
            .collect();
        let (per_record, hsum) = stabilized_contributions(&gammas, &hs)?;
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(self.name(), &diagnostics, &[("hsum", hsum)]);
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

/// Adaptively-weighted Doubly Robust: the stabilized mean of the DR
/// per-record contributions. Keeps DR's second-order bias protection on
/// the model side while taming the adaptive-log variance on the weight
/// side. [`AdaptiveWeights::Constant`] reduces bit-identically to
/// [`crate::DoublyRobust`].
#[derive(Debug, Clone)]
pub struct AdaptiveDr<M: RewardModel> {
    model: M,
    mode: AdaptiveWeights,
}

impl<M: RewardModel> AdaptiveDr<M> {
    /// Creates an adaptively-weighted DR estimator around a fitted model.
    pub fn new(model: M, mode: AdaptiveWeights) -> Self {
        Self { model, mode }
    }

    /// The underlying reward model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The stabilizer schedule.
    pub fn mode(&self) -> AdaptiveWeights {
        self.mode
    }
}

impl<M: RewardModel> Estimator for AdaptiveDr<M> {
    fn name(&self) -> &str {
        "AdaptiveDR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let hs = stabilizers(&weights, self.mode);
        let space = trace.space();
        let mut abs_residual_sum = 0.0;
        let gammas: Vec<f64> = trace
            .records()
            .iter()
            .zip(&weights)
            .map(|(rec, &w)| {
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
                abs_residual_sum += residual.abs();
                dm_term + w * residual
            })
            .collect();
        let (per_record, hsum) = stabilized_contributions(&gammas, &hs)?;
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("hsum", hsum),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M: RewardModel> BatchEstimator for AdaptiveDr<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        let hs = stabilizers(&weights, self.mode);
        let (gammas, abs_residual_sum) =
            dr_contributions_batch(self.name(), trace, batch, &self.model, weights);
        let (per_record, hsum) = stabilized_contributions(&gammas, &hs)?;
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("hsum", hsum),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use crate::ips::{Ips, SelfNormalizedIps};
    use ddn_models::ConstantModel;
    use ddn_policy::LookupPolicy;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn truth(g: u32, d: usize) -> f64 {
        1.0 + 2.0 * g as f64 + 3.0 * d as f64
    }

    /// A trace whose propensity on arm 1 decays over time — the adaptive
    /// logging regime in miniature.
    fn decaying_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|k| {
                let g = rng.index(2) as u32;
                // Propensity on arm 1 decays 0.5 → 0.02 over the stream.
                let p1 = (0.5 * (1.0 - k as f64 / n as f64)).max(0.02);
                let d = usize::from(rng.chance(p1));
                let p = if d == 1 { p1 } else { 1.0 - p1 };
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), truth(g, d)).with_propensity(p)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn constant_mode_is_bit_identical_to_ips() {
        let t = decaying_trace(400, 21);
        let newp = LookupPolicy::constant(space(), 1);
        let a = AdaptiveIps::new(AdaptiveWeights::Constant)
            .estimate(&t, &newp)
            .unwrap();
        let b = Ips::new().estimate(&t, &newp).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        for (x, y) in a.per_record.iter().zip(&b.per_record) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn constant_mode_dr_is_bit_identical_to_dr() {
        let t = decaying_trace(300, 22);
        let newp = LookupPolicy::constant(space(), 1);
        let model = || ConstantModel::new(2.0);
        let a = AdaptiveDr::new(model(), AdaptiveWeights::Constant)
            .estimate(&t, &newp)
            .unwrap();
        let b = DoublyRobust::new(model()).estimate(&t, &newp).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let t = decaying_trace(500, 23);
        let newp = LookupPolicy::constant(space(), 1);
        let model = ConstantModel::new(1.5);
        let batch = EvalBatch::with_model(&t, &newp, &model).unwrap();
        let a_ips = AdaptiveIps::new(AdaptiveWeights::Stabilized);
        let s = a_ips.estimate(&t, &newp).unwrap();
        let b = a_ips.estimate_batch(&t, &batch).unwrap();
        assert_eq!(s.value.to_bits(), b.value.to_bits());
        assert_eq!(s.diagnostics, b.diagnostics);
        let a_dr = AdaptiveDr::new(model.clone(), AdaptiveWeights::Stabilized);
        let s = a_dr.estimate(&t, &newp).unwrap();
        let b = a_dr.estimate_batch(&t, &batch).unwrap();
        assert_eq!(s.value.to_bits(), b.value.to_bits());
        assert_eq!(s.diagnostics, b.diagnostics);
    }

    #[test]
    fn stabilized_beats_plain_ips_variance_on_decaying_logs() {
        let newp = LookupPolicy::constant(space(), 1);
        let spread = |adaptive: bool| {
            let vals: Vec<f64> = (0..40)
                .map(|i| {
                    let t = decaying_trace(300, 500 + i);
                    if adaptive {
                        AdaptiveIps::new(AdaptiveWeights::Stabilized)
                            .estimate(&t, &newp)
                            .unwrap()
                            .value
                    } else {
                        Ips::new().estimate(&t, &newp).unwrap().value
                    }
                })
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let v_adaptive = spread(true);
        let v_ips = spread(false);
        assert!(
            v_adaptive < v_ips,
            "adaptive variance {v_adaptive} should be below IPS variance {v_ips}"
        );
    }

    #[test]
    fn stabilized_stays_close_to_snips_accuracy() {
        // Sanity: on the decaying log the stabilized estimate still lands
        // near the truth for "always arm 1" (E[1 + 2g + 3] = 5).
        let newp = LookupPolicy::constant(space(), 1);
        let mut err = 0.0;
        for i in 0..20 {
            let t = decaying_trace(600, 900 + i);
            let v = AdaptiveIps::new(AdaptiveWeights::Stabilized)
                .estimate(&t, &newp)
                .unwrap()
                .value;
            err += (v - 5.0).abs();
        }
        err /= 20.0;
        // SNIPS as a fairness reference — adaptive should not be wildly
        // more biased.
        let mut snips_err = 0.0;
        for i in 0..20 {
            let t = decaying_trace(600, 900 + i);
            let v = SelfNormalizedIps::new().estimate(&t, &newp).unwrap().value;
            snips_err += (v - 5.0).abs();
        }
        snips_err /= 20.0;
        assert!(
            err < snips_err * 2.0 + 0.5,
            "adaptive err {err} vs snips {snips_err}"
        );
    }

    #[test]
    fn missing_propensity_surfaces_first_record() {
        let s = schema();
        let recs = vec![
            TraceRecord::new(
                Context::build(&s).set_cat("g", 0).finish(),
                Decision::from_index(0),
                1.0,
            )
            .with_propensity(0.5),
            TraceRecord::new(
                Context::build(&s).set_cat("g", 1).finish(),
                Decision::from_index(1),
                2.0,
            ),
        ];
        let t = Trace::from_records(s, space(), recs).unwrap();
        let err = AdaptiveIps::new(AdaptiveWeights::Stabilized)
            .estimate(&t, &LookupPolicy::constant(space(), 1))
            .unwrap_err();
        assert!(matches!(
            err,
            EstimatorError::Trace(ddn_trace::TraceError::MissingPropensity { record: 1 })
        ));
    }
}
