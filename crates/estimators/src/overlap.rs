//! Pre-estimation overlap analysis: can this trace answer this question?
//!
//! Every §2.2.2/§4.1 failure is visible *before* estimating: if the new
//! policy concentrates on decisions the logging policy rarely took, the
//! importance weights are already determined and so is the variance.
//! [`OverlapReport`] computes that forecast — weight distribution,
//! effective sample size, unsupported mass — from just the trace and the
//! candidate policy, so an operator can refuse to trust (or to run) an
//! evaluation the data cannot support, and instead go collect the
//! randomized data the paper asks for.

use crate::estimate::{check_space, EstimatorError};
use ddn_policy::Policy;
use ddn_stats::summary::{quantile, Histogram};
use ddn_trace::Trace;

/// Overlap diagnostics between a logged trace and a candidate policy.
#[derive(Debug, Clone)]
pub struct OverlapReport {
    /// Number of records analyzed.
    pub n: usize,
    /// Forecast effective sample size `(Σw)²/Σw²` of an IPS/DR run.
    pub effective_sample_size: f64,
    /// Largest importance weight.
    pub max_weight: f64,
    /// Median importance weight.
    pub median_weight: f64,
    /// 99th-percentile importance weight.
    pub p99_weight: f64,
    /// Fraction of records with weight 0 (the new policy never takes the
    /// logged decision there).
    pub zero_weight_fraction: f64,
    /// Probability mass the new policy places on decisions **never seen**
    /// in the trace, averaged over logged contexts. Any non-zero value
    /// means part of the estimand is invisible to IPS-style correction.
    pub unsupported_mass: f64,
    /// Histogram of the weights on `[0, 10·median)` for display.
    pub weight_histogram: Histogram,
}

impl OverlapReport {
    /// Analyzes `trace` against `new_policy`.
    ///
    /// Errors if the trace lacks propensities or the decision spaces
    /// disagree.
    pub fn analyze(trace: &Trace, new_policy: &dyn Policy) -> Result<Self, EstimatorError> {
        check_space(trace, new_policy)?;
        let k = trace.space().len();
        let mut seen = vec![false; k];
        for r in trace.records() {
            seen[r.decision.index()] = true;
        }
        let mut weights = Vec::with_capacity(trace.len());
        let mut unsupported = 0.0;
        for (i, r) in trace.records().iter().enumerate() {
            let p_old = r.require_propensity(i)?;
            weights.push(new_policy.prob(&r.context, r.decision) / p_old);
            let probs = new_policy.probabilities(&r.context);
            unsupported += probs
                .iter()
                .enumerate()
                .filter(|(d, _)| !seen[*d])
                .map(|(_, p)| p)
                .sum::<f64>();
        }
        let n = weights.len();
        let sum: f64 = weights.iter().sum();
        let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
        let median = quantile(&weights, 0.5);
        let hist_hi = (10.0 * median).max(1.0);
        let mut weight_histogram = Histogram::new(0.0, hist_hi, 20);
        for &w in &weights {
            weight_histogram.record(w);
        }
        Ok(Self {
            n,
            effective_sample_size: if sum_sq > 0.0 {
                sum * sum / sum_sq
            } else {
                0.0
            },
            max_weight: weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            median_weight: median,
            p99_weight: quantile(&weights, 0.99),
            zero_weight_fraction: weights.iter().filter(|&&w| w == 0.0).count() as f64 / n as f64,
            unsupported_mass: unsupported / n as f64,
            weight_histogram,
        })
    }

    /// A coarse verdict: `true` when IPS/DR on this pair is statistically
    /// sane — decent effective sample size, no invisible decision mass.
    pub fn healthy(&self) -> bool {
        self.effective_sample_size >= 30.0
            && self.effective_sample_size >= 0.01 * self.n as f64
            && self.unsupported_mass < 1e-9
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "overlap over {} records:\n\
             \x20 effective sample size: {:.0} ({:.1}% of trace)\n\
             \x20 weights: median {:.3}, p99 {:.3}, max {:.3}\n\
             \x20 zero-weight fraction: {:.1}%\n\
             \x20 unsupported decision mass: {:.2}%\n",
            self.n,
            self.effective_sample_size,
            100.0 * self.effective_sample_size / self.n as f64,
            self.median_weight,
            self.p99_weight,
            self.max_weight,
            100.0 * self.zero_weight_fraction,
            100.0 * self.unsupported_mass,
        );
        out.push_str(if self.healthy() {
            "  verdict: healthy — IPS/DR estimates are statistically supportable\n"
        } else {
            "  verdict: UNHEALTHY — collect more (or more randomized) data before trusting \
             IPS/DR here\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    fn logged(policy: &dyn Policy, n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                let (d, p) = policy.sample_with_prob(&c, &mut rng);
                TraceRecord::new(c, d, 1.0).with_propensity(p)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn uniform_on_uniform_is_maximally_healthy() {
        let uni = UniformRandomPolicy::new(space());
        let t = logged(&uni, 600, 1);
        let r = OverlapReport::analyze(&t, &uni).unwrap();
        assert!((r.effective_sample_size - 600.0).abs() < 1e-6);
        assert_eq!(r.zero_weight_fraction, 0.0);
        assert_eq!(r.unsupported_mass, 0.0);
        assert!(r.healthy());
        assert!(r.render().contains("healthy"));
    }

    #[test]
    fn deterministic_target_shrinks_ess() {
        let uni = UniformRandomPolicy::new(space());
        let t = logged(&uni, 600, 2);
        let det = LookupPolicy::constant(space(), 1);
        let r = OverlapReport::analyze(&t, &det).unwrap();
        // Only ~1/3 of records match; those carry weight 3.
        assert!((r.zero_weight_fraction - 2.0 / 3.0).abs() < 0.06);
        assert!((r.max_weight - 3.0).abs() < 1e-9);
        assert!(r.effective_sample_size < 250.0);
    }

    #[test]
    fn unsupported_mass_detected() {
        // Log only decisions 0 and 1; the candidate puts weight on 2.
        let s = schema();
        let mut rng = Xoshiro256::seed_from(3);
        let recs: Vec<TraceRecord> = (0..200)
            .map(|_| {
                let c = Context::build(&s).set_cat("g", 0).finish();
                let d = rng.index(2);
                TraceRecord::new(c, Decision::from_index(d), 1.0).with_propensity(0.5)
            })
            .collect();
        let t = Trace::from_records(s, space(), recs).unwrap();
        let candidate = UniformRandomPolicy::new(space());
        let r = OverlapReport::analyze(&t, &candidate).unwrap();
        assert!((r.unsupported_mass - 1.0 / 3.0).abs() < 1e-9);
        assert!(!r.healthy());
        assert!(r.render().contains("UNHEALTHY"));
    }

    #[test]
    fn tiny_epsilon_logging_is_flagged() {
        // Production pinned to decision 0 with epsilon 0.01; candidate
        // wants decision 2: forecast ESS collapses.
        let old = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.01);
        let t = logged(&old, 2_000, 4);
        let cand = LookupPolicy::constant(space(), 2);
        let r = OverlapReport::analyze(&t, &cand).unwrap();
        assert!(
            r.effective_sample_size < 0.01 * t.len() as f64 || !r.healthy(),
            "ess {} of {}",
            r.effective_sample_size,
            t.len()
        );
    }
}
