//! Per-decision sequential DR for multi-step session traces
//! (Jiang & Li 2016, "Doubly Robust Off-policy Value Evaluation for
//! Reinforcement Learning"; ROADMAP item 3c).
//!
//! An ABR session is not one decision — it is a trajectory of H chunk
//! decisions whose rewards accumulate. Evaluating a new controller with
//! the single-step estimators treats every chunk independently, and the
//! trajectory-level alternative (weight the whole session by the product
//! of its H importance ratios) explodes in variance: the product of H
//! per-step weights has exponentially heavy tails. Jiang & Li's
//! per-decision DR threads the correction *backward* through the
//! trajectory instead:
//!
//! ```text
//! V̂_H = dm_H + w_H · (r_H − q̂_H)                        (last step)
//! V̂_t = dm_t + w_t · ((r_t − q̂_t) + V̂_{t+1})            (t < H)
//! ```
//!
//! so step `t`'s weight multiplies only the *tail* value, never the full
//! product, and the model term `dm_t` re-anchors the recursion at every
//! step. Each trajectory contributes one number `V̂_1`; the estimate is
//! their mean.
//!
//! [`SeqDr`] consumes flat traces that are concatenations of fixed-length
//! trajectories in stream order (how [`ddn-abr`'s] `log_session` emits
//! them). At `horizon = 1` the recursion's innermost expression is
//! exactly the single-step DR contribution — `dm + w·(r − q̂)`, with the
//! residual formed directly rather than via `(r − q̂) + 0.0` so signed
//! zeros survive — making the reduction to [`crate::DoublyRobust`]
//! **bit-identical**, pinned by the reduction property tests.
//!
//! [`ddn-abr`'s]: ../../ddn_abr/index.html

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use crate::ips::importance_weights;
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::Trace;

/// Per-decision sequential DR over fixed-horizon trajectories — see the
/// module docs for the recursion.
#[derive(Debug, Clone)]
pub struct SeqDr<M: RewardModel> {
    model: M,
    horizon: usize,
}

impl<M: RewardModel> SeqDr<M> {
    /// Creates a sequential-DR estimator for trajectories of exactly
    /// `horizon` steps, around a fitted per-step reward model.
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn new(model: M, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self { model, horizon }
    }

    /// The underlying reward model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The trajectory length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

/// Folds one trajectory's per-step `(dm, w, residual)` triples through
/// the backward per-decision recursion. The last step computes
/// `dm + w·residual` directly (no `+ 0.0` tail) so `horizon = 1` is the
/// exact single-step DR expression.
pub(crate) fn trajectory_value(steps: &[(f64, f64, f64)]) -> f64 {
    let (dm_last, w_last, res_last) = steps[steps.len() - 1];
    let mut v = dm_last + w_last * res_last;
    for &(dm, w, residual) in steps[..steps.len() - 1].iter().rev() {
        v = dm + w * (residual + v);
    }
    v
}

/// Folds per-record `(dm, w, residual)` triples — `used` of them, a
/// whole number of trajectories — into per-trajectory contributions.
fn per_trajectory(steps: &[(f64, f64, f64)], horizon: usize) -> Vec<f64> {
    steps.chunks(horizon).map(trajectory_value).collect()
}

impl<M: RewardModel> Estimator for SeqDr<M> {
    fn name(&self) -> &str {
        "SeqDR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let trajectories = trace.len() / self.horizon;
        if trajectories == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let used = trajectories * self.horizon;
        let space = trace.space();
        let mut abs_residual_sum = 0.0;
        let steps: Vec<(f64, f64, f64)> = trace.records()[..used]
            .iter()
            .zip(&weights[..used])
            .map(|(rec, &w)| {
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
                abs_residual_sum += residual.abs();
                (dm_term, w, residual)
            })
            .collect();
        let per_record = per_trajectory(&steps, self.horizon);
        let diagnostics = WeightDiagnostics::from_weights(&weights[..used]);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("horizon", self.horizon as f64),
                ("trajectories", trajectories as f64),
                ("mean_abs_residual", abs_residual_sum / used as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M: RewardModel> BatchEstimator for SeqDr<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        let trajectories = trace.len() / self.horizon;
        if trajectories == 0 {
            return Err(EstimatorError::NoUsableRecords);
        }
        let used = trajectories * self.horizon;
        let n = trace.len();
        let mut abs_residual_sum = 0.0;
        let steps: Vec<(f64, f64, f64)> = match batch.model_scores() {
            Some(scores) => {
                note_reuse(self.name(), 3 * n as u64, 0);
                scores.dm_terms()[..used]
                    .iter()
                    .zip(&scores.q_logged()[..used])
                    .zip(&batch.rewards()[..used])
                    .zip(&weights[..used])
                    .map(|(((dm_term, q_logged), r), &w)| {
                        let residual = r - q_logged;
                        abs_residual_sum += residual.abs();
                        (*dm_term, w, residual)
                    })
                    .collect()
            }
            None => {
                note_reuse(self.name(), 2 * n as u64, n as u64);
                let space = trace.space();
                trace.records()[..used]
                    .iter()
                    .enumerate()
                    .zip(&weights[..used])
                    .map(|((i, rec), &w)| {
                        let probs = batch.probs_row(i);
                        let dm_term: f64 = space
                            .iter()
                            .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                            .sum();
                        let residual =
                            rec.reward - self.model.predict(&rec.context, rec.decision);
                        abs_residual_sum += residual.abs();
                        (dm_term, w, residual)
                    })
                    .collect()
            }
        };
        let per_record = per_trajectory(&steps, self.horizon);
        let diagnostics = WeightDiagnostics::from_weights(&weights[..used]);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("horizon", self.horizon as f64),
                ("trajectories", trajectories as f64),
                ("mean_abs_residual", abs_residual_sum / used as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use ddn_models::ConstantModel;
    use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, DecisionSpace, Trace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn truth(g: u32, d: usize) -> f64 {
        2.0 + g as f64 + 3.0 * d as f64
    }

    fn session_trace(trajectories: usize, horizon: usize, seed: u64) -> Trace {
        let s = schema();
        let logger =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.5);
        let mut rng = Xoshiro256::seed_from(seed);
        let mut recs = Vec::new();
        for _ in 0..trajectories {
            for _ in 0..horizon {
                let g = rng.index(2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                let (d, p) = logger.sample_with_prob(&c, &mut rng);
                recs.push(
                    TraceRecord::new(c, d, truth(g, d.index())).with_propensity(p),
                );
            }
        }
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn horizon_one_reduces_to_dr_bit_for_bit() {
        let t = session_trace(250, 1, 41);
        let newp = LookupPolicy::constant(space(), 1);
        let model = || ConstantModel::new(1.5);
        let a = SeqDr::new(model(), 1).estimate(&t, &newp).unwrap();
        let b = DoublyRobust::new(model()).estimate(&t, &newp).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        for (x, y) in a.per_record.iter().zip(&b.per_record) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let t = session_trace(60, 5, 42);
        let newp = LookupPolicy::constant(space(), 1);
        let model = ConstantModel::new(2.5);
        let seq = SeqDr::new(model.clone(), 5);
        let with_model = EvalBatch::with_model(&t, &newp, &model).unwrap();
        let bare = EvalBatch::build(&t, &newp).unwrap();
        let s = seq.estimate(&t, &newp).unwrap();
        for batch in [&with_model, &bare] {
            let b = seq.estimate_batch(&t, batch).unwrap();
            assert_eq!(s.value.to_bits(), b.value.to_bits());
            assert_eq!(s.diagnostics, b.diagnostics);
        }
    }

    #[test]
    fn partial_trailing_trajectory_is_ignored() {
        let full = session_trace(10, 4, 43);
        // Append 3 stray records (an incomplete trajectory).
        let extra = session_trace(1, 3, 44);
        let mut recs = full.records().to_vec();
        recs.extend_from_slice(extra.records());
        let t = Trace::from_records(full.schema().clone(), space(), recs).unwrap();
        let newp = LookupPolicy::constant(space(), 1);
        let seq = SeqDr::new(ConstantModel::new(1.0), 4);
        let whole = seq.estimate(&t, &newp).unwrap();
        let complete_only = seq.estimate(&full, &newp).unwrap();
        assert_eq!(whole.value.to_bits(), complete_only.value.to_bits());
        assert_eq!(whole.per_record.len(), 10);
    }

    #[test]
    fn too_short_trace_has_no_usable_records() {
        let t = session_trace(1, 3, 45);
        let newp = LookupPolicy::constant(space(), 1);
        let seq = SeqDr::new(ConstantModel::new(1.0), 8);
        assert!(matches!(
            seq.estimate(&t, &newp),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    fn per_decision_variance_beats_trajectory_weighting() {
        // Trajectory-level alternative: weight each session's summed
        // reward by the product of its step weights. With a stochastic
        // target the step weights are 1/3 or 3 against the smoothed
        // logger, so six-step products span 0.0014..729 — heavy-tailed.
        // Per-decision DR must have visibly lower spread across seeds.
        let newp = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 1)), 0.5);
        let horizon = 6;
        let trajectory_level = |t: &Trace| -> f64 {
            let w = importance_weights(t, &newp).unwrap();
            let mut vals = Vec::new();
            for (chunk_w, chunk_r) in w
                .chunks(horizon)
                .zip(t.records().chunks(horizon))
            {
                let prod: f64 = chunk_w.iter().product();
                let total: f64 = chunk_r.iter().map(|r| r.reward).sum();
                vals.push(prod * total);
            }
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let spread = |per_decision: bool| {
            let vals: Vec<f64> = (0..30)
                .map(|i| {
                    let t = session_trace(40, horizon, 600 + i);
                    if per_decision {
                        SeqDr::new(ConstantModel::new(3.0), horizon)
                            .estimate(&t, &newp)
                            .unwrap()
                            .value
                    } else {
                        trajectory_level(&t)
                    }
                })
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let v_seq = spread(true);
        let v_traj = spread(false);
        assert!(
            v_seq < v_traj,
            "per-decision variance {v_seq} should be far below trajectory-level {v_traj}"
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let _ = SeqDr::new(ConstantModel::new(0.0), 0);
    }
}
