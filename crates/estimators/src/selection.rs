//! Policy selection: the workflow the paper's Figure 1 depicts.
//!
//! "Using such a trace-driven evaluator, we can then compare different
//! policies μ_new to pick the best possible strategy for future clients"
//! (§2.1). [`PolicyComparator`] runs one estimator across a slate of
//! candidate policies, attaches bootstrap confidence intervals to every
//! estimate, surfaces the per-candidate weight diagnostics (so a "winning"
//! candidate whose estimate rests on three records is visibly suspect),
//! and ranks the slate.

use crate::estimate::{Estimate, Estimator};
use ddn_policy::Policy;
use ddn_stats::bootstrap::{bootstrap_ci, BootstrapCi};
use ddn_stats::rng::Rng;
use ddn_trace::Trace;

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The caller-supplied candidate name.
    pub name: String,
    /// The estimator's output.
    pub estimate: Estimate,
    /// Bootstrap CI over the per-record contributions.
    pub ci: BootstrapCi,
}

impl Candidate {
    /// A crude reliability flag: the effective sample size behind this
    /// estimate, as a fraction of the trace.
    pub fn support_fraction(&self, trace_len: usize) -> f64 {
        self.estimate.diagnostics.effective_sample_size / trace_len as f64
    }
}

/// Result of comparing a slate of policies.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Candidates sorted by estimated value, best first.
    pub ranked: Vec<Candidate>,
    /// Names of candidates that could not be evaluated (e.g. zero overlap)
    /// with the error message.
    pub failed: Vec<(String, String)>,
}

impl Comparison {
    /// The winning candidate, if any was evaluable.
    pub fn best(&self) -> Option<&Candidate> {
        self.ranked.first()
    }

    /// Whether the winner's CI overlaps the runner-up's — if it does, the
    /// trace does not support a confident choice and the paper's §4.1
    /// advice applies: collect more (or more randomized) data.
    pub fn decisive(&self) -> Option<bool> {
        match self.ranked.as_slice() {
            [] | [_] => self.ranked.first().map(|_| true),
            [best, second, ..] => Some(best.ci.lo > second.ci.hi),
        }
    }

    /// Renders the ranking as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .ranked
            .iter()
            .map(|c| c.name.len())
            .chain(self.failed.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<name_w$}  {:>9}  {:>9}  {:>9}  {:>8}\n",
            "policy", "estimate", "ci lo", "ci hi", "ess"
        ));
        for c in &self.ranked {
            out.push_str(&format!(
                "{:<name_w$}  {:>9.4}  {:>9.4}  {:>9.4}  {:>8.0}\n",
                c.name,
                c.estimate.value,
                c.ci.lo,
                c.ci.hi,
                c.estimate.diagnostics.effective_sample_size
            ));
        }
        for (n, e) in &self.failed {
            out.push_str(&format!("{n:<name_w$}  <failed: {e}>\n"));
        }
        out
    }
}

/// Compares candidate policies with a common estimator.
pub struct PolicyComparator<'a, E: Estimator> {
    estimator: &'a E,
    confidence: f64,
    resamples: usize,
}

impl<'a, E: Estimator> PolicyComparator<'a, E> {
    /// Creates a comparator using 95% bootstrap CIs with 2000 resamples.
    pub fn new(estimator: &'a E) -> Self {
        Self {
            estimator,
            confidence: 0.95,
            resamples: 2_000,
        }
    }

    /// Overrides the CI level.
    ///
    /// # Panics
    /// Panics unless `0 < level < 1`.
    pub fn with_confidence(mut self, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        self.confidence = level;
        self
    }

    /// Overrides the bootstrap resample count.
    ///
    /// # Panics
    /// Panics if `resamples == 0`.
    pub fn with_resamples(mut self, resamples: usize) -> Self {
        assert!(resamples > 0, "need at least one resample");
        self.resamples = resamples;
        self
    }

    /// Evaluates and ranks the slate. Candidates whose estimation fails
    /// (e.g. [`crate::EstimatorError::NoUsableRecords`]) are reported in
    /// `failed`, not silently dropped.
    pub fn compare(
        &self,
        trace: &Trace,
        candidates: &[(&str, &dyn Policy)],
        rng: &mut dyn Rng,
    ) -> Comparison {
        let mut ranked = Vec::new();
        let mut failed = Vec::new();
        for (name, policy) in candidates {
            match self.estimator.estimate(trace, *policy) {
                Ok(estimate) => {
                    let ci =
                        bootstrap_ci(&estimate.per_record, self.confidence, self.resamples, rng);
                    ranked.push(Candidate {
                        name: (*name).to_string(),
                        estimate,
                        ci,
                    });
                }
                Err(e) => failed.push(((*name).to_string(), e.to_string())),
            }
        }
        ranked.sort_by(|a, b| {
            b.estimate
                .value
                .partial_cmp(&a.estimate.value)
                .expect("estimates are finite")
        });
        Comparison { ranked, failed }
    }
}

/// Convenience: fraction of `runs` seeded comparisons in which the
/// estimator ranks `truth_best` first — the "did trace-driven evaluation
/// pick the right policy?" success metric that ultimately matters for
/// deployment decisions.
pub fn selection_accuracy<E: Estimator>(
    estimator: &E,
    traces: impl Iterator<Item = Trace>,
    candidates: &[(&str, &dyn Policy)],
    truth_best: &str,
    rng: &mut dyn Rng,
) -> f64 {
    let mut wins = 0usize;
    let mut total = 0usize;
    let comparator = PolicyComparator::new(estimator).with_resamples(1);
    for trace in traces {
        let cmp = comparator.compare(&trace, candidates, rng);
        if let Some(best) = cmp.best() {
            if best.name == truth_best {
                wins += 1;
            }
        }
        total += 1;
    }
    assert!(total > 0, "need at least one trace");
    wins as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DoublyRobust;
    use crate::ips::Ips;
    use ddn_models::ConstantModel;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    /// Decision 2 is truly best (reward = decision index).
    fn trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let d = rng.index(3);
                let c = Context::build(&s).set_cat("g", g).finish();
                let r = d as f64 + 0.2 * (rng.next_f64() - 0.5);
                TraceRecord::new(c, Decision::from_index(d), r).with_propensity(1.0 / 3.0)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn ranks_policies_by_true_value() {
        let t = trace(3_000, 1);
        let ips = Ips::new();
        let mut rng = Xoshiro256::seed_from(2);
        let best = LookupPolicy::constant(space(), 2);
        let worst = LookupPolicy::constant(space(), 0);
        let uniform = UniformRandomPolicy::new(space());
        let cmp = PolicyComparator::new(&ips).compare(
            &t,
            &[
                ("always-a", &worst),
                ("uniform", &uniform),
                ("always-c", &best),
            ],
            &mut rng,
        );
        let names: Vec<&str> = cmp.ranked.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["always-c", "uniform", "always-a"]);
        assert!(cmp.failed.is_empty());
        assert_eq!(
            cmp.decisive(),
            Some(true),
            "2 vs 1 should be decisive at n=3000"
        );
        let text = cmp.render();
        assert!(text.contains("always-c") && text.contains("estimate"));
    }

    #[test]
    fn failed_candidates_are_reported() {
        // A trace that only ever logged decision 0; evaluating "always c"
        // by matching has no usable records for SNIPS-like estimators —
        // simulate with an estimator that errors via space mismatch.
        let t = trace(100, 3);
        let ips = Ips::new();
        let mut rng = Xoshiro256::seed_from(4);
        let alien = UniformRandomPolicy::new(DecisionSpace::of(&["x"]));
        let fine = UniformRandomPolicy::new(space());
        let cmp = PolicyComparator::new(&ips).compare(
            &t,
            &[("alien", &alien), ("fine", &fine)],
            &mut rng,
        );
        assert_eq!(cmp.ranked.len(), 1);
        assert_eq!(cmp.failed.len(), 1);
        assert_eq!(cmp.failed[0].0, "alien");
        assert!(cmp.render().contains("failed"));
    }

    #[test]
    fn indecisive_when_cis_overlap() {
        // Two nearly identical candidates on a tiny trace: CIs overlap.
        let t = trace(40, 5);
        let dr = DoublyRobust::new(ConstantModel::new(1.0));
        let mut rng = Xoshiro256::seed_from(6);
        let b = LookupPolicy::constant(space(), 1);
        let almost_b = ddn_policy::EpsilonSmoothedPolicy::new(
            Box::new(LookupPolicy::constant(space(), 1)),
            0.05,
        );
        let cmp =
            PolicyComparator::new(&dr).compare(&t, &[("b", &b), ("almost-b", &almost_b)], &mut rng);
        assert_eq!(cmp.decisive(), Some(false));
    }

    #[test]
    fn selection_accuracy_counts_wins() {
        let ips = Ips::new();
        let mut rng = Xoshiro256::seed_from(7);
        let best = LookupPolicy::constant(space(), 2);
        let worst = LookupPolicy::constant(space(), 0);
        let candidates: Vec<(&str, &dyn Policy)> = vec![("worst", &worst), ("best", &best)];
        let acc = selection_accuracy(
            &ips,
            (0..10).map(|i| trace(500, 100 + i)),
            &candidates,
            "best",
            &mut rng,
        );
        assert!(
            acc > 0.9,
            "IPS should almost always pick the 2-vs-0 winner, got {acc}"
        );
    }
}
