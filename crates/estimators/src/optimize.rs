//! Offline policy *optimization* — the second half of the paper's ref
//! \[9\] ("Doubly robust policy evaluation **and optimization**").
//!
//! Evaluation answers "how good is this policy?"; optimization asks the
//! trace for a better one. Two standard constructions are provided:
//!
//! - [`dm_greedy_policy`] — the Direct-Method optimizer: per context,
//!   pick the decision the reward model predicts best. Inherits every
//!   model bias (§2.2.1) but needs no propensities.
//! - [`dr_select`] — doubly robust policy *search* over an explicit
//!   candidate class: score every candidate with the DR estimator and
//!   keep the argmax. Inherits DR's protection against model error, at
//!   the cost of only searching where you look.
//!
//! Both come with the honesty tooling this workspace insists on: the
//! selected policy's DR estimate and weight diagnostics ride along, so a
//! "winner" supported by three records is visible as such.

use crate::dr::DoublyRobust;
use crate::estimate::{Estimate, Estimator, EstimatorError};
use ddn_models::RewardModel;
use ddn_policy::{LookupPolicy, Policy};
use ddn_trace::{Context, Trace};
use std::collections::HashSet;

/// Builds the Direct-Method greedy policy: for every *distinct* context in
/// the trace, the decision maximizing the model's predicted reward; unseen
/// contexts fall back to the decision that is best on average across the
/// trace's contexts.
pub fn dm_greedy_policy<M: RewardModel>(trace: &Trace, model: &M) -> LookupPolicy {
    let space = trace.space();
    // Global default: argmax of the context-averaged prediction.
    let mut totals = vec![0.0f64; space.len()];
    let mut seen: HashSet<ddn_trace::ContextKey> = HashSet::new();
    let distinct: Vec<&Context> = trace
        .records()
        .iter()
        .filter(|r| seen.insert(r.context.key()))
        .map(|r| &r.context)
        .collect();
    for ctx in &distinct {
        for d in space.iter() {
            totals[d.index()] += model.predict(ctx, d);
        }
    }
    let default = totals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite predictions"))
        .map(|(i, _)| i)
        .expect("non-empty decision space");

    let mut policy = LookupPolicy::new(space.clone(), default);
    for ctx in distinct {
        let best = space
            .iter()
            .max_by(|a, b| {
                model
                    .predict(ctx, *a)
                    .partial_cmp(&model.predict(ctx, *b))
                    .expect("finite predictions")
            })
            .expect("non-empty decision space");
        policy.insert(ctx, best.index());
    }
    policy
}

/// Result of a DR policy search.
#[derive(Debug)]
pub struct SearchResult<'a> {
    /// Index of the winning candidate in the input slice.
    pub best_index: usize,
    /// Name of the winning candidate.
    pub best_name: &'a str,
    /// The winner's DR estimate (value + diagnostics).
    pub estimate: Estimate,
    /// DR values of every candidate, in input order (`None` where
    /// estimation failed).
    pub scores: Vec<Option<f64>>,
}

/// Scores every candidate policy with DR under `model` and returns the
/// argmax.
///
/// Errors with [`EstimatorError::NoUsableRecords`] if no candidate could
/// be evaluated at all.
pub fn dr_select<'a, M: RewardModel>(
    trace: &Trace,
    model: &M,
    candidates: &[(&'a str, &dyn Policy)],
) -> Result<SearchResult<'a>, EstimatorError> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let dr = DoublyRobust::new(model);
    let mut scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(usize, Estimate)> = None;
    for (i, (_, policy)) in candidates.iter().enumerate() {
        match dr.estimate(trace, *policy) {
            Ok(est) => {
                let replace = match &best {
                    None => true,
                    Some((_, b)) => est.value > b.value,
                };
                scores.push(Some(est.value));
                if replace {
                    best = Some((i, est));
                }
            }
            Err(_) => scores.push(None),
        }
    }
    match best {
        Some((best_index, estimate)) => Ok(SearchResult {
            best_index,
            best_name: candidates[best_index].0,
            estimate,
            scores,
        }),
        None => Err(EstimatorError::NoUsableRecords),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_models::{FnModel, TabularMeanModel};
    use ddn_policy::UniformRandomPolicy;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    /// Truth: group 0 prefers decision 1, group 1 prefers decision 0 —
    /// a context-dependent optimum no constant policy reaches.
    fn truth(g: u32, d: usize) -> f64 {
        if (g as usize) != d {
            3.0
        } else {
            1.0
        }
    }

    fn logged_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", g).finish();
                let r = truth(g, d) + 0.3 * (rng.next_f64() - 0.5);
                TraceRecord::new(c, Decision::from_index(d), r).with_propensity(0.5)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    /// Exact value of a policy under the uniform-group population.
    fn true_value(policy: &dyn Policy) -> f64 {
        let s = schema();
        (0..2u32)
            .map(|g| {
                let c = Context::build(&s).set_cat("g", g).finish();
                (0..2)
                    .map(|d| policy.prob(&c, Decision::from_index(d)) * truth(g, d))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / 2.0
    }

    #[test]
    fn dm_greedy_learns_the_context_dependent_optimum() {
        let t = logged_trace(2_000, 1);
        let model = TabularMeanModel::fit_trace(&t, 1.0);
        let learned = dm_greedy_policy(&t, &model);
        let v = true_value(&learned);
        assert!(
            (v - 3.0).abs() < 0.05,
            "learned value {v} should approach the optimum 3.0"
        );
        // It must beat both constant policies and the logger.
        assert!(v > true_value(&UniformRandomPolicy::new(space())));
        assert!(v > true_value(&LookupPolicy::constant(space(), 0)));
    }

    #[test]
    fn dm_greedy_fallback_for_unseen_contexts() {
        // Train only on group 0; query group 1 uses the default decision.
        let s = schema();
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| {
                let d = i % 2;
                let c = Context::build(&s).set_cat("g", 0).finish();
                TraceRecord::new(c, Decision::from_index(d), truth(0, d)).with_propensity(0.5)
            })
            .collect();
        let t = Trace::from_records(s.clone(), space(), recs).unwrap();
        let model = TabularMeanModel::fit_trace(&t, 0.0);
        let learned = dm_greedy_policy(&t, &model);
        let unseen = Context::build(&s).set_cat("g", 1).finish();
        // Default is group 0's best (decision 1); deterministic either way.
        let probs = learned.probabilities(&unseen);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(learned.decide(&unseen).index(), 1);
    }

    #[test]
    fn dr_select_picks_the_truly_better_candidate_despite_model_bias() {
        let t = logged_trace(3_000, 2);
        // A badly biased model that loves decision 0 everywhere.
        let biased = FnModel::new(
            |_: &Context, d: Decision| {
                if d.index() == 0 {
                    10.0
                } else {
                    0.0
                }
            },
        );
        let good = {
            let s = schema();
            let mut p = LookupPolicy::new(space(), 0);
            p.insert(&Context::build(&s).set_cat("g", 0).finish(), 1);
            p.insert(&Context::build(&s).set_cat("g", 1).finish(), 0);
            p // the true optimum
        };
        let bad = LookupPolicy::constant(space(), 0);
        let result = dr_select(
            &t,
            &biased,
            &[("bad-constant", &bad), ("context-aware", &good)],
        )
        .unwrap();
        assert_eq!(result.best_name, "context-aware");
        assert!(result.scores.iter().all(|s| s.is_some()));
        // The DR score of the winner approaches its true value 3.0 even
        // though the model is garbage — the IPS correction saves it.
        assert!(
            (result.estimate.value - 3.0).abs() < 0.2,
            "{}",
            result.estimate.value
        );
    }

    #[test]
    fn dr_select_reports_unevaluable_candidates() {
        let t = logged_trace(50, 3);
        let model = TabularMeanModel::fit_trace(&t, 1.0);
        let alien = UniformRandomPolicy::new(DecisionSpace::of(&["x", "y", "z"]));
        let fine = UniformRandomPolicy::new(space());
        let result = dr_select(&t, &model, &[("alien", &alien), ("fine", &fine)]).unwrap();
        assert_eq!(result.best_name, "fine");
        assert_eq!(result.scores[0], None);
        assert!(result.scores[1].is_some());
    }
}
