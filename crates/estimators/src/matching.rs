//! The matching estimator — the paper's formalization of CFA's original
//! evaluator (§2.2.2, Figure 5).
//!
//! "Given the video quality of previously seen clients who have been
//! randomly assigned to a set of available CDNs and bitrates, CFA
//! evaluates the video quality of a different client-CDN/bitrate
//! assignment by using only the data of clients who use the same
//! CDNs/bitrates in the old and new assignments."
//!
//! Formally: average the observed rewards over records whose logged
//! decision would also have been chosen by the new policy (sampled for
//! stochastic new policies). Under a uniformly random logging policy this
//! is unbiased — "matching the decisions of the old policy and the new
//! policy is unbiased but could lead to low coverage and statistical
//! significance" — which is exactly the variance Figure 7c quantifies.

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use ddn_policy::Policy;
use ddn_trace::Trace;

/// CFA-style decision-matching evaluator.
///
/// For a deterministic new policy, a record matches when the logged
/// decision equals the policy's choice. Matching ignores propensities
/// entirely — it is only unbiased when the logging policy treats decisions
/// symmetrically (e.g. uniform randomization, CFA's setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingEstimator;

impl MatchingEstimator {
    /// Creates a matching estimator.
    pub fn new() -> Self {
        Self
    }
}

impl Estimator for MatchingEstimator {
    fn name(&self) -> &str {
        "CFA"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let mut matched = Vec::new();
        let mut weights = Vec::new();
        for rec in trace.records() {
            // A record matches in proportion to the probability the new
            // policy picks the logged decision; for deterministic policies
            // this is the 0/1 match of the paper's Figure 5.
            let p = new_policy.prob(&rec.context, rec.decision);
            if p > 0.0 {
                matched.push(rec.reward);
                weights.push(p);
            }
        }
        if matched.is_empty() {
            return Err(EstimatorError::NoUsableRecords);
        }
        // Probability-weighted mean (reduces to the plain mean for
        // deterministic new policies).
        let wsum: f64 = weights.iter().sum();
        let value: f64 = matched
            .iter()
            .zip(&weights)
            .map(|(r, w)| r * w)
            .sum::<f64>()
            / wsum;
        let n = matched.len() as f64;
        let per_record: Vec<f64> = matched
            .iter()
            .zip(&weights)
            .map(|(r, w)| n * r * w / wsum)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("coverage", matched.len() as f64 / trace.len() as f64),
                ("match_count", matched.len() as f64),
            ],
        );
        Ok(Estimate {
            value,
            per_record,
            diagnostics,
        })
    }
}

impl BatchEstimator for MatchingEstimator {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        note_reuse(self.name(), trace.len() as u64, 0);
        let mut matched = Vec::new();
        let mut weights = Vec::new();
        for (&r, &p) in batch.rewards().iter().zip(batch.p_logged()) {
            if p > 0.0 {
                matched.push(r);
                weights.push(p);
            }
        }
        if matched.is_empty() {
            return Err(EstimatorError::NoUsableRecords);
        }
        let wsum: f64 = weights.iter().sum();
        let value: f64 = matched
            .iter()
            .zip(&weights)
            .map(|(r, w)| r * w)
            .sum::<f64>()
            / wsum;
        let n = matched.len() as f64;
        let per_record: Vec<f64> = matched
            .iter()
            .zip(&weights)
            .map(|(r, w)| n * r * w / wsum)
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("coverage", matched.len() as f64 / trace.len() as f64),
                ("match_count", matched.len() as f64),
            ],
        );
        Ok(Estimate {
            value,
            per_record,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::LookupPolicy;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 4).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    fn uniform_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(4) as u32;
                let d = rng.index(3);
                let c = Context::build(&s).set_cat("g", g).finish();
                // Truth: reward = d + 0.1 g.
                TraceRecord::new(c, Decision::from_index(d), d as f64 + 0.1 * g as f64)
                    .with_propensity(1.0 / 3.0)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    #[test]
    fn matching_unbiased_under_uniform_logging() {
        let t = uniform_trace(30_000, 51);
        let newp = LookupPolicy::constant(space(), 2);
        let e = MatchingEstimator::new().estimate(&t, &newp).unwrap();
        // Truth: 2 + 0.1·1.5 = 2.15.
        assert!((e.value - 2.15).abs() < 0.02, "{}", e.value);
        // Only ~1/3 of records matched.
        assert!((e.per_record.len() as f64 / 30_000.0 - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn matching_high_variance_with_few_matches() {
        // Tiny trace and 12-fold context granularity: estimates scatter.
        let newp = LookupPolicy::constant(space(), 2);
        let vals: Vec<f64> = (0..40)
            .map(|i| {
                let t = uniform_trace(30, 100 + i);
                MatchingEstimator::new()
                    .estimate(&t, &newp)
                    .map(|e| e.value)
                    .unwrap_or(f64::NAN)
            })
            .filter(|v| v.is_finite())
            .collect();
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(
            var > 0.001,
            "matching on 10 matches should scatter, var {var}"
        );
    }

    #[test]
    fn no_matches_is_an_error() {
        let s = schema();
        let recs = vec![TraceRecord::new(
            Context::build(&s).set_cat("g", 0).finish(),
            Decision::from_index(0),
            1.0,
        )];
        let t = Trace::from_records(s, space(), recs).unwrap();
        let newp = LookupPolicy::constant(space(), 2);
        assert!(matches!(
            MatchingEstimator::new().estimate(&t, &newp),
            Err(EstimatorError::NoUsableRecords)
        ));
    }

    #[test]
    fn matching_ignores_propensities() {
        // Identical rewards, wildly different propensities: matching's
        // value depends only on matched rewards.
        let s = schema();
        let mk = |p: f64| {
            let recs = vec![TraceRecord::new(
                Context::build(&s).set_cat("g", 0).finish(),
                Decision::from_index(2),
                5.0,
            )
            .with_propensity(p)];
            Trace::from_records(s.clone(), space(), recs).unwrap()
        };
        let newp = LookupPolicy::constant(space(), 2);
        let a = MatchingEstimator::new()
            .estimate(&mk(0.01), &newp)
            .unwrap()
            .value;
        let b = MatchingEstimator::new()
            .estimate(&mk(0.99), &newp)
            .unwrap()
            .value;
        assert_eq!(a, b);
        assert_eq!(a, 5.0);
    }
}
