//! The Doubly Robust estimator (paper §3, Eq. 1/2) and the SWITCH variant.

use crate::batch::{note_reuse, BatchEstimator, EvalBatch};
use crate::estimate::{
    check_space, emit_weight_health, Estimate, Estimator, EstimatorError, WeightDiagnostics,
};
use crate::ips::importance_weights;
use ddn_models::RewardModel;
use ddn_policy::Policy;
use ddn_trace::Trace;

/// Doubly Robust (DR) estimator — the paper's Eq. 2 per-client form:
///
/// ```text
/// V̂_DR = (1/n) Σ_k [ Σ_d μ_new(d|c_k) · r̂(c_k, d)
///                    + w_k · (r_k − r̂(c_k, d_k)) ]
/// where w_k = μ_new(d_k|c_k) / μ_old(d_k|c_k)
/// ```
///
/// The first term is the DM estimate; the second is an IPS correction
/// applied to the model's *residual* at the logged decision. Special cases
/// (paper §3):
///
/// - if `μ_new` and `μ_old` deterministically agree on tuple `k`, the
///   per-tuple DR equals the per-tuple IPS (`w_k = 1` and the model terms
///   cancel);
/// - if the reward model is exact at tuple `k` (`r_k = r̂(c_k, d_k)`), the
///   correction vanishes and per-tuple DR equals per-tuple DM.
///
/// Consequently DR carries "second-order bias": its error is bounded by
/// (roughly) the *product* of the DM error and the IPS (propensity) error —
/// it is accurate when either one is.
///
/// ```
/// use ddn_estimators::{DoublyRobust, Estimator};
/// use ddn_models::TabularMeanModel;
/// use ddn_policy::LookupPolicy;
/// use ddn_trace::{Context, ContextSchema, DecisionSpace, Trace, TraceRecord};
///
/// let schema = ContextSchema::builder().categorical("g", 2).build();
/// let space = DecisionSpace::of(&["a", "b"]);
/// // Uniformly logged trace: reward = decision index.
/// let records: Vec<TraceRecord> = (0..100)
///     .map(|i| {
///         let ctx = Context::build(&schema).set_cat("g", (i % 2) as u32).finish();
///         let d = space.decision(i % 2);
///         TraceRecord::new(ctx, d, d.index() as f64).with_propensity(0.5)
///     })
///     .collect();
/// let trace = Trace::from_records(schema, space.clone(), records).unwrap();
///
/// let model = TabularMeanModel::fit_trace(&trace, 1.0);
/// let dr = DoublyRobust::new(model);
/// let estimate = dr.estimate(&trace, &LookupPolicy::constant(space, 1)).unwrap();
/// assert!((estimate.value - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DoublyRobust<M: RewardModel> {
    model: M,
}

impl<M: RewardModel> DoublyRobust<M> {
    /// Creates a DR estimator around a fitted reward model.
    pub fn new(model: M) -> Self {
        Self { model }
    }

    /// The underlying reward model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: RewardModel> Estimator for DoublyRobust<M> {
    fn name(&self) -> &str {
        "DR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let space = trace.space();
        let mut abs_residual_sum = 0.0;
        let per_record: Vec<f64> = trace
            .records()
            .iter()
            .zip(&weights)
            .map(|(rec, &w)| {
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
                abs_residual_sum += residual.abs();
                dm_term + w * residual
            })
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[("mean_abs_residual", abs_residual_sum / trace.len() as f64)],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

/// Per-record DR contributions `dm_term_i + w_i · (r_i − q̂_i_logged)`
/// from a batch, either entirely from cached scores or with the model
/// re-queried live; also accumulates `Σ|residual|` in record order.
/// Shared by DR, SWITCH-DR (via pre-switched weights), and the
/// state-aware path's dense case.
pub(crate) fn dr_contributions_batch<M: RewardModel>(
    source: &str,
    trace: &Trace,
    batch: &EvalBatch,
    model: &M,
    weights: &[f64],
) -> (Vec<f64>, f64) {
    let n = trace.len();
    let mut abs_residual_sum = 0.0;
    let per_record: Vec<f64> = match batch.model_scores() {
        Some(scores) => {
            note_reuse(source, 3 * n as u64, 0);
            scores
                .dm_terms()
                .iter()
                .zip(scores.q_logged())
                .zip(batch.rewards())
                .zip(weights)
                .map(|(((dm_term, q_logged), r), &w)| {
                    let residual = r - q_logged;
                    abs_residual_sum += residual.abs();
                    dm_term + w * residual
                })
                .collect()
        }
        None => {
            note_reuse(source, 2 * n as u64, n as u64);
            let space = trace.space();
            trace
                .records()
                .iter()
                .enumerate()
                .zip(weights)
                .map(|((i, rec), &w)| {
                    let probs = batch.probs_row(i);
                    let dm_term: f64 = space
                        .iter()
                        .map(|d| probs[d.index()] * model.predict(&rec.context, d))
                        .sum();
                    let residual = rec.reward - model.predict(&rec.context, rec.decision);
                    abs_residual_sum += residual.abs();
                    dm_term + w * residual
                })
                .collect()
        }
    };
    (per_record, abs_residual_sum)
}

impl<M: RewardModel> BatchEstimator for DoublyRobust<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        let (per_record, abs_residual_sum) =
            dr_contributions_batch(self.name(), trace, batch, &self.model, weights);
        let diagnostics = WeightDiagnostics::from_weights(weights);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[("mean_abs_residual", abs_residual_sum / trace.len() as f64)],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

/// SWITCH-DR: per-tuple, use the full DR form only when the importance
/// weight is at most `tau`; above the threshold, drop the IPS correction
/// and trust the model alone for that tuple.
///
/// This hard-caps the variance contribution of poorly-overlapped tuples
/// (the §4.1 "not enough randomness" pathology) at the price of DM bias on
/// exactly those tuples. `tau = ∞` recovers DR; `tau = 0` recovers DM.
#[derive(Debug, Clone)]
pub struct SwitchDr<M: RewardModel> {
    model: M,
    tau: f64,
}

impl<M: RewardModel> SwitchDr<M> {
    /// Creates a SWITCH-DR estimator with weight threshold `tau`.
    ///
    /// # Panics
    /// Panics if `tau` is negative or NaN.
    pub fn new(model: M, tau: f64) -> Self {
        assert!(
            tau >= 0.0 && !tau.is_nan(),
            "tau must be non-negative, got {tau}"
        );
        Self { model, tau }
    }

    /// The switching threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl<M: RewardModel> Estimator for SwitchDr<M> {
    fn name(&self) -> &str {
        "SwitchDR"
    }

    fn estimate(&self, trace: &Trace, new_policy: &dyn Policy) -> Result<Estimate, EstimatorError> {
        check_space(trace, new_policy)?;
        let weights = importance_weights(trace, new_policy)?;
        let space = trace.space();
        let switched = weights.iter().filter(|&&w| w > self.tau).count();
        let effective: Vec<f64> = weights
            .iter()
            .map(|&w| if w <= self.tau { w } else { 0.0 })
            .collect();
        let mut abs_residual_sum = 0.0;
        let per_record: Vec<f64> = trace
            .records()
            .iter()
            .zip(&effective)
            .map(|(rec, &w)| {
                let probs = new_policy.probabilities(&rec.context);
                let dm_term: f64 = space
                    .iter()
                    .map(|d| probs[d.index()] * self.model.predict(&rec.context, d))
                    .sum();
                let residual = rec.reward - self.model.predict(&rec.context, rec.decision);
                abs_residual_sum += residual.abs();
                dm_term + w * residual
            })
            .collect();
        let diagnostics = WeightDiagnostics::from_weights(&effective);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("clip_rate", switched as f64 / weights.len().max(1) as f64),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

impl<M: RewardModel> BatchEstimator for SwitchDr<M> {
    fn estimate_batch(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, EstimatorError> {
        batch.check_trace(trace);
        let weights = batch.weights()?;
        let switched = weights.iter().filter(|&&w| w > self.tau).count();
        let effective: Vec<f64> = weights
            .iter()
            .map(|&w| if w <= self.tau { w } else { 0.0 })
            .collect();
        let (per_record, abs_residual_sum) =
            dr_contributions_batch(self.name(), trace, batch, &self.model, &effective);
        let diagnostics = WeightDiagnostics::from_weights(&effective);
        emit_weight_health(
            self.name(),
            &diagnostics,
            &[
                ("clip_rate", switched as f64 / weights.len().max(1) as f64),
                ("mean_abs_residual", abs_residual_sum / trace.len() as f64),
            ],
        );
        Ok(Estimate::from_contributions(per_record, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DirectMethod;
    use crate::ips::Ips;
    use ddn_models::{ConstantModel, FnModel};
    use ddn_policy::LookupPolicy;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    /// Reward ground truth used across tests: r(g, d) = 1 + 2g + 3d.
    fn truth(g: u32, d: usize) -> f64 {
        1.0 + 2.0 * g as f64 + 3.0 * d as f64
    }

    fn uniform_trace(n: usize, seed: u64) -> Trace {
        let s = schema();
        let mut rng = Xoshiro256::seed_from(seed);
        let recs = (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let d = rng.index(2);
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), truth(g, d)).with_propensity(0.5)
            })
            .collect();
        Trace::from_records(s, space(), recs).unwrap()
    }

    fn perfect_model() -> FnModel<impl Fn(&Context, Decision) -> f64> {
        FnModel::new(|c: &Context, d: Decision| truth(c.cat(0), d.index()))
    }

    #[test]
    fn dr_with_zero_model_equals_ips() {
        let t = uniform_trace(300, 5);
        let newp = LookupPolicy::constant(space(), 1);
        let dr = DoublyRobust::new(ConstantModel::zero())
            .estimate(&t, &newp)
            .unwrap();
        let ips = Ips::new().estimate(&t, &newp).unwrap();
        assert!((dr.value - ips.value).abs() < 1e-12);
        for (a, b) in dr.per_record.iter().zip(&ips.per_record) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dr_with_perfect_model_equals_dm_and_truth() {
        let t = uniform_trace(300, 6);
        let newp = LookupPolicy::constant(space(), 1);
        let dr = DoublyRobust::new(perfect_model())
            .estimate(&t, &newp)
            .unwrap();
        let dm = DirectMethod::new(perfect_model())
            .estimate(&t, &newp)
            .unwrap();
        assert!((dr.value - dm.value).abs() < 1e-12);
        // Truth for "always d1": E[1 + 2g + 3] with g uniform = 5.
        assert!((dr.value - 5.0).abs() < 0.2, "{}", dr.value);
    }

    #[test]
    fn dr_per_tuple_equals_ips_when_policies_agree_deterministically() {
        // Old policy deterministic on d0 (propensity 1), new policy also d0.
        let s = schema();
        let recs: Vec<TraceRecord> = (0..50)
            .map(|i| {
                let g = (i % 2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(0), truth(g, 0)).with_propensity(1.0)
            })
            .collect();
        let t = Trace::from_records(s, space(), recs).unwrap();
        let newp = LookupPolicy::constant(space(), 0);
        // Deliberately wrong model: DR must still equal IPS per-tuple.
        let dr = DoublyRobust::new(ConstantModel::new(123.0))
            .estimate(&t, &newp)
            .unwrap();
        let ips = Ips::new().estimate(&t, &newp).unwrap();
        for (a, b) in dr.per_record.iter().zip(&ips.per_record) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((dr.value - t.mean_reward()).abs() < 1e-9);
    }

    #[test]
    fn dr_beats_both_when_model_biased_and_overlap_poor() {
        // Model has constant bias +2; logging rarely picks d1 (p=0.1);
        // evaluate "always d1". Average errors over seeds.
        let s = schema();
        let newp = LookupPolicy::constant(space(), 1);
        let biased = || FnModel::new(|c: &Context, d: Decision| truth(c.cat(0), d.index()) + 2.0);
        let run = |seed: u64| -> (f64, f64, f64) {
            let mut rng = Xoshiro256::seed_from(seed);
            let recs: Vec<TraceRecord> = (0..400)
                .map(|_| {
                    let g = rng.index(2) as u32;
                    let d = usize::from(rng.chance(0.1));
                    let c = Context::build(&s).set_cat("g", g).finish();
                    TraceRecord::new(c, Decision::from_index(d), truth(g, d))
                        .with_propensity(if d == 1 { 0.1 } else { 0.9 })
                })
                .collect();
            let t = Trace::from_records(s.clone(), space(), recs).unwrap();
            let v_dm = DirectMethod::new(biased())
                .estimate(&t, &newp)
                .unwrap()
                .value;
            let v_ips = Ips::new().estimate(&t, &newp).unwrap().value;
            let v_dr = DoublyRobust::new(biased())
                .estimate(&t, &newp)
                .unwrap()
                .value;
            (v_dm, v_ips, v_dr)
        };
        let true_v = 5.0; // E[1 + 2g + 3]
        let (mut e_dm, mut e_ips, mut e_dr) = (0.0, 0.0, 0.0);
        let runs = 30;
        for i in 0..runs {
            let (dm, ips, dr) = run(2000 + i);
            e_dm += (dm - true_v).abs();
            e_ips += (ips - true_v).abs();
            e_dr += (dr - true_v).abs();
        }
        e_dm /= runs as f64;
        e_ips /= runs as f64;
        e_dr /= runs as f64;
        assert!(e_dr < e_dm, "DR {e_dr} should beat biased DM {e_dm}");
        assert!(
            e_dr < e_ips,
            "DR {e_dr} should beat high-variance IPS {e_ips}"
        );
    }

    #[test]
    fn switch_dr_extremes_recover_dr_and_dm() {
        let t = uniform_trace(200, 8);
        let newp = LookupPolicy::constant(space(), 1);
        let model = || ConstantModel::new(2.0);
        let dr = DoublyRobust::new(model()).estimate(&t, &newp).unwrap();
        let dm = DirectMethod::new(model()).estimate(&t, &newp).unwrap();
        let sw_inf = SwitchDr::new(model(), f64::INFINITY)
            .estimate(&t, &newp)
            .unwrap();
        let sw_zero = SwitchDr::new(model(), 0.0).estimate(&t, &newp).unwrap();
        assert!((sw_inf.value - dr.value).abs() < 1e-12);
        assert!((sw_zero.value - dm.value).abs() < 1e-12);
    }

    #[test]
    fn switch_dr_caps_extreme_weight_influence() {
        let s = schema();
        let mut recs: Vec<TraceRecord> = (0..99)
            .map(|i| {
                let g = (i % 2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(0), truth(g, 0)).with_propensity(0.99)
            })
            .collect();
        // One pathological record: huge weight, wild reward.
        recs.push(
            TraceRecord::new(
                Context::build(&s).set_cat("g", 0).finish(),
                Decision::from_index(1),
                1000.0,
            )
            .with_propensity(0.01),
        );
        let t = Trace::from_records(s, space(), recs).unwrap();
        let newp = LookupPolicy::constant(space(), 1);
        let model = || ConstantModel::new(4.0);
        let dr = DoublyRobust::new(model()).estimate(&t, &newp).unwrap();
        let sw = SwitchDr::new(model(), 10.0).estimate(&t, &newp).unwrap();
        // DR is dragged far away by the weight-100 record; SWITCH is not.
        assert!(dr.value > 500.0, "dr {}", dr.value);
        assert!((sw.value - 4.0).abs() < 1.0, "switch {}", sw.value);
    }

    #[test]
    fn dr_variance_below_ips_with_decent_model() {
        // Across seeds, DR with a near-correct model should have visibly
        // lower spread than IPS when overlap is moderate.
        let newp = LookupPolicy::constant(space(), 1);
        let model = || FnModel::new(|c: &Context, d: Decision| truth(c.cat(0), d.index()) + 0.3);
        let spread = |use_dr: bool| {
            let vals: Vec<f64> = (0..40)
                .map(|i| {
                    let t = uniform_trace(100, 3000 + i);
                    if use_dr {
                        DoublyRobust::new(model())
                            .estimate(&t, &newp)
                            .unwrap()
                            .value
                    } else {
                        Ips::new().estimate(&t, &newp).unwrap().value
                    }
                })
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let v_dr = spread(true);
        let v_ips = spread(false);
        assert!(
            v_dr < v_ips,
            "DR variance {v_dr} should be below IPS variance {v_ips}"
        );
    }
}
