//! Round-trip property suite for online estimator durability hooks.
//!
//! The contract (see `OnlineEstimator::state_save`): split a stream at
//! any point, serialize the state *through JSON text*, load it into a
//! fresh identically-configured estimator, continue the stream — and
//! every subsequent estimate, health metric, and saved state is
//! bit-identical to the estimator that never stopped. The palette of
//! generated rewards deliberately includes `-0.0` (the Sum identity an
//! f64-as-text encoding would destroy), subnormal-range magnitudes, and
//! zero importance weights.

use ddn_estimators::{
    ActionEmbedding, AdaptiveWeights, EstimatorError, OnlineAdaptiveDr, OnlineAdaptiveIps,
    OnlineClippedIps, OnlineDm, OnlineDr, OnlineEstimator, OnlineIps, OnlineMarginalizedDr,
    OnlineSeqDr, OnlineSnips, SlidingWindow,
};
use ddn_models::ConstantModel;
use ddn_policy::{LookupPolicy, UniformRandomPolicy};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{prop, prop_assert, prop_assert_eq};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 3).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

/// Records drawn from a palette of f64 edge cases: signed zeros, large
/// and tiny magnitudes, zero-weight decisions (the constant policy plays
/// "b", so "a" records carry weight 0).
fn edge_records(n: usize, seed: u64) -> Vec<TraceRecord> {
    const REWARDS: [f64; 7] = [-0.0, 0.0, 1.5, -2.5, 1e300, 1e-300, 3.25];
    const PROPENSITIES: [f64; 4] = [0.75, 0.25, 1.0, 0.05];
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(3) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let r = REWARDS[rng.index(REWARDS.len())];
            let p = PROPENSITIES[rng.index(PROPENSITIES.len())];
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

type Factory = fn() -> Box<dyn OnlineEstimator>;

fn policy() -> Box<LookupPolicy> {
    Box::new(LookupPolicy::constant(space(), 1))
}

/// One factory per member of the online menu, each a fresh
/// identically-configured estimator.
fn menu() -> Vec<(&'static str, Factory)> {
    vec![
        ("dm", || {
            Box::new(
                OnlineDm::new(space(), policy(), Box::new(ConstantModel::new(2.5))).unwrap(),
            )
        }),
        ("ips", || Box::new(OnlineIps::new(space(), policy()).unwrap())),
        ("snips", || {
            Box::new(OnlineSnips::new(space(), policy()).unwrap())
        }),
        ("clipped", || {
            Box::new(OnlineClippedIps::new(space(), policy(), 3.0).unwrap())
        }),
        ("dr", || {
            Box::new(
                OnlineDr::new(space(), policy(), Box::new(ConstantModel::new(2.5))).unwrap(),
            )
        }),
        ("adaptive", || {
            Box::new(
                OnlineAdaptiveIps::new(space(), policy(), AdaptiveWeights::Stabilized).unwrap(),
            )
        }),
        ("adaptive_dr", || {
            Box::new(
                OnlineAdaptiveDr::new(
                    space(),
                    policy(),
                    Box::new(ConstantModel::new(2.5)),
                    AdaptiveWeights::Stabilized,
                )
                .unwrap(),
            )
        }),
        ("mdr", || {
            Box::new(
                OnlineMarginalizedDr::new(
                    space(),
                    policy(),
                    Box::new(UniformRandomPolicy::new(space())),
                    Box::new(ConstantModel::new(2.5)),
                    ActionEmbedding::identity(2),
                )
                .unwrap(),
            )
        }),
        // Horizon 3 with arbitrary split points: most splits land
        // mid-trajectory, so the pending step triples must survive the
        // text round-trip too.
        ("seqdr", || {
            Box::new(
                OnlineSeqDr::new(space(), policy(), Box::new(ConstantModel::new(2.5)), 3)
                    .unwrap(),
            )
        }),
    ]
}

/// Pushes `recs`, ignoring per-record rejections (none are expected
/// here, but the contract only promises rejected pushes change nothing).
fn push_all(est: &mut dyn OnlineEstimator, recs: &[TraceRecord]) {
    for rec in recs {
        est.push(rec).expect("palette records are all ingestible");
    }
}

/// Bitwise equality of two estimates (value, n, and every diagnostic).
fn estimates_identical(a: &dyn OnlineEstimator, b: &dyn OnlineEstimator) -> Result<(), String> {
    let (ea, eb) = match (a.estimate(), b.estimate()) {
        (Ok(ea), Ok(eb)) => (ea, eb),
        (Err(ea), Err(eb)) => {
            return if format!("{ea}") == format!("{eb}") {
                Ok(())
            } else {
                Err(format!("error mismatch: {ea} vs {eb}"))
            }
        }
        (ea, eb) => return Err(format!("Ok/Err mismatch: {ea:?} vs {eb:?}")),
    };
    if ea.value.to_bits() != eb.value.to_bits() {
        return Err(format!("value {:?} vs {:?}", ea.value, eb.value));
    }
    if ea.n != eb.n {
        return Err(format!("n {} vs {}", ea.n, eb.n));
    }
    let (ha, hb) = (a.health_metrics(), b.health_metrics());
    if ha.len() != hb.len() {
        return Err(format!("health arity {} vs {}", ha.len(), hb.len()));
    }
    for ((ka, va), (kb, vb)) in ha.iter().zip(&hb) {
        if ka != kb || va.to_bits() != vb.to_bits() {
            return Err(format!("health {ka}={va:?} vs {kb}={vb:?}"));
        }
    }
    Ok(())
}

prop! {
    /// THE round-trip property, over the whole menu at once: save at an
    /// arbitrary split point, serialize through JSON *text*, load into a
    /// fresh twin, finish the stream on both — bit-identical estimates,
    /// health, and re-saved state.
    fn state_survives_a_text_roundtrip_at_any_split(
        seed in 0u64..1_000_000,
        n in 1usize..60,
        split_frac in 0usize..61,
    ) {
        let recs = edge_records(n, seed);
        let split = split_frac * n / 61;
        for (name, fresh) in menu() {
            let mut unbroken = fresh();
            push_all(unbroken.as_mut(), &recs[..split]);

            // Through text: exactly what a snapshot file stores.
            let text = unbroken.state_save().to_string();
            let state = Json::parse(&text).expect("state JSON parses");
            let mut restored = fresh();
            if let Err(e) = restored.state_load(&state) {
                return ddn_testkit::TestResult::fail(format!(
                    "{name}: load of own saved state failed: {e}"
                ));
            }

            push_all(unbroken.as_mut(), &recs[split..]);
            push_all(restored.as_mut(), &recs[split..]);

            if let Err(e) = estimates_identical(unbroken.as_ref(), restored.as_ref()) {
                return ddn_testkit::TestResult::fail(format!(
                    "{name} diverged after split {split}/{n}: {e}"
                ));
            }
            prop_assert_eq!(unbroken.len(), restored.len());
            // The strongest form: the states themselves re-serialize to
            // identical bytes, so a second crash recovers identically too.
            prop_assert!(
                unbroken.state_save().to_string() == restored.state_save().to_string(),
                "{} re-saved state diverged after split {}/{}",
                name, split, n
            );
        }
    }

    /// The windowed wrapper holds the hardest state — the record ring
    /// itself plus the eviction count. Same contract: split anywhere
    /// (including mid-eviction), round-trip through text, finish the
    /// stream, and the estimate and re-saved state are bit-identical.
    fn sliding_window_state_survives_a_text_roundtrip(
        seed in 0u64..1_000_000,
        n in 1usize..60,
        split_frac in 0usize..61,
        capacity in 1usize..12,
    ) {
        let recs = edge_records(n, seed);
        let split = split_frac * n / 61;
        let mut unbroken =
            SlidingWindow::new(OnlineIps::new(space(), policy()).unwrap(), capacity);
        for rec in &recs[..split] {
            unbroken.push(rec);
        }
        let text = unbroken.state_save().to_string();
        let state = Json::parse(&text).expect("state JSON parses");
        let mut restored =
            SlidingWindow::new(OnlineIps::new(space(), policy()).unwrap(), capacity);
        if let Err(e) = restored.state_load(&state) {
            return ddn_testkit::TestResult::fail(format!("window load failed: {e}"));
        }
        for rec in &recs[split..] {
            unbroken.push(rec);
            restored.push(rec);
        }
        prop_assert_eq!(unbroken.len(), restored.len());
        prop_assert_eq!(unbroken.evicted(), restored.evicted());
        match (unbroken.estimate(), restored.estimate()) {
            (Ok(a), Ok(b)) => prop_assert!(
                a.value.to_bits() == b.value.to_bits() && a.n == b.n,
                "window estimate diverged: {:?} vs {:?}", a.value, b.value
            ),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{}", a), format!("{}", b)),
            (a, b) => return ddn_testkit::TestResult::fail(format!(
                "window Ok/Err mismatch: {a:?} vs {b:?}"
            )),
        }
        prop_assert!(
            unbroken.state_save().to_string() == restored.state_save().to_string(),
            "window re-saved state diverged"
        );
    }

    /// A state saved by one estimator kind must be refused by every
    /// other, leaving the refusing estimator's state untouched.
    fn foreign_state_is_refused_without_corruption(
        seed in 0u64..1_000_000,
        n in 1usize..30,
    ) {
        let recs = edge_records(n, seed);
        let m = menu();
        for (i, (name_a, fresh_a)) in m.iter().enumerate() {
            let mut donor = fresh_a();
            push_all(donor.as_mut(), &recs);
            let foreign = donor.state_save();
            let (name_b, fresh_b) = &m[(i + 1) % m.len()];
            let mut victim = fresh_b();
            push_all(victim.as_mut(), &recs[..n / 2]);
            let before = victim.state_save().to_string();
            prop_assert!(
                victim.state_load(&foreign).is_err(),
                "{} accepted state saved by {}", name_b, name_a
            );
            prop_assert!(
                victim.state_save().to_string() == before,
                "{} state changed by a refused load", name_b
            );
        }
    }
}

#[test]
fn negative_zero_sum_identity_survives_the_roundtrip() {
    // Before any record, IPS's contribution sum is -0.0 (the empty-sum
    // identity): fold in +0.0-weighted contributions and the sign of the
    // running sum still matters to downstream bit-identity. Save at the
    // pristine point and after a zero-weight record; both must restore
    // exactly.
    let c = Context::build(&schema()).set_cat("g", 0).finish();
    // Decision "a" (index 0) has probability 0 under the constant-"b"
    // policy: weight 0, contribution +0.0 — the sum stays -0.0 + 0.0 = 0.0.
    let zero_weight = TraceRecord::new(c, Decision::from_index(0), 5.0).with_propensity(0.5);

    let mut pristine = OnlineIps::new(space(), policy()).unwrap();
    let saved = pristine.state_save();
    let mut restored = OnlineIps::new(space(), policy()).unwrap();
    restored.state_load(&saved).unwrap();
    assert_eq!(
        pristine.state_save().to_string(),
        restored.state_save().to_string()
    );

    pristine.push(&zero_weight).unwrap();
    let mut after = OnlineIps::new(space(), policy()).unwrap();
    after.state_load(&pristine.state_save()).unwrap();
    assert_eq!(
        pristine.estimate().unwrap().value.to_bits(),
        after.estimate().unwrap().value.to_bits()
    );
    assert_eq!(
        pristine.state_save().to_string(),
        after.state_save().to_string()
    );
}

#[test]
fn window_capacity_mismatch_is_refused() {
    // A windowed state carries as many records as its capacity allowed;
    // loading it into a smaller window would silently drop records, so
    // it must error instead.
    let recs = edge_records(12, 99);
    let mut big = SlidingWindow::new(OnlineIps::new(space(), policy()).unwrap(), 10);
    for rec in &recs {
        big.push(rec);
    }
    let state = big.state_save();
    let mut small = SlidingWindow::new(OnlineIps::new(space(), policy()).unwrap(), 4);
    match small.state_load(&state) {
        Err(EstimatorError::State(msg)) => {
            assert!(msg.contains("capacity"), "unhelpful message: {msg}")
        }
        other => panic!("expected a capacity refusal, got {other:?}"),
    }
    assert_eq!(small.len(), 0, "refused load must not install records");
}
