//! Every evaluator in this crate must emit at least one telemetry health
//! metric when a collector is installed — the acceptance bar for the
//! observability layer. Each test collects one estimate and asserts the
//! estimator's signature metrics landed, including the estimator-specific
//! extras (clip rate, acceptance rate, coverage, segment counts).

use ddn_estimators::{
    ClippedIps, CouplingDetector, CrossFitDr, DirectMethod, DoublyRobust, Estimator,
    ExperimentRunner, Ips, MatchingEstimator, ReplayEvaluator, SelfNormalizedIps, StateAwareDr,
    SwitchDr,
};
use ddn_estimators::state_aware::MatchOnly;
use ddn_models::{ConstantModel, TabularMeanModel};
use ddn_policy::{LookupPolicy, StationaryAsHistory, UniformRandomPolicy};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_telemetry::{collect, Collector, TelemetrySnapshot};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, StateTag, Trace, TraceRecord};

fn trace(n: usize, seed: u64) -> Trace {
    let s = ContextSchema::builder().categorical("g", 2).build();
    let mut rng = Xoshiro256::seed_from(seed);
    let recs = (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let d = rng.index(2);
            let c = Context::build(&s).set_cat("g", g).finish();
            TraceRecord::new(c, Decision::from_index(d), 1.0 + g as f64 + 3.0 * d as f64)
                .with_propensity(0.5)
                .with_state(if g == 0 {
                    StateTag::LOW_LOAD
                } else {
                    StateTag::HIGH_LOAD
                })
        })
        .collect();
    Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap()
}

fn snapshot_of(f: impl FnOnce()) -> TelemetrySnapshot {
    let ((), c): ((), Collector) = collect(f);
    TelemetrySnapshot::from_runs(&[c])
}

#[test]
fn dm_ips_snips_emit_weight_health() {
    let t = trace(200, 1);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    let snap = snapshot_of(|| {
        DirectMethod::new(ConstantModel::new(2.0))
            .estimate(&t, &newp)
            .unwrap();
        Ips::new().estimate(&t, &newp).unwrap();
        SelfNormalizedIps::new().estimate(&t, &newp).unwrap();
    });
    for name in ["DM", "IPS", "SNIPS"] {
        let ess = snap.health_metric(name, "ess").unwrap();
        assert!(ess.mean() > 0.0, "{name} ess {}", ess.mean());
        assert!(snap.health_metric(name, "max_weight").is_some(), "{name}");
    }
    // DM weights everything uniformly: ESS equals n.
    assert_eq!(snap.health_metric("DM", "ess").unwrap().mean(), 200.0);
}

#[test]
fn clipped_ips_reports_clip_rate_from_raw_weights() {
    let t = trace(200, 2);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    // Deterministic target over 0.5-propensity logging: matching records
    // carry raw weight 2; cap at 1.5 so every match counts as clipped.
    let snap = snapshot_of(|| {
        ClippedIps::new(1.5).estimate(&t, &newp).unwrap();
    });
    let clip = snap.health_metric("ClippedIPS", "clip_rate").unwrap().mean();
    assert!(
        (0.3..0.7).contains(&clip),
        "about half the records match and exceed the cap, got {clip}"
    );
    // Diagnostics reflect the *clipped* weights.
    assert_eq!(
        snap.health_metric("ClippedIPS", "max_weight").unwrap().mean(),
        1.5
    );
}

#[test]
fn dr_family_reports_residuals_and_switch_rate() {
    let t = trace(200, 3);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    let snap = snapshot_of(|| {
        DoublyRobust::new(ConstantModel::new(2.0))
            .estimate(&t, &newp)
            .unwrap();
        SwitchDr::new(ConstantModel::new(2.0), 1.0)
            .estimate(&t, &newp)
            .unwrap();
        CrossFitDr::new(4, |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0))
            .estimate(&t, &newp)
            .unwrap();
    });
    assert!(snap.health_metric("DR", "mean_abs_residual").unwrap().mean() > 0.0);
    // tau = 1.0 < weight 2: every matching record switches to DM.
    let switch_rate = snap.health_metric("SwitchDR", "clip_rate").unwrap().mean();
    assert!((0.3..0.7).contains(&switch_rate), "{switch_rate}");
    assert_eq!(snap.health_metric("CrossFitDR", "folds").unwrap().mean(), 4.0);
    assert!(snap.health_metric("CrossFitDR", "ess").is_some());
}

#[test]
fn replay_reports_acceptance_rate() {
    let t = trace(400, 4);
    let old = UniformRandomPolicy::new(t.space().clone());
    let mut newp = StationaryAsHistory::new(LookupPolicy::constant(t.space().clone(), 1));
    let mut rng = Xoshiro256::seed_from(9);
    let snap = snapshot_of(|| {
        ReplayEvaluator::new(ConstantModel::zero())
            .evaluate(&t, &old, &mut newp, &mut rng)
            .unwrap();
    });
    let acc = snap.health_metric("Replay", "acceptance_rate").unwrap().mean();
    assert!((0.3..0.7).contains(&acc), "deterministic target ≈ 0.5, got {acc}");
    let accepted = snap.health_metric("Replay", "accepted").unwrap().mean();
    let rejected = snap.health_metric("Replay", "rejected").unwrap().mean();
    assert_eq!(accepted + rejected, 400.0);
}

#[test]
fn matching_and_state_aware_report_coverage() {
    let t = trace(400, 5);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    let snap = snapshot_of(|| {
        MatchingEstimator::new().estimate(&t, &newp).unwrap();
        StateAwareDr::new(ConstantModel::zero(), MatchOnly, StateTag::HIGH_LOAD)
            .estimate(&t, &newp)
            .unwrap();
    });
    let cfa_cov = snap.health_metric("CFA", "coverage").unwrap().mean();
    assert!((0.3..0.7).contains(&cfa_cov), "{cfa_cov}");
    let sa_cov = snap.health_metric("StateAwareDR", "coverage").unwrap().mean();
    assert!((0.3..0.7).contains(&sa_cov), "{sa_cov}");
}

#[test]
fn coupling_detector_reports_segments() {
    let t = trace(240, 6);
    // Proxy with a clear level shift halfway.
    let proxy: Vec<f64> = (0..240)
        .map(|i| if i < 120 { 1.0 } else { 3.0 })
        .collect();
    let snap = snapshot_of(|| {
        CouplingDetector::new(20).analyze(&t, &proxy);
    });
    let segs = snap.health_metric("CouplingDetector", "segments").unwrap().mean();
    assert_eq!(segs, 2.0, "level shift must split into two regimes");
    assert_eq!(
        snap.health_metric("CouplingDetector", "coupled").unwrap().mean(),
        1.0
    );
}

#[test]
fn estimators_emit_nothing_without_a_collector() {
    // Emissions are scoped: running outside collect() records nowhere and
    // must not disturb a later collected run.
    let t = trace(100, 7);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    Ips::new().estimate(&t, &newp).unwrap();
    let snap = snapshot_of(|| {
        DoublyRobust::new(ConstantModel::zero())
            .estimate(&t, &newp)
            .unwrap();
    });
    assert!(snap.health_metric("IPS", "ess").is_none());
    assert!(snap.health_metric("DR", "ess").is_some());
}

#[test]
fn instrumented_runner_wraps_runs_with_spans() {
    let t = trace(100, 8);
    let newp = LookupPolicy::constant(t.space().clone(), 1);
    let runner = ExperimentRunner::new(3, 11);
    let (table, snap) = runner.run_instrumented(|_seed| {
        let v = Ips::new().estimate(&t, &newp).unwrap().value;
        (4.0, vec![("IPS".to_string(), v)])
    });
    assert_eq!(table.get("IPS").unwrap().runs, 3);
    assert_eq!(snap.runs(), 3);
    assert_eq!(snap.health_metric("IPS", "ess").unwrap().count, 3);
    let json = snap.to_json().to_string();
    assert!(json.contains("\"run\""), "per-run span missing: {json}");
    assert!(json.contains("\"experiment\""), "experiment timing missing");
}
