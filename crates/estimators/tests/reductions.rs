//! Reduction properties for the estimator-menu extensions: each new
//! family must *contain* its incumbent as a degenerate configuration,
//! bit for bit. These are the algebraic identities that justify calling
//! the extensions "generalizations" rather than new estimators:
//!
//! - `SeqDr` at horizon 1 **is** `DoublyRobust` — the per-decision
//!   recursion with a single step has no tail to correct;
//! - `MarginalizedDr` under the identity embedding **is** `DoublyRobust`
//!   whenever the recorded propensities equal the logging policy's
//!   probabilities — singleton groups make the marginal masses the
//!   per-arm masses;
//! - `AdaptiveIps`/`AdaptiveDr` with constant stabilizers (`h_k = 1`)
//!   **are** `Ips`/`DoublyRobust` — the weighted average collapses to
//!   the plain mean.
//!
//! Scenarios come from `ddn_testkit::composite_scenarios`, so a failing
//! identity shrinks to a minimal composite world (fewest records, fewest
//! groups) instead of a thousand-arm float dump. Every identity is
//! checked on both offline engines (scalar and columnar).

use ddn_estimators::{
    ActionEmbedding, AdaptiveDr, AdaptiveIps, AdaptiveWeights, BatchEstimator, DoublyRobust,
    Estimate, Estimator, EvalBatch, Ips, MarginalizedDr, SeqDr,
};
use ddn_models::FnModel;
use ddn_policy::Policy;
use ddn_testkit::{composite_scenarios, prop, prop_assert, CompositeScenario};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// A stationary policy playing a fixed distribution over the arms —
/// the natural carrier for a [`CompositeScenario`]'s logging/target
/// vectors.
struct DistPolicy {
    space: DecisionSpace,
    probs: Vec<f64>,
}

impl Policy for DistPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, _ctx: &Context, d: Decision) -> f64 {
        self.probs[d.index()]
    }
}

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 1).build()
}

fn arm_space(arms: usize) -> DecisionSpace {
    DecisionSpace::new((0..arms).map(|a| format!("arm{a}")).collect())
}

/// Materializes a composite scenario as a trace whose propensities are
/// exactly the logging distribution's per-arm masses — the precondition
/// for the marginalized identity below.
fn scenario_trace(s: &CompositeScenario) -> Trace {
    let schema = schema();
    let ctx = Context::build(&schema).set_cat("g", 0).finish();
    let records: Vec<TraceRecord> = s
        .records
        .iter()
        .map(|&(arm, reward)| {
            TraceRecord::new(ctx.clone(), Decision::from_index(arm), reward)
                .with_propensity(s.logging[arm])
        })
        .collect();
    Trace::from_records(schema, arm_space(s.arms()), records).expect("scenario trace")
}

fn target_policy(s: &CompositeScenario) -> DistPolicy {
    DistPolicy {
        space: arm_space(s.arms()),
        probs: s.target.clone(),
    }
}

fn logging_policy(s: &CompositeScenario) -> Box<dyn Policy + Send + Sync> {
    Box::new(DistPolicy {
        space: arm_space(s.arms()),
        probs: s.logging.clone(),
    })
}

/// An arm-dependent reward model, so DR residuals and DM terms genuinely
/// vary; both sides of each identity share it.
fn model() -> FnModel<fn(&Context, Decision) -> f64> {
    fn score(_c: &Context, d: Decision) -> f64 {
        0.3 * d.index() as f64 - 1.0
    }
    FnModel::new(score as fn(&Context, Decision) -> f64)
}

/// Bit-level equality of two successful estimates: value, per-record
/// contributions, and every weight diagnostic.
fn bit_identical(name: &str, a: &Estimate, b: &Estimate) -> Result<(), String> {
    if a.value.to_bits() != b.value.to_bits() {
        return Err(format!("{name}: values {} vs {} differ", a.value, b.value));
    }
    if a.per_record.len() != b.per_record.len() {
        return Err(format!(
            "{name}: {} vs {} contributions",
            a.per_record.len(),
            b.per_record.len()
        ));
    }
    for (k, (x, y)) in a.per_record.iter().zip(&b.per_record).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{name}: contribution {k}: {x} vs {y}"));
        }
    }
    let (ad, bd) = (&a.diagnostics, &b.diagnostics);
    for (field, x, y) in [
        ("mean_weight", ad.mean_weight, bd.mean_weight),
        ("max_weight", ad.max_weight, bd.max_weight),
        ("ess", ad.effective_sample_size, bd.effective_sample_size),
        (
            "zero_weight_fraction",
            ad.zero_weight_fraction,
            bd.zero_weight_fraction,
        ),
    ] {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{name}: diagnostics.{field} {x} vs {y}"));
        }
    }
    Ok(())
}

/// Runs one (general, degenerate) estimator pair through both offline
/// engines and demands bit-identity on each.
fn check_reduction(
    name: &str,
    trace: &Trace,
    policy: &DistPolicy,
    general: &dyn BatchEstimatorAndScalar,
    incumbent: &dyn BatchEstimatorAndScalar,
) -> Result<(), String> {
    let g = general
        .scalar(trace, policy)
        .map_err(|e| format!("{name}: general scalar failed: {e:?}"))?;
    let i = incumbent
        .scalar(trace, policy)
        .map_err(|e| format!("{name}: incumbent scalar failed: {e:?}"))?;
    bit_identical(&format!("{name} (scalar)"), &g, &i)?;

    let batch = EvalBatch::with_model(trace, policy, &model())
        .map_err(|e| format!("{name}: batch build failed: {e:?}"))?;
    let g = general
        .columnar(trace, &batch)
        .map_err(|e| format!("{name}: general columnar failed: {e:?}"))?;
    let i = incumbent
        .columnar(trace, &batch)
        .map_err(|e| format!("{name}: incumbent columnar failed: {e:?}"))?;
    bit_identical(&format!("{name} (columnar)"), &g, &i)
}

/// Object-safe view over the two offline engines of one estimator.
trait BatchEstimatorAndScalar {
    fn scalar(
        &self,
        trace: &Trace,
        policy: &dyn Policy,
    ) -> Result<Estimate, ddn_estimators::EstimatorError>;
    fn columnar(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, ddn_estimators::EstimatorError>;
}

impl<E: Estimator + BatchEstimator> BatchEstimatorAndScalar for E {
    fn scalar(
        &self,
        trace: &Trace,
        policy: &dyn Policy,
    ) -> Result<Estimate, ddn_estimators::EstimatorError> {
        self.estimate(trace, policy)
    }
    fn columnar(
        &self,
        trace: &Trace,
        batch: &EvalBatch,
    ) -> Result<Estimate, ddn_estimators::EstimatorError> {
        self.estimate_batch(trace, batch)
    }
}

prop! {
    // ---- SeqDr at horizon 1 ≡ DoublyRobust -----------------------------

    fn seqdr_horizon_one_is_doubly_robust(s in composite_scenarios(2..24, 1..50)) {
        let trace = scenario_trace(&s);
        let policy = target_policy(&s);
        if let Err(msg) = check_reduction(
            "SeqDR(h=1) ≡ DR",
            &trace,
            &policy,
            &SeqDr::new(model(), 1),
            &DoublyRobust::new(model()),
        ) {
            prop_assert!(false, "{}", msg);
        }
    }

    // ---- MarginalizedDr under the identity embedding ≡ DoublyRobust ----

    fn identity_embedding_is_doubly_robust(s in composite_scenarios(2..24, 1..50)) {
        // The recorded propensities equal μ(a) by construction, so the
        // per-arm marginal denominator is the propensity and the identity
        // embedding's singleton sums reproduce DR's weights exactly.
        let trace = scenario_trace(&s);
        let policy = target_policy(&s);
        if let Err(msg) = check_reduction(
            "MDR(identity) ≡ DR",
            &trace,
            &policy,
            &MarginalizedDr::new(model(), ActionEmbedding::identity(s.arms()), logging_policy(&s)),
            &DoublyRobust::new(model()),
        ) {
            prop_assert!(false, "{}", msg);
        }
    }

    // ---- Constant stabilizers ≡ the unweighted incumbents --------------

    fn constant_weights_are_plain_ips_and_dr(s in composite_scenarios(2..24, 1..50)) {
        let trace = scenario_trace(&s);
        let policy = target_policy(&s);
        if let Err(msg) = check_reduction(
            "AdaptiveIPS(const) ≡ IPS",
            &trace,
            &policy,
            &AdaptiveIps::new(AdaptiveWeights::Constant),
            &Ips::new(),
        ) {
            prop_assert!(false, "{}", msg);
        }
        if let Err(msg) = check_reduction(
            "AdaptiveDR(const) ≡ DR",
            &trace,
            &policy,
            &AdaptiveDr::new(model(), AdaptiveWeights::Constant),
            &DoublyRobust::new(model()),
        ) {
            prop_assert!(false, "{}", msg);
        }
    }

}

/// The reductions are strict: under genuinely heavy weights the
/// stabilized configuration must *diverge* from IPS, or the whole family
/// would be a silent alias of its incumbent. The stabilizer only engages
/// once the EMA of squared weights clears 1 (below that it clamps to
/// `h = 1`), so this needs a handcrafted heavy-tailed log rather than a
/// random scenario: a rare arm (propensity 0.05) that the target always
/// plays puts `w = 20`, `w² = 400` into the EMA from the first record.
#[test]
fn stabilized_weights_actually_reweight() {
    let schema = schema();
    let ctx = Context::build(&schema).set_cat("g", 0).finish();
    let records: Vec<TraceRecord> = (0..40)
        .map(|k| {
            let (arm, propensity) = if k % 4 == 0 { (0, 0.05) } else { (1, 0.95) };
            TraceRecord::new(ctx.clone(), Decision::from_index(arm), 1.0 + k as f64 * 0.1)
                .with_propensity(propensity)
        })
        .collect();
    let trace = Trace::from_records(schema, arm_space(2), records).expect("heavy-tailed trace");
    let policy = DistPolicy {
        space: arm_space(2),
        probs: vec![1.0, 0.0],
    };
    let adaptive = AdaptiveIps::new(AdaptiveWeights::Stabilized)
        .estimate(&trace, &policy)
        .unwrap();
    let ips = Ips::new().estimate(&trace, &policy).unwrap();
    assert_ne!(
        adaptive.value.to_bits(),
        ips.value.to_bits(),
        "stabilized weighting never diverged from IPS on a heavy-tailed log"
    );
}
