//! # ddn-policy — decision policies
//!
//! A *policy* (paper §2.1) maps client-contexts to a probability
//! distribution over decisions: `μ(d | c)` with `Σ_d μ(d|c) = 1`. This crate
//! defines the two policy abstractions the estimators consume:
//!
//! - [`Policy`] — **stationary** (history-agnostic) policies: the decision
//!   distribution depends only on the current client. This is what the
//!   basic DM/IPS/DR estimators of paper §3 evaluate.
//! - [`HistoryPolicy`] — **non-stationary** policies whose decision also
//!   depends on the history `h_k = {(c_i, d_i, r_i)}_{i<k}` (paper §4.1
//!   "Stationarity of policies"). Most real networking policies — ABR
//!   controllers, load balancers — are of this kind; the replay evaluator
//!   in `ddn-estimators` handles them.
//!
//! Implementations cover the spectrum the paper discusses: uniform random
//! logging ([`UniformRandomPolicy`], what CFA's traces used), deterministic
//! production policies ([`GreedyPolicy`], [`LookupPolicy`]), and the
//! ε-randomized production policies the paper advocates operators deploy
//! ([`EpsilonSmoothedPolicy`], §4.1: "introduce randomness where impact on
//! overall performance is small").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grouped;
pub mod history;
pub mod linucb;
pub mod stationary;

pub use grouped::GroupedBandit;
pub use history::{HistoryPolicy, StationaryAsHistory};
pub use linucb::LinUcb;
pub use stationary::{
    EpsilonGreedyPolicy, EpsilonSmoothedPolicy, GreedyPolicy, LookupPolicy, MixturePolicy, Policy,
    SoftmaxPolicy, UniformRandomPolicy,
};
