//! Non-stationary (history-based) policies — paper §4.1 "Stationarity of
//! policies".
//!
//! Most networking policies adapt: an ABR controller's bitrate choice
//! depends on recently observed throughput; a load balancer's assignment
//! depends on which servers it already loaded. Formally the decision on
//! client `c_k` depends on the history `h_k = {(c_i, d_i, r_i)}_{i<k}`.
//!
//! [`HistoryPolicy`] models this as a *stateful sequential* interface: the
//! evaluator drives the policy client by client, feeding back observed
//! outcomes via [`HistoryPolicy::observe`]. The §4.2 replay evaluator in
//! `ddn-estimators` only feeds back tuples where the replayed decision
//! matched the logged one, exactly as the paper's algorithm prescribes
//! (its `g_k` history).

use crate::stationary::Policy;
use ddn_stats::rng::Rng;
use ddn_trace::{Context, Decision, DecisionSpace};

/// A non-stationary policy: decision distribution depends on the observed
/// history, which the caller advances via [`HistoryPolicy::observe`].
pub trait HistoryPolicy {
    /// The decision space.
    fn space(&self) -> &DecisionSpace;

    /// Clears the internal history, returning the policy to its initial
    /// state (start of a fresh session/replay).
    fn reset(&mut self);

    /// Probability vector over decisions for `ctx` *given the current
    /// history*. Must be non-negative and sum to 1.
    fn probabilities(&self, ctx: &Context) -> Vec<f64>;

    /// Informs the policy of an outcome tuple appended to its history.
    fn observe(&mut self, ctx: &Context, d: Decision, reward: f64);

    /// Samples a decision for `ctx` from the current conditional
    /// distribution, returning the decision and its probability.
    fn sample_with_prob(&self, ctx: &Context, rng: &mut dyn Rng) -> (Decision, f64) {
        let probs = self.probabilities(ctx);
        debug_assert!(
            (probs.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "history policy probabilities must sum to 1"
        );
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return (Decision::from_index(i), p);
            }
        }
        let i = probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("history policy assigned zero probability everywhere");
        (Decision::from_index(i), probs[i])
    }
}

/// Adapter exposing any stationary [`Policy`] through the
/// [`HistoryPolicy`] interface (it simply ignores the history).
///
/// The paper notes (§4.2) that the replay-based evaluator "is identical to
/// the basic DR under the assumption of stationary policies"; this adapter
/// is what the property test for that claim uses.
pub struct StationaryAsHistory<P: Policy> {
    inner: P,
}

impl<P: Policy> StationaryAsHistory<P> {
    /// Wraps a stationary policy.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> HistoryPolicy for StationaryAsHistory<P> {
    fn space(&self) -> &DecisionSpace {
        self.inner.space()
    }

    fn reset(&mut self) {}

    fn probabilities(&self, ctx: &Context) -> Vec<f64> {
        self.inner.probabilities(ctx)
    }

    fn observe(&mut self, _ctx: &Context, _d: Decision, _reward: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::UniformRandomPolicy;
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::ContextSchema;

    fn ctx() -> Context {
        let s = ContextSchema::builder().numeric("x").build();
        Context::build(&s).set_numeric("x", 0.0).finish()
    }

    /// A toy adaptive policy: starts uniform, then always repeats the last
    /// decision whose reward exceeded a threshold.
    struct StickyPolicy {
        space: DecisionSpace,
        sticky: Option<usize>,
    }

    impl HistoryPolicy for StickyPolicy {
        fn space(&self) -> &DecisionSpace {
            &self.space
        }
        fn reset(&mut self) {
            self.sticky = None;
        }
        fn probabilities(&self, _ctx: &Context) -> Vec<f64> {
            match self.sticky {
                Some(i) => {
                    let mut p = vec![0.0; self.space.len()];
                    p[i] = 1.0;
                    p
                }
                None => vec![1.0 / self.space.len() as f64; self.space.len()],
            }
        }
        fn observe(&mut self, _ctx: &Context, d: Decision, reward: f64) {
            if reward > 0.5 {
                self.sticky = Some(d.index());
            }
        }
    }

    #[test]
    fn stationary_adapter_ignores_history() {
        let mut p =
            StationaryAsHistory::new(UniformRandomPolicy::new(DecisionSpace::of(&["a", "b"])));
        let c = ctx();
        let before = p.probabilities(&c);
        p.observe(&c, Decision::from_index(0), 100.0);
        p.reset();
        assert_eq!(p.probabilities(&c), before);
    }

    #[test]
    fn history_changes_distribution() {
        let mut p = StickyPolicy {
            space: DecisionSpace::of(&["a", "b"]),
            sticky: None,
        };
        let c = ctx();
        assert_eq!(p.probabilities(&c), vec![0.5, 0.5]);
        p.observe(&c, Decision::from_index(1), 0.9);
        assert_eq!(p.probabilities(&c), vec![0.0, 1.0]);
        p.reset();
        assert_eq!(p.probabilities(&c), vec![0.5, 0.5]);
    }

    #[test]
    fn sample_with_prob_consistent() {
        let p = StickyPolicy {
            space: DecisionSpace::of(&["a", "b"]),
            sticky: Some(0),
        };
        let mut g = Xoshiro256::seed_from(5);
        let (d, q) = p.sample_with_prob(&ctx(), &mut g);
        assert_eq!(d.index(), 0);
        assert_eq!(q, 1.0);
    }
}
