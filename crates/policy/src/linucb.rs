//! LinUCB: a linear contextual bandit as a [`HistoryPolicy`].
//!
//! The paper's §4.1 observes that real networking policies are
//! non-stationary because "the decision maker adapts its action-selection
//! policy over time based on the observed history" — and its replay
//! reference (Li et al., paper ref \[27\]) is literally the LinUCB news
//! -recommendation paper. This module provides that policy: per decision a
//! ridge regression `θ_d = A_d⁻¹ b_d` over context features, with an
//! upper-confidence exploration bonus `α·√(xᵀA_d⁻¹x)`.
//!
//! Contexts are featurized by [`ddn_trace::Context::dense`] plus an
//! intercept; purely categorical schemas work (codes become coordinates)
//! but numeric/one-hot features are where the linear model shines.

use crate::history::HistoryPolicy;
use ddn_stats::linalg::Matrix;
use ddn_trace::{Context, Decision, DecisionSpace};

/// Per-decision ridge state.
#[derive(Debug, Clone)]
struct Arm {
    /// Gram matrix `A = λI + Σ x xᵀ`.
    a: Matrix,
    /// Response vector `b = Σ x r`.
    b: Vec<f64>,
}

impl Arm {
    fn new(dim: usize, lambda: f64) -> Self {
        let mut a = Matrix::zeros(dim, dim);
        a.add_diagonal(lambda);
        Self {
            a,
            b: vec![0.0; dim],
        }
    }

    fn update(&mut self, x: &[f64], reward: f64) {
        for i in 0..x.len() {
            for j in 0..x.len() {
                self.a[(i, j)] += x[i] * x[j];
            }
            self.b[i] += x[i] * reward;
        }
    }

    /// UCB score `θᵀx + α·√(xᵀA⁻¹x)`.
    fn score(&self, x: &[f64], alpha: f64) -> f64 {
        let theta = self
            .a
            .cholesky_solve(&self.b)
            .expect("lambda I keeps A positive definite");
        let a_inv_x = self
            .a
            .cholesky_solve(x)
            .expect("lambda I keeps A positive definite");
        let mean: f64 = theta.iter().zip(x).map(|(t, xi)| t * xi).sum();
        let var: f64 = x.iter().zip(&a_inv_x).map(|(xi, yi)| xi * yi).sum();
        mean + alpha * var.max(0.0).sqrt()
    }
}

/// Linear UCB contextual bandit (deterministic argmax over UCB scores).
pub struct LinUcb {
    space: DecisionSpace,
    arms: Vec<Arm>,
    alpha: f64,
    lambda: f64,
    dim: usize,
}

impl LinUcb {
    /// Creates a LinUCB policy for contexts with `feature_dim` features.
    /// `alpha` is the exploration strength, `lambda` the ridge prior.
    ///
    /// # Panics
    /// Panics unless `alpha >= 0` and `lambda > 0`.
    pub fn new(space: DecisionSpace, feature_dim: usize, alpha: f64, lambda: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(lambda > 0.0, "lambda must be positive");
        let dim = feature_dim + 1; // intercept
        let arms = (0..space.len()).map(|_| Arm::new(dim, lambda)).collect();
        Self {
            space,
            arms,
            alpha,
            lambda,
            dim,
        }
    }

    fn featurize(&self, ctx: &Context) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.dim);
        x.push(1.0);
        x.extend(ctx.dense());
        assert_eq!(x.len(), self.dim, "context dimension mismatch");
        x
    }

    /// The current UCB scores for every decision.
    pub fn scores(&self, ctx: &Context) -> Vec<f64> {
        let x = self.featurize(ctx);
        self.arms
            .iter()
            .map(|arm| arm.score(&x, self.alpha))
            .collect()
    }
}

impl HistoryPolicy for LinUcb {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn reset(&mut self) {
        let lambda = self.lambda;
        let dim = self.dim;
        for arm in &mut self.arms {
            *arm = Arm::new(dim, lambda);
        }
    }

    fn probabilities(&self, ctx: &Context) -> Vec<f64> {
        let scores = self.scores(ctx);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite UCB scores"))
            .map(|(i, _)| i)
            .expect("non-empty decision space");
        let mut p = vec![0.0; self.space.len()];
        p[best] = 1.0;
        p
    }

    fn observe(&mut self, ctx: &Context, d: Decision, reward: f64) {
        let x = self.featurize(ctx);
        self.arms[d.index()].update(&x, reward);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::ContextSchema;

    fn schema() -> ContextSchema {
        ContextSchema::builder().numeric("x").build()
    }

    fn ctx(x: f64) -> Context {
        Context::build(&schema()).set_numeric("x", x).finish()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    /// Truth: decision 0 pays `1 + x`, decision 1 pays `3 − x`
    /// (crossover at x = 1).
    fn truth(x: f64, d: usize) -> f64 {
        if d == 0 {
            1.0 + x
        } else {
            3.0 - x
        }
    }

    #[test]
    fn learns_the_crossover() {
        let mut bandit = LinUcb::new(space(), 1, 0.5, 1.0);
        let mut rng = Xoshiro256::seed_from(1);
        // Online training loop.
        for _ in 0..2_000 {
            let x = rng.range_f64(0.0, 2.0);
            let c = ctx(x);
            let (d, _) = bandit.sample_with_prob(&c, &mut rng);
            let r = truth(x, d.index()) + 0.1 * (rng.next_f64() - 0.5);
            bandit.observe(&c, d, r);
        }
        // After training, exploit correctly on both sides of the crossover.
        let p_low = bandit.probabilities(&ctx(0.2));
        let p_high = bandit.probabilities(&ctx(1.8));
        assert_eq!(p_low[1], 1.0, "x=0.2: decision 1 pays 2.8 vs 1.2");
        assert_eq!(p_high[0], 1.0, "x=1.8: decision 0 pays 2.8 vs 1.2");
    }

    #[test]
    fn ucb_bonus_prefers_unexplored_arms() {
        let mut bandit = LinUcb::new(space(), 1, 2.0, 1.0);
        let c = ctx(1.0);
        // Feed arm 0 heavily with mediocre rewards; arm 1 stays unexplored
        // and keeps a fat confidence bonus.
        for _ in 0..50 {
            bandit.observe(&c, Decision::from_index(0), 1.0);
        }
        let scores = bandit.scores(&c);
        assert!(
            scores[1] > scores[0],
            "unexplored arm should carry the larger UCB: {scores:?}"
        );
    }

    #[test]
    fn zero_alpha_is_pure_exploitation() {
        let mut bandit = LinUcb::new(space(), 1, 0.0, 1.0);
        let c = ctx(1.0);
        bandit.observe(&c, Decision::from_index(0), 5.0);
        bandit.observe(&c, Decision::from_index(1), 1.0);
        assert_eq!(bandit.probabilities(&c)[0], 1.0);
    }

    #[test]
    fn reset_restores_the_prior() {
        let mut bandit = LinUcb::new(space(), 1, 0.5, 1.0);
        let c = ctx(0.5);
        let initial = bandit.scores(&c);
        for _ in 0..20 {
            bandit.observe(&c, Decision::from_index(1), 10.0);
        }
        assert_ne!(bandit.scores(&c), initial);
        bandit.reset();
        assert_eq!(bandit.scores(&c), initial);
    }

    #[test]
    fn probabilities_are_deterministic_distribution() {
        let bandit = LinUcb::new(space(), 1, 1.0, 1.0);
        let p = bandit.probabilities(&ctx(0.7));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.iter().filter(|&&q| q == 1.0).count(), 1);
    }
}
