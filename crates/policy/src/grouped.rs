//! Group-based exploration–exploitation, after Pytheas (paper ref \[18\],
//! by the same authors as the reproduced paper).
//!
//! Pytheas's observation: network sessions cluster into *groups* with
//! similar quality behaviour (same city + connection type, say), so
//! exploration/exploitation should run **per group** rather than globally
//! (one global bandit averages away context) or per exact context (which
//! starves). [`GroupedBandit`] implements that middle layer: a grouping
//! function maps contexts to group keys, and each group runs its own
//! ε-greedy bandit over the decision space.
//!
//! As a [`HistoryPolicy`] it slots directly into the §4.2 replay
//! evaluator — which is exactly how such a policy should be validated
//! offline before deployment.

use crate::history::HistoryPolicy;
use ddn_trace::{Context, Decision, DecisionSpace};
use std::collections::HashMap;

/// Boxed grouping function: maps a context to its group key.
pub type GroupFn = Box<dyn Fn(&Context) -> Vec<u32> + Send + Sync>;

/// Per-group running statistics.
#[derive(Debug, Clone, Default)]
struct GroupState {
    sums: Vec<f64>,
    counts: Vec<f64>,
}

impl GroupState {
    fn new(k: usize) -> Self {
        Self {
            sums: vec![0.0; k],
            counts: vec![0.0; k],
        }
    }

    fn best(&self) -> Option<usize> {
        if self.counts.contains(&0.0) {
            return None;
        }
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(s, c)| s / c)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"))
            .map(|(i, _)| i)
    }
}

/// Group-based ε-greedy bandit. The `group_by` function maps a context to
/// a group key — typically a projection onto the features that matter
/// (e.g. `|c| vec![c.cat(0), c.cat(2)]` for city × connection).
pub struct GroupedBandit {
    space: DecisionSpace,
    epsilon: f64,
    group_by: GroupFn,
    groups: HashMap<Vec<u32>, GroupState>,
}

impl GroupedBandit {
    /// Creates a grouped bandit.
    ///
    /// # Panics
    /// Panics unless `0 <= epsilon <= 1`.
    pub fn new(
        space: DecisionSpace,
        epsilon: f64,
        group_by: impl Fn(&Context) -> Vec<u32> + Send + Sync + 'static,
    ) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        Self {
            space,
            epsilon,
            group_by: Box::new(group_by),
            groups: HashMap::new(),
        }
    }

    /// Number of groups seen so far.
    pub fn groups_seen(&self) -> usize {
        self.groups.len()
    }

    /// The group key for a context.
    pub fn group_of(&self, ctx: &Context) -> Vec<u32> {
        (self.group_by)(ctx)
    }
}

impl std::fmt::Debug for GroupedBandit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupedBandit")
            .field("epsilon", &self.epsilon)
            .field("groups", &self.groups.len())
            .finish_non_exhaustive()
    }
}

impl HistoryPolicy for GroupedBandit {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn reset(&mut self) {
        self.groups.clear();
    }

    fn probabilities(&self, ctx: &Context) -> Vec<f64> {
        let k = self.space.len();
        let key = (self.group_by)(ctx);
        match self.groups.get(&key).and_then(GroupState::best) {
            None => vec![1.0 / k as f64; k],
            Some(best) => {
                let mut p = vec![self.epsilon / k as f64; k];
                p[best] += 1.0 - self.epsilon;
                p
            }
        }
    }

    fn observe(&mut self, ctx: &Context, d: Decision, reward: f64) {
        let key = (self.group_by)(ctx);
        let k = self.space.len();
        let state = self.groups.entry(key).or_insert_with(|| GroupState::new(k));
        state.sums[d.index()] += reward;
        state.counts[d.index()] += 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::ContextSchema;

    fn schema() -> ContextSchema {
        ContextSchema::builder()
            .categorical("city", 2)
            .categorical("noise", 4)
            .build()
    }

    fn ctx(city: u32, noise: u32) -> Context {
        Context::build(&schema())
            .set_cat("city", city)
            .set_cat("noise", noise)
            .finish()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    /// Truth: city 0 prefers decision 1, city 1 prefers decision 0; the
    /// noise feature is irrelevant.
    fn truth(city: u32, d: usize) -> f64 {
        if (city as usize) != d {
            3.0
        } else {
            1.0
        }
    }

    fn trained(epsilon: f64, seed: u64, steps: usize) -> GroupedBandit {
        let mut bandit = GroupedBandit::new(space(), epsilon, |c: &Context| vec![c.cat(0)]);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..steps {
            let c = ctx(rng.index(2) as u32, rng.index(4) as u32);
            let (d, _) = bandit.sample_with_prob(&c, &mut rng);
            let r = truth(c.cat(0), d.index()) + 0.2 * (rng.next_f64() - 0.5);
            bandit.observe(&c, d, r);
        }
        bandit
    }

    #[test]
    fn learns_per_group_optima() {
        let bandit = trained(0.1, 1, 600);
        // Groups are cities, not full contexts.
        assert_eq!(bandit.groups_seen(), 2);
        let p0 = bandit.probabilities(&ctx(0, 3));
        let p1 = bandit.probabilities(&ctx(1, 0));
        assert!(p0[1] > 0.9, "city 0 should exploit decision 1: {p0:?}");
        assert!(p1[0] > 0.9, "city 1 should exploit decision 0: {p1:?}");
    }

    #[test]
    fn grouping_pools_across_irrelevant_features() {
        // A per-exact-context bandit would have 8 cells of ~75 samples; the
        // grouped bandit pools to 2 cells and converges with far less.
        let bandit = trained(0.1, 2, 60);
        let p = bandit.probabilities(&ctx(0, 2));
        assert!(
            p[1] > 0.9,
            "60 observations should suffice when pooled per city: {p:?}"
        );
    }

    #[test]
    fn unseen_group_explores_uniformly() {
        let mut bandit = GroupedBandit::new(space(), 0.1, |c: &Context| vec![c.cat(0)]);
        assert_eq!(bandit.probabilities(&ctx(1, 0)), vec![0.5, 0.5]);
        bandit.observe(&ctx(0, 0), Decision::from_index(0), 1.0);
        // Only decision 0 tried in group 0: still uniform (optimism).
        assert_eq!(bandit.probabilities(&ctx(0, 0)), vec![0.5, 0.5]);
    }

    #[test]
    fn reset_clears_all_groups() {
        let mut bandit = trained(0.1, 3, 200);
        assert!(bandit.groups_seen() > 0);
        bandit.reset();
        assert_eq!(bandit.groups_seen(), 0);
        assert_eq!(bandit.probabilities(&ctx(0, 0)), vec![0.5, 0.5]);
    }

    #[test]
    fn probabilities_always_normalized() {
        let bandit = trained(0.3, 4, 100);
        for city in 0..2 {
            for noise in 0..4 {
                let p = bandit.probabilities(&ctx(city, noise));
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            }
        }
    }
}
