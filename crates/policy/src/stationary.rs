//! Stationary (history-agnostic) policies: `μ(d | c)`.

use ddn_stats::rng::Rng;
use ddn_trace::{Context, ContextKey, Decision, DecisionSpace};
use std::collections::HashMap;

/// Boxed score function used by [`GreedyPolicy`] and [`SoftmaxPolicy`].
pub type ScoreFn = Box<dyn Fn(&Context, Decision) -> f64 + Send + Sync>;

/// A stationary decision policy.
///
/// Implementors must guarantee that for every context the probabilities
/// over the decision space are non-negative and sum to 1 (within floating
/// point). The default `probabilities`/`sample` methods are derived from
/// [`Policy::prob`].
pub trait Policy {
    /// The decision space this policy selects from.
    fn space(&self) -> &DecisionSpace;

    /// The probability `μ(d | c)` of choosing decision `d` for context `c`.
    fn prob(&self, ctx: &Context, d: Decision) -> f64;

    /// The full probability vector over decisions for `ctx`.
    fn probabilities(&self, ctx: &Context) -> Vec<f64> {
        self.space().iter().map(|d| self.prob(ctx, d)).collect()
    }

    /// Samples a decision for `ctx`.
    fn sample(&self, ctx: &Context, rng: &mut dyn Rng) -> Decision {
        self.sample_with_prob(ctx, rng).0
    }

    /// Samples a decision and returns it with its probability — exactly
    /// what a logging pipeline should record as the propensity.
    fn sample_with_prob(&self, ctx: &Context, rng: &mut dyn Rng) -> (Decision, f64) {
        let probs = self.probabilities(ctx);
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return (Decision::from_index(i), p);
            }
        }
        // Floating-point slack: fall back to the last decision with
        // positive probability.
        let i = probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("policy assigned zero probability to every decision");
        (Decision::from_index(i), probs[i])
    }

    /// Whether the policy is deterministic for this context (one decision
    /// carries all the mass).
    fn is_deterministic_at(&self, ctx: &Context) -> bool {
        self.probabilities(ctx).iter().any(|&p| p >= 1.0 - 1e-12)
    }
}

/// Uniform random policy over the whole decision space — the logging
/// policy used by CFA's randomized data collection (paper §2.2.2).
#[derive(Debug, Clone)]
pub struct UniformRandomPolicy {
    space: DecisionSpace,
}

impl UniformRandomPolicy {
    /// Creates a uniform policy on `space`.
    pub fn new(space: DecisionSpace) -> Self {
        Self { space }
    }
}

impl Policy for UniformRandomPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, _ctx: &Context, d: Decision) -> f64 {
        assert!(d.index() < self.space.len(), "decision out of range");
        1.0 / self.space.len() as f64
    }
}

/// Deterministic policy defined by a score function: always picks the
/// decision with the highest score for the context (ties broken toward the
/// lower index). Models production policies that are "designed to optimize
/// performance or save cost" (paper §4.1).
pub struct GreedyPolicy {
    space: DecisionSpace,
    score: ScoreFn,
}

impl GreedyPolicy {
    /// Creates a greedy policy from a score function.
    pub fn new(
        space: DecisionSpace,
        score: impl Fn(&Context, Decision) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Self {
            space,
            score: Box::new(score),
        }
    }

    /// The argmax decision for `ctx`.
    pub fn best(&self, ctx: &Context) -> Decision {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for d in self.space.iter() {
            let s = (self.score)(ctx, d);
            assert!(!s.is_nan(), "score function returned NaN");
            if s > best_score {
                best_score = s;
                best = d.index();
            }
        }
        Decision::from_index(best)
    }
}

impl std::fmt::Debug for GreedyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GreedyPolicy")
            .field("space", &self.space)
            .finish_non_exhaustive()
    }
}

impl Policy for GreedyPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        if self.best(ctx) == d {
            1.0
        } else {
            0.0
        }
    }
}

/// Tabular deterministic policy: an explicit context → decision map with a
/// default decision for unseen contexts.
#[derive(Debug, Clone)]
pub struct LookupPolicy {
    space: DecisionSpace,
    table: HashMap<ContextKey, usize>,
    default: usize,
}

impl LookupPolicy {
    /// Creates a lookup policy with the given default decision index.
    ///
    /// # Panics
    /// Panics if `default` is out of range.
    pub fn new(space: DecisionSpace, default: usize) -> Self {
        assert!(default < space.len(), "default decision out of range");
        Self {
            space,
            table: HashMap::new(),
            default,
        }
    }

    /// A constant policy: every context maps to `decision`.
    pub fn constant(space: DecisionSpace, decision: usize) -> Self {
        Self::new(space, decision)
    }

    /// Assigns `decision` to `ctx`.
    ///
    /// # Panics
    /// Panics if `decision` is out of range.
    pub fn insert(&mut self, ctx: &Context, decision: usize) {
        assert!(decision < self.space.len(), "decision out of range");
        self.table.insert(ctx.key(), decision);
    }

    /// The decision this policy takes for `ctx`.
    pub fn decide(&self, ctx: &Context) -> Decision {
        Decision::from_index(*self.table.get(&ctx.key()).unwrap_or(&self.default))
    }
}

impl Policy for LookupPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        if self.decide(ctx) == d {
            1.0
        } else {
            0.0
        }
    }
}

/// ε-greedy: with probability `1 − ε` follow a base deterministic choice,
/// with probability `ε` pick uniformly at random.
pub struct EpsilonGreedyPolicy {
    inner: EpsilonSmoothedPolicy,
}

impl EpsilonGreedyPolicy {
    /// Wraps a greedy score function with ε exploration.
    pub fn new(
        space: DecisionSpace,
        epsilon: f64,
        score: impl Fn(&Context, Decision) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let greedy = GreedyPolicy::new(space, score);
        Self {
            inner: EpsilonSmoothedPolicy::new(Box::new(greedy), epsilon),
        }
    }
}

impl Policy for EpsilonGreedyPolicy {
    fn space(&self) -> &DecisionSpace {
        self.inner.space()
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.inner.prob(ctx, d)
    }
}

/// ε-smoothing wrapper: mixes any base policy with the uniform distribution.
///
/// `μ'(d|c) = (1 − ε) μ(d|c) + ε / |D|`.
///
/// This is the paper's §4.1 recommendation made concrete: it bounds every
/// propensity below by `ε / |D|`, capping IPS/DR importance weights at
/// `|D| / ε` while perturbing the base policy's decisions only with
/// probability ε.
pub struct EpsilonSmoothedPolicy {
    base: Box<dyn Policy + Send + Sync>,
    epsilon: f64,
}

impl EpsilonSmoothedPolicy {
    /// Wraps `base` with smoothing parameter `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 <= epsilon <= 1`.
    pub fn new(base: Box<dyn Policy + Send + Sync>, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be in [0,1], got {epsilon}"
        );
        Self { base, epsilon }
    }

    /// The smoothing parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The guaranteed lower bound on any propensity: `ε / |D|`.
    pub fn propensity_floor(&self) -> f64 {
        self.epsilon / self.space().len() as f64
    }
}

impl std::fmt::Debug for EpsilonSmoothedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpsilonSmoothedPolicy")
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Policy for EpsilonSmoothedPolicy {
    fn space(&self) -> &DecisionSpace {
        self.base.space()
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        let k = self.space().len() as f64;
        (1.0 - self.epsilon) * self.base.prob(ctx, d) + self.epsilon / k
    }
}

/// Softmax (Boltzmann) policy over a score function with temperature `tau`:
/// `μ(d|c) ∝ exp(score(c,d) / tau)`.
pub struct SoftmaxPolicy {
    space: DecisionSpace,
    score: ScoreFn,
    tau: f64,
}

impl SoftmaxPolicy {
    /// Creates a softmax policy.
    ///
    /// # Panics
    /// Panics unless `tau > 0`.
    pub fn new(
        space: DecisionSpace,
        tau: f64,
        score: impl Fn(&Context, Decision) -> f64 + Send + Sync + 'static,
    ) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "temperature must be positive, got {tau}"
        );
        Self {
            space,
            score: Box::new(score),
            tau,
        }
    }
}

impl std::fmt::Debug for SoftmaxPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftmaxPolicy")
            .field("space", &self.space)
            .field("tau", &self.tau)
            .finish_non_exhaustive()
    }
}

impl Policy for SoftmaxPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.probabilities(ctx)[d.index()]
    }

    fn probabilities(&self, ctx: &Context) -> Vec<f64> {
        let scores: Vec<f64> = self
            .space
            .iter()
            .map(|d| (self.score)(ctx, d) / self.tau)
            .collect();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }
}

/// Weighted mixture of policies: `μ(d|c) = Σ_i w_i μ_i(d|c)`.
pub struct MixturePolicy {
    components: Vec<(f64, Box<dyn Policy + Send + Sync>)>,
}

impl MixturePolicy {
    /// Creates a mixture; weights are normalized.
    ///
    /// # Panics
    /// Panics if empty, weights are invalid, or the components disagree on
    /// the decision space.
    pub fn new(components: Vec<(f64, Box<dyn Policy + Send + Sync>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w >= 0.0),
            "mixture weights must be finite and non-negative"
        );
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        assert!(total > 0.0, "mixture weights must not all be zero");
        let space = components[0].1.space().clone();
        assert!(
            components.iter().all(|(_, p)| *p.space() == space),
            "mixture components must share a decision space"
        );
        let components = components
            .into_iter()
            .map(|(w, p)| (w / total, p))
            .collect();
        Self { components }
    }
}

impl std::fmt::Debug for MixturePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixturePolicy")
            .field("components", &self.components.len())
            .finish_non_exhaustive()
    }
}

impl Policy for MixturePolicy {
    fn space(&self) -> &DecisionSpace {
        self.components[0].1.space()
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.components
            .iter()
            .map(|(w, p)| w * p.prob(ctx, d))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::ContextSchema;

    fn schema() -> ContextSchema {
        ContextSchema::builder().numeric("x").build()
    }

    fn ctx(x: f64) -> Context {
        Context::build(&schema()).set_numeric("x", x).finish()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    fn assert_normalized(p: &dyn Policy, c: &Context) {
        let probs = p.probabilities(c);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "probs {probs:?} sum to {total}");
        assert!(probs.iter().all(|&q| (0.0..=1.0 + 1e-12).contains(&q)));
    }

    #[test]
    fn uniform_probabilities() {
        let p = UniformRandomPolicy::new(space());
        let c = ctx(0.0);
        assert_normalized(&p, &c);
        assert!((p.prob(&c, Decision::from_index(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert!(!p.is_deterministic_at(&c));
    }

    #[test]
    fn uniform_sampling_frequency() {
        let p = UniformRandomPolicy::new(space());
        let c = ctx(0.0);
        let mut g = Xoshiro256::seed_from(1);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[p.sample(&c, &mut g).index()] += 1;
        }
        for &n in &counts {
            assert!((n as f64 / 10_000.0 - 1.0).abs() < 0.06, "{counts:?}");
        }
    }

    #[test]
    fn greedy_picks_argmax() {
        // score = decision index unless x < 0, then reversed.
        let p = GreedyPolicy::new(space(), |c, d| {
            if c.num(0) >= 0.0 {
                d.index() as f64
            } else {
                -(d.index() as f64)
            }
        });
        assert_eq!(p.best(&ctx(1.0)).index(), 2);
        assert_eq!(p.best(&ctx(-1.0)).index(), 0);
        assert_eq!(p.prob(&ctx(1.0), Decision::from_index(2)), 1.0);
        assert_eq!(p.prob(&ctx(1.0), Decision::from_index(0)), 0.0);
        assert!(p.is_deterministic_at(&ctx(1.0)));
        assert_normalized(&p, &ctx(1.0));
    }

    #[test]
    fn greedy_tie_breaks_low_index() {
        let p = GreedyPolicy::new(space(), |_, _| 1.0);
        assert_eq!(p.best(&ctx(0.0)).index(), 0);
    }

    #[test]
    fn lookup_table_and_default() {
        let mut p = LookupPolicy::new(space(), 2);
        let c0 = ctx(0.0);
        p.insert(&c0, 1);
        assert_eq!(p.decide(&c0).index(), 1);
        assert_eq!(p.decide(&ctx(9.0)).index(), 2);
        assert_normalized(&p, &c0);
    }

    #[test]
    fn epsilon_smoothing_mixes_uniform() {
        let base = LookupPolicy::constant(space(), 0);
        let p = EpsilonSmoothedPolicy::new(Box::new(base), 0.3);
        let c = ctx(0.0);
        assert!((p.prob(&c, Decision::from_index(0)) - (0.7 + 0.1)).abs() < 1e-12);
        assert!((p.prob(&c, Decision::from_index(1)) - 0.1).abs() < 1e-12);
        assert_normalized(&p, &c);
        assert!((p.propensity_floor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_is_base_epsilon_one_is_uniform() {
        let c = ctx(0.0);
        let p0 = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 1)), 0.0);
        assert_eq!(p0.prob(&c, Decision::from_index(1)), 1.0);
        let p1 = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 1)), 1.0);
        for d in 0..3 {
            assert!((p1.prob(&c, Decision::from_index(d)) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn epsilon_greedy_sampling_matches_probs() {
        let p = EpsilonGreedyPolicy::new(space(), 0.3, |_, d| d.index() as f64);
        let c = ctx(0.0);
        let mut g = Xoshiro256::seed_from(2);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[p.sample(&c, &mut g).index()] += 1;
        }
        // Expect 0.1 / 0.1 / 0.8.
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.8).abs() < 0.01);
    }

    #[test]
    fn softmax_orders_by_score_and_sharpens_with_low_tau() {
        let c = ctx(0.0);
        let hot = SoftmaxPolicy::new(space(), 10.0, |_, d| d.index() as f64);
        let cold = SoftmaxPolicy::new(space(), 0.1, |_, d| d.index() as f64);
        assert_normalized(&hot, &c);
        assert_normalized(&cold, &c);
        let ph = hot.probabilities(&c);
        let pc = cold.probabilities(&c);
        assert!(ph[2] > ph[1] && ph[1] > ph[0]);
        assert!(
            pc[2] > 0.99,
            "cold softmax should be nearly deterministic: {pc:?}"
        );
    }

    #[test]
    fn sample_with_prob_returns_consistent_propensity() {
        let p = SoftmaxPolicy::new(space(), 1.0, |_, d| d.index() as f64);
        let c = ctx(0.0);
        let mut g = Xoshiro256::seed_from(3);
        for _ in 0..100 {
            let (d, q) = p.sample_with_prob(&c, &mut g);
            assert!((q - p.prob(&c, d)).abs() < 1e-12);
        }
    }

    #[test]
    fn mixture_combines_components() {
        let m = MixturePolicy::new(vec![
            (
                1.0,
                Box::new(LookupPolicy::constant(space(), 0)) as Box<dyn Policy + Send + Sync>,
            ),
            (3.0, Box::new(UniformRandomPolicy::new(space()))),
        ]);
        let c = ctx(0.0);
        assert_normalized(&m, &c);
        // 0.25 * [1,0,0] + 0.75 * [1/3,1/3,1/3]
        assert!((m.prob(&c, Decision::from_index(0)) - 0.5).abs() < 1e-12);
        assert!((m.prob(&c, Decision::from_index(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a decision space")]
    fn mixture_space_mismatch_panics() {
        let _ = MixturePolicy::new(vec![
            (
                1.0,
                Box::new(UniformRandomPolicy::new(space())) as Box<dyn Policy + Send + Sync>,
            ),
            (
                1.0,
                Box::new(UniformRandomPolicy::new(DecisionSpace::of(&["x"]))),
            ),
        ]);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0,1]")]
    fn bad_epsilon_panics() {
        let _ = EpsilonSmoothedPolicy::new(Box::new(UniformRandomPolicy::new(space())), 1.5);
    }
}
