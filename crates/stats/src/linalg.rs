//! Small dense linear algebra.
//!
//! Just enough matrix machinery for the hand-rolled ridge regression in
//! `ddn-models`: row-major dense matrices, matrix/vector products, and a
//! Cholesky solver for symmetric positive-definite systems (which is what
//! `XᵀX + λI` always is for `λ > 0`).

/// Alias for a dense vector.
pub type Vector = Vec<f64>;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `AᵀA` of this matrix (a `cols × cols` Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ y` for a vector `y` of length `rows`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vector {
        assert_eq!(y.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x * yr;
            }
        }
        out
    }

    /// `A x` for a vector `x` of length `cols`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Adds `lambda` to every diagonal entry (in place). Used for ridge
    /// regularization.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_diagonal requires a square matrix"
        );
        for i in 0..self.rows {
            self[(i, i)] += lambda;
        }
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
    /// decomposition. Returns `None` if the matrix is not (numerically)
    /// positive definite.
    ///
    /// # Panics
    /// Panics if `A` is not square or `b` has the wrong length.
    pub fn cholesky_solve(&self, b: &[f64]) -> Option<Vector> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must equal matrix size");
        let n = self.rows;
        // Lower-triangular factor L with A = L Lᵀ.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    l[i * n + j] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = Matrix::identity(3);
        let x = a.cholesky_solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cholesky_known_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = a.cholesky_solve(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn gram_and_transpose_mul() {
        // X = [[1,2],[3,4],[5,6]]
        let x = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = x.gram();
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 0)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
        let xty = x.transpose_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(xty, vec![9.0, 12.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let v = a.mul_vec(&[3.0, -1.0, 2.0]);
        assert_eq!(v, vec![7.0, -4.0]);
    }

    #[test]
    fn ridge_normal_equations_roundtrip() {
        // Solve (XᵀX + λI) w = Xᵀ y for a known linear relationship
        // y = 2*x0 - x1; with tiny λ the solution should be close.
        let x = Matrix::from_rows(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let y: Vec<f64> = (0..4).map(|r| 2.0 * x.row(r)[0] - x.row(r)[1]).collect();
        let mut a = x.gram();
        a.add_diagonal(1e-9);
        let b = x.transpose_mul_vec(&y);
        let w = a.cholesky_solve(&b).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
