//! # ddn-stats — statistics substrate for trace-driven evaluation
//!
//! This crate provides every piece of statistical machinery the rest of the
//! workspace needs, implemented from scratch so that the reproduction of
//! *Biases in Data-Driven Networking, and What to Do About Them*
//! (HotNets '17) has no opaque numerical dependencies:
//!
//! - [`rng`] — deterministic, seedable pseudo-random number generators
//!   (SplitMix64 and xoshiro256\*\*). Every simulator in the workspace is a
//!   pure function of its seed, which is what makes the paper's
//!   "mean/min/max over 50 runs" experiments exactly reproducible.
//! - [`dist`] — samplers for the distributions the synthetic workloads use
//!   (normal, log-normal, exponential, Pareto, categorical, …).
//! - [`summary`] — streaming moments (Welford), quantiles, and the
//!   min/mean/max error reports that Figure 7 of the paper plots.
//! - [`bootstrap`] — percentile bootstrap confidence intervals for
//!   estimator outputs.
//! - [`changepoint`] — PELT and binary segmentation for detecting
//!   self-induced system-state changes (paper §4.3, refs \[23, 26\]).
//! - [`linalg`] — small dense matrix helpers (Cholesky solve) backing the
//!   hand-rolled ridge regression in `ddn-models`.
//! - [`json`] — a minimal JSON document model, parser and writer; the
//!   workspace builds hermetically with zero crates.io dependencies, so
//!   trace persistence and bench telemetry serialize through this module
//!   instead of serde.
//!
//! Nothing here is networking-specific; the crate is the "math library"
//! substrate named in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod changepoint;
pub mod dist;
pub mod json;
pub mod linalg;
pub mod rng;
pub mod series;
pub mod summary;
pub mod ttest;

pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use changepoint::{binary_segmentation, pelt, CostModel, Penalty};
pub use dist::{
    Bernoulli, Categorical, Distribution, Exponential, LogNormal, Normal, Pareto, Uniform,
};
pub use json::{Json, JsonError};
pub use linalg::{Matrix, Vector};
pub use rng::{Rng, SplitMix64, Xoshiro256};
pub use series::{pearson, spearman, Ewma};
pub use summary::{quantile, ErrorReport, Histogram, Summary, Welford};
pub use ttest::{paired_t_test, welch_t_test, TTest};
