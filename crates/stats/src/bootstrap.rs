//! Percentile bootstrap confidence intervals.
//!
//! Off-policy estimates are single numbers; operators deciding whether to
//! deploy a policy need uncertainty around them. The percentile bootstrap
//! resamples the per-record contributions of an estimator (every estimator
//! in `ddn-estimators` exposes those) and reads the interval off the
//! resampled distribution of means.

use crate::rng::Rng;

/// A two-sided bootstrap confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (mean of the original sample).
    pub point: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Confidence level used (e.g. `0.95`).
    pub level: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapCi {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Computes a percentile-bootstrap CI for the mean of `xs`.
///
/// `level` is the two-sided confidence level (e.g. `0.95` for a 95% CI);
/// `resamples` is the number of bootstrap replicates (1000–10000 typical).
///
/// # Panics
/// Panics if `xs` is empty, `resamples == 0`, or `level` is not in `(0, 1)`.
pub fn bootstrap_ci(xs: &[f64], level: f64, resamples: usize, rng: &mut dyn Rng) -> BootstrapCi {
    assert!(!xs.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1), got {level}"
    );

    let n = xs.len();
    let point = xs.iter().sum::<f64>() / n as f64;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.index(n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    BootstrapCi {
        point,
        lo: means[lo_idx],
        hi: means[hi_idx],
        level,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Xoshiro256;

    #[test]
    fn ci_brackets_point() {
        let mut g = Xoshiro256::seed_from(8);
        let xs: Vec<f64> = Normal::new(10.0, 2.0).sample_n(&mut g, 500);
        let ci = bootstrap_ci(&xs, 0.95, 2000, &mut g);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.contains(ci.point));
        assert!((ci.point - 10.0).abs() < 0.5);
    }

    #[test]
    fn ci_width_shrinks_with_sample_size() {
        let mut g = Xoshiro256::seed_from(9);
        let small: Vec<f64> = Normal::new(0.0, 1.0).sample_n(&mut g, 50);
        let large: Vec<f64> = Normal::new(0.0, 1.0).sample_n(&mut g, 5000);
        let ci_small = bootstrap_ci(&small, 0.95, 2000, &mut g);
        let ci_large = bootstrap_ci(&large, 0.95, 2000, &mut g);
        assert!(
            ci_large.width() < ci_small.width(),
            "large-n width {} should be below small-n width {}",
            ci_large.width(),
            ci_small.width()
        );
    }

    #[test]
    fn ci_coverage_near_nominal() {
        // Crude coverage check: 95% CI should contain the true mean in
        // most of a batch of independent experiments.
        let mut g = Xoshiro256::seed_from(10);
        let trials = 100;
        let mut covered = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = Normal::new(3.0, 1.0).sample_n(&mut g, 200);
            let ci = bootstrap_ci(&xs, 0.95, 500, &mut g);
            if ci.contains(3.0) {
                covered += 1;
            }
        }
        assert!(covered >= 85, "coverage {covered}/100 too low for a 95% CI");
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let mut g = Xoshiro256::seed_from(11);
        let xs = vec![4.0; 64];
        let ci = bootstrap_ci(&xs, 0.9, 200, &mut g);
        assert_eq!(ci.lo, 4.0);
        assert_eq!(ci.hi, 4.0);
        assert_eq!(ci.point, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let mut g = Xoshiro256::seed_from(12);
        let _ = bootstrap_ci(&[], 0.95, 100, &mut g);
    }
}
