//! Offline change-point detection.
//!
//! Paper §4.3 ("Tackling reward-decision coupling") proposes borrowing
//! change-point detection — citing PELT (Killick et al. \[23\]) and penalized
//! contrasts (Lavielle \[26\]) — to infer *when our own decisions changed the
//! system state* (e.g. a server sliding from "low load" into "overload"
//! because the policy kept assigning clients to it). The detected segments
//! gate which trace records a state-aware DR estimator may reuse.
//!
//! Two detectors are provided, both exact/greedy optimizers of a penalized
//! segmented cost:
//!
//! - [`pelt`] — Pruned Exact Linear Time; exact minimizer of
//!   `sum(seg_cost) + beta * #changepoints` under a pruning condition that
//!   holds for the concave costs used here.
//! - [`binary_segmentation`] — the classic greedy splitter; cheaper but
//!   approximate, kept both as a baseline and for cross-checking PELT in
//!   tests.

/// Segment cost models for change-point detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Gaussian likelihood cost for a change in **mean** with (assumed)
    /// common variance: `sum (x - mean)^2` within each segment. This is the
    /// right model for a load-level proxy series that shifts level when a
    /// server saturates.
    NormalMean,
    /// Gaussian likelihood cost for a change in mean **and variance**:
    /// `n * log(var)` within each segment (plus constants). Detects
    /// volatility shifts, e.g. queueing delay variance exploding at high
    /// utilization.
    NormalMeanVar,
}

/// Penalty selection for the number of change points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Penalty {
    /// Bayesian information criterion: `p * ln(n)` with `p` the number of
    /// parameters added per change point (1 for mean, 2 for mean+var).
    Bic,
    /// Explicit penalty value per change point.
    Manual(f64),
}

impl Penalty {
    fn value(&self, n: usize, model: CostModel) -> f64 {
        match self {
            Penalty::Manual(b) => {
                assert!(*b >= 0.0, "penalty must be non-negative");
                *b
            }
            Penalty::Bic => {
                let p = match model {
                    CostModel::NormalMean => 1.0,
                    CostModel::NormalMeanVar => 2.0,
                };
                // +1 parameter for the changepoint location itself; the
                // conventional "2 p ln n"-style BIC used by ruptures.
                (p + 1.0) * (n.max(2) as f64).ln()
            }
        }
    }
}

/// Prefix sums enabling O(1) segment cost queries.
struct Prefix {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl Prefix {
    fn new(xs: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(xs.len() + 1);
        let mut sum_sq = Vec::with_capacity(xs.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        for &x in xs {
            sum.push(sum.last().unwrap() + x);
            sum_sq.push(sum_sq.last().unwrap() + x * x);
        }
        Self { sum, sum_sq }
    }

    /// Cost of the half-open segment `[a, b)`.
    fn cost(&self, a: usize, b: usize, model: CostModel) -> f64 {
        debug_assert!(a < b);
        let n = (b - a) as f64;
        let s = self.sum[b] - self.sum[a];
        let ss = self.sum_sq[b] - self.sum_sq[a];
        let rss = (ss - s * s / n).max(0.0);
        match model {
            CostModel::NormalMean => rss,
            CostModel::NormalMeanVar => {
                // n * log(sigma^2_hat); floor the variance to keep the log
                // finite on constant segments.
                let var = (rss / n).max(1e-12);
                n * var.ln()
            }
        }
    }
}

/// Exact penalized change-point detection via PELT (Killick et al. 2012).
///
/// Returns the sorted change-point indices: each index `t` means "a new
/// segment starts at `t`" (so indices lie in `1..n`). An empty result means
/// the series is best explained by a single segment.
///
/// `min_seg` is the minimum segment length (≥ 1); short floors suppress
/// spurious one-point segments in noisy load series.
///
/// # Panics
/// Panics if `xs.len() < 2 * min_seg` or `min_seg == 0`.
pub fn pelt(xs: &[f64], model: CostModel, penalty: Penalty, min_seg: usize) -> Vec<usize> {
    assert!(min_seg >= 1, "min_seg must be at least 1");
    assert!(
        xs.len() >= 2 * min_seg,
        "series of length {} too short for min_seg {}",
        xs.len(),
        min_seg
    );
    let n = xs.len();
    let beta = penalty.value(n, model);
    let pre = Prefix::new(xs);

    // f[t] = optimal cost of xs[..t] (+ beta per internal changepoint).
    let mut f = vec![f64::INFINITY; n + 1];
    f[0] = -beta; // standard PELT initialization so each segment pays beta once
    let mut last_cp = vec![0usize; n + 1];
    // Candidate previous change points, pruned as we go.
    let mut candidates: Vec<usize> = vec![0];

    for t in min_seg..=n {
        let mut best = f64::INFINITY;
        let mut best_s = 0;
        for &s in &candidates {
            if t - s < min_seg {
                continue;
            }
            let c = f[s] + pre.cost(s, t, model) + beta;
            if c < best {
                best = c;
                best_s = s;
            }
        }
        f[t] = best;
        last_cp[t] = best_s;
        // Pruning: drop s if even with zero future cost it cannot beat f[t].
        candidates.retain(|&s| t - s < min_seg || f[s] + pre.cost(s, t, model) <= f[t]);
        candidates.push(t.saturating_sub(min_seg - 1).max(1).min(t));
        // Keep the canonical candidate t itself (segment could start at t).
        if *candidates.last().unwrap() != t {
            candidates.push(t);
        }
        candidates.sort_unstable();
        candidates.dedup();
    }

    // Backtrack.
    let mut cps = Vec::new();
    let mut t = n;
    while t > 0 {
        let s = last_cp[t];
        if s == 0 {
            break;
        }
        cps.push(s);
        t = s;
    }
    cps.sort_unstable();
    cps
}

/// Greedy binary segmentation under the same penalized cost.
///
/// Recursively splits the segment at the point of maximal cost reduction as
/// long as the reduction exceeds the penalty. Approximate but fast and
/// simple; serves as a baseline/cross-check for [`pelt`].
pub fn binary_segmentation(
    xs: &[f64],
    model: CostModel,
    penalty: Penalty,
    min_seg: usize,
) -> Vec<usize> {
    assert!(min_seg >= 1, "min_seg must be at least 1");
    assert!(
        xs.len() >= 2 * min_seg,
        "series of length {} too short for min_seg {}",
        xs.len(),
        min_seg
    );
    let n = xs.len();
    let beta = penalty.value(n, model);
    let pre = Prefix::new(xs);
    let mut cps = Vec::new();
    let mut stack = vec![(0usize, n)];
    while let Some((a, b)) = stack.pop() {
        if b - a < 2 * min_seg {
            continue;
        }
        let whole = pre.cost(a, b, model);
        let mut best_gain = 0.0;
        let mut best_t = 0;
        for t in (a + min_seg)..=(b - min_seg) {
            let gain = whole - pre.cost(a, t, model) - pre.cost(t, b, model);
            if gain > best_gain {
                best_gain = gain;
                best_t = t;
            }
        }
        if best_gain > beta && best_t != 0 {
            cps.push(best_t);
            stack.push((a, best_t));
            stack.push((best_t, b));
        }
    }
    cps.sort_unstable();
    cps
}

/// Splits a series into segments given change points from [`pelt`] /
/// [`binary_segmentation`]; returns `(start, end)` half-open index pairs.
pub fn segments(n: usize, changepoints: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(changepoints.len() + 1);
    let mut start = 0;
    for &cp in changepoints {
        assert!(
            cp > start && cp < n,
            "changepoint {cp} out of order or range"
        );
        out.push((start, cp));
        start = cp;
    }
    out.push((start, n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Xoshiro256;

    fn series_with_shift(n1: usize, n2: usize, m1: f64, m2: f64, std: f64, seed: u64) -> Vec<f64> {
        let mut g = Xoshiro256::seed_from(seed);
        let mut xs = Normal::new(m1, std).sample_n(&mut g, n1);
        xs.extend(Normal::new(m2, std).sample_n(&mut g, n2));
        xs
    }

    #[test]
    fn pelt_finds_clear_mean_shift() {
        let xs = series_with_shift(100, 100, 0.0, 5.0, 1.0, 42);
        let cps = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        assert_eq!(
            cps.len(),
            1,
            "expected exactly one changepoint, got {cps:?}"
        );
        assert!(
            (cps[0] as i64 - 100).unsigned_abs() <= 3,
            "changepoint {} too far from 100",
            cps[0]
        );
    }

    #[test]
    fn pelt_silent_on_stationary_series() {
        let mut g = Xoshiro256::seed_from(7);
        let xs = Normal::new(2.0, 1.0).sample_n(&mut g, 300);
        let cps = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        assert!(
            cps.is_empty(),
            "false positives on stationary series: {cps:?}"
        );
    }

    #[test]
    fn pelt_finds_two_shifts() {
        let mut xs = series_with_shift(80, 80, 0.0, 4.0, 0.8, 3);
        let mut g = Xoshiro256::seed_from(4);
        xs.extend(Normal::new(-3.0, 0.8).sample_n(&mut g, 80));
        let cps = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        assert_eq!(cps.len(), 2, "expected two changepoints, got {cps:?}");
        assert!((cps[0] as i64 - 80).unsigned_abs() <= 3);
        assert!((cps[1] as i64 - 160).unsigned_abs() <= 3);
    }

    #[test]
    fn pelt_meanvar_detects_variance_shift() {
        let mut g = Xoshiro256::seed_from(21);
        let mut xs = Normal::new(0.0, 0.5).sample_n(&mut g, 150);
        xs.extend(Normal::new(0.0, 4.0).sample_n(&mut g, 150));
        let cps = pelt(&xs, CostModel::NormalMeanVar, Penalty::Bic, 10);
        assert!(!cps.is_empty(), "variance shift missed");
        assert!(
            (cps[0] as i64 - 150).unsigned_abs() <= 10,
            "variance changepoint {} too far from 150",
            cps[0]
        );
    }

    #[test]
    fn binseg_agrees_with_pelt_on_clean_shift() {
        let xs = series_with_shift(120, 120, 1.0, 8.0, 1.0, 99);
        let p = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        let b = binary_segmentation(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        assert_eq!(p.len(), 1);
        assert_eq!(b.len(), 1);
        assert!((p[0] as i64 - b[0] as i64).unsigned_abs() <= 2);
    }

    #[test]
    fn manual_penalty_controls_sensitivity() {
        // Small shift: a huge penalty should suppress detection, a tiny one allow it.
        let xs = series_with_shift(100, 100, 0.0, 1.0, 1.0, 5);
        let strict = pelt(&xs, CostModel::NormalMean, Penalty::Manual(1e6), 5);
        assert!(strict.is_empty());
        let lax = pelt(&xs, CostModel::NormalMean, Penalty::Manual(5.0), 5);
        assert!(!lax.is_empty());
    }

    #[test]
    fn segments_partition_series() {
        let segs = segments(10, &[3, 7]);
        assert_eq!(segs, vec![(0, 3), (3, 7), (7, 10)]);
        let segs = segments(5, &[]);
        assert_eq!(segs, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn pelt_short_series_panics() {
        let _ = pelt(&[1.0, 2.0], CostModel::NormalMean, Penalty::Bic, 5);
    }

    #[test]
    fn min_seg_respected() {
        let xs = series_with_shift(50, 50, 0.0, 6.0, 1.0, 13);
        let cps = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 20);
        for &cp in &cps {
            assert!((20..=80).contains(&cp), "changepoint {cp} violates min_seg");
        }
    }
}
