//! Streaming and batch summaries of sample collections.
//!
//! [`Welford`] accumulates mean/variance in one pass; [`Summary`] is its
//! finished snapshot; [`ErrorReport`] is the min/mean/max triple that the
//! paper's Figure 7 plots for each estimator; [`Histogram`] supports the
//! weight-distribution diagnostics in `ddn-estimators`.

use crate::json::{Json, JsonError};

/// One-pass streaming mean and variance (Welford's algorithm), plus
/// min/max tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation in `xs`.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Decomposes the accumulator into its raw state
    /// `(n, mean, m2, min, max)` for exact persistence. The returned
    /// floats are the accumulator's internal values bit-for-bit, so a
    /// [`Welford::from_raw`] round trip reproduces this accumulator
    /// exactly — including the `±inf` min/max sentinels of an empty one.
    pub fn to_raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from raw state captured by
    /// [`Welford::to_raw`]. No normalization is applied: whatever bits go
    /// in come back out of [`Welford::mean`] and friends, which is what a
    /// bit-identical crash-recovery path needs.
    pub fn from_raw(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Finishes the accumulator into an immutable [`Summary`].
    pub fn finish(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean,
            std: self.std(),
            min: if self.n == 0 { f64::NAN } else { self.min },
            max: if self.n == 0 { f64::NAN } else { self.max },
        }
    }

    /// Merges another accumulator into this one (parallel-combine form of
    /// Welford, used when experiment runs are fanned out across threads).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Immutable snapshot of a sample's moments and extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std: f64,
    /// Minimum observation (`NaN` when empty).
    pub min: f64,
    /// Maximum observation (`NaN` when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice in one pass.
    pub fn of(xs: &[f64]) -> Self {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        w.finish()
    }

    /// Serializes to a JSON object (field order: count, mean, std, min,
    /// max — the old serde wire layout).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("count", Json::Int(self.count as i64)),
            ("mean", Json::Num(self.mean)),
            ("std", Json::Num(self.std)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }

    /// Parses the representation written by [`Summary::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            count: v
                .field("count")?
                .as_u64()
                .ok_or_else(|| JsonError::msg("expected u64 for count"))?,
            mean: v.field("mean")?.expect_f64("mean")?,
            std: v.field("std")?.expect_f64("std")?,
            min: v.field("min")?.expect_f64("min")?,
            max: v.field("max")?.expect_f64("max")?,
        })
    }
}

/// The statistic the paper's Figure 7 plots per estimator: the mean,
/// minimum and maximum of a set of relative evaluation errors (one per
/// simulation run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Mean relative error over runs.
    pub mean: f64,
    /// Smallest relative error observed.
    pub min: f64,
    /// Largest relative error observed.
    pub max: f64,
    /// Number of runs aggregated.
    pub runs: u64,
}

impl ErrorReport {
    /// Aggregates a slice of per-run relative errors.
    ///
    /// # Panics
    /// Panics if `errors` is empty — an experiment with zero runs is a bug.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "ErrorReport requires at least one run");
        let s = Summary::of(errors);
        Self {
            mean: s.mean,
            min: s.min,
            max: s.max,
            runs: s.count,
        }
    }

    /// Relative improvement of `self` over `baseline` in mean error
    /// (e.g. the paper's "DR's evaluation error is about 32% lower").
    /// Positive means `self` is better (lower error).
    ///
    /// ## Degenerate baseline convention
    ///
    /// A zero-mean-error baseline admits no relative improvement:
    /// matching it exactly (`self.mean == 0.0`) reports `0.0` (parity),
    /// while any positive error against a perfect baseline reports
    /// `f64::NEG_INFINITY` — an unboundedly bad regression, which is
    /// what "relative to zero" means. Earlier versions returned `0.0`
    /// in both cases, misreporting a strict regression as parity.
    pub fn improvement_over(&self, baseline: &ErrorReport) -> f64 {
        if baseline.mean == 0.0 {
            return if self.mean == 0.0 {
                0.0
            } else {
                f64::NEG_INFINITY
            };
        }
        (baseline.mean - self.mean) / baseline.mean
    }

    /// Serializes to a JSON object (field order: mean, min, max, runs).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("mean", Json::Num(self.mean)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
            ("runs", Json::Int(self.runs as i64)),
        ])
    }

    /// Parses the representation written by [`ErrorReport::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            mean: v.field("mean")?.expect_f64("mean")?,
            min: v.field("min")?.expect_f64("min")?,
            max: v.field("max")?.expect_f64("max")?,
            runs: v
                .field("runs")?
                .as_u64()
                .ok_or_else(|| JsonError::msg("expected u64 for runs"))?,
        })
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `xs` using linear interpolation
/// between order statistics (type-7, the numpy default).
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `\[0, 1\]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile q must be in [0,1], got {q}"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fixed-width histogram over a closed range, with overflow/underflow bins.
///
/// Used to inspect the distribution of IPS importance weights — the
/// heavy right tail of that distribution is exactly the variance pathology
/// the paper describes in §2.2.2 and §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram requires lo < hi");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of observations at or above the upper bound — the "tail
    /// mass" diagnostic surfaced by the estimators.
    pub fn tail_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.overflow as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 100.0);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(7.0);
        assert_eq!(w1.mean(), 7.0);
        assert_eq!(w1.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        all.extend(xs.iter().copied());
        let mut a = Welford::new();
        let mut b = Welford::new();
        a.extend(xs[..20].iter().copied());
        b.extend(xs[20..].iter().copied());
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.extend([1.0, 2.0]);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_json_roundtrip() {
        let s = Summary::of(&[1.0, 2.0, 3.5]);
        let back = Summary::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn error_report_json_roundtrip() {
        let r = ErrorReport::from_errors(&[0.1, 0.25, 0.3]);
        let v = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(ErrorReport::from_json(&v).unwrap(), r);
        assert!(ErrorReport::from_json(&Json::Null).is_err());
    }

    #[test]
    fn error_report_aggregates() {
        let r = ErrorReport::from_errors(&[0.1, 0.2, 0.3]);
        assert!((r.mean - 0.2).abs() < 1e-12);
        assert_eq!(r.min, 0.1);
        assert_eq!(r.max, 0.3);
        assert_eq!(r.runs, 3);
    }

    #[test]
    fn error_report_improvement() {
        let dr = ErrorReport::from_errors(&[0.068]);
        let wise = ErrorReport::from_errors(&[0.1]);
        let imp = dr.improvement_over(&wise);
        assert!((imp - 0.32).abs() < 1e-9, "improvement {imp}");
    }

    #[test]
    fn improvement_over_zero_baseline_convention() {
        let perfect = ErrorReport::from_errors(&[0.0, 0.0]);
        let also_perfect = ErrorReport::from_errors(&[0.0]);
        let worse = ErrorReport::from_errors(&[0.3, 0.5]);
        // Matching a perfect baseline exactly is parity.
        assert_eq!(also_perfect.improvement_over(&perfect), 0.0);
        // Any positive error against a perfect baseline is an unbounded
        // regression — previously misreported as 0.0 (parity).
        assert_eq!(worse.improvement_over(&perfect), f64::NEG_INFINITY);
        // A perfect estimator against a fallible baseline is a full win.
        assert_eq!(perfect.improvement_over(&worse), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn error_report_empty_panics() {
        let _ = ErrorReport::from_errors(&[]);
    }

    #[test]
    fn quantile_basic() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn welford_raw_round_trip_is_bit_exact() {
        let mut w = Welford::new();
        w.extend([0.1, 0.2, 0.30000000000000004, -7.5]);
        let (n, mean, m2, min, max) = w.to_raw();
        let back = Welford::from_raw(n, mean, m2, min, max);
        assert_eq!(back.count(), w.count());
        assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        assert_eq!(back.variance().to_bits(), w.variance().to_bits());
        assert_eq!(back.min().to_bits(), w.min().to_bits());
        assert_eq!(back.max().to_bits(), w.max().to_bits());

        // Empty accumulator: the ±inf sentinels must survive verbatim.
        let (n, mean, m2, min, max) = Welford::new().to_raw();
        let empty = Welford::from_raw(n, mean, m2, min, max);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), f64::INFINITY);
        assert_eq!(empty.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(5.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 5);
        assert!((h.tail_fraction() - 0.2).abs() < 1e-12);
    }
}
