//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace draws from generators defined
//! here. Two generators are provided:
//!
//! - [`SplitMix64`] — a tiny, fast generator used mainly to *seed* other
//!   generators and to derive independent child streams.
//! - [`Xoshiro256`] — xoshiro256\*\*, the workhorse generator with 256 bits
//!   of state, excellent statistical quality and a `jump()` function for
//!   carving non-overlapping substreams.
//!
//! Determinism contract: given the same seed, a generator produces the same
//! sequence on every platform. The simulators in `ddn-netsim`, `ddn-abr`,
//! `ddn-relay` and `ddn-cdn` rely on this to make the paper's 50-run
//! experiments exactly reproducible.

/// Common interface for the crate's pseudo-random generators.
///
/// The trait is object-safe and deliberately small: raw 64-bit output plus
/// derived conveniences. All derived methods have default implementations
/// expressed in terms of [`Rng::next_u64`], so implementors only supply the
/// core generator.
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`Rng::next_u64`], the standard construction
    /// that fills the full mantissa of an IEEE-754 double.
    fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only `bound - (2^64 mod bound)` smallest
            // low-words are biased; recompute the threshold lazily.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `\[0, 1\]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        &slice[self.index(slice.len())]
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a 64-bit generator with a single word of state.
///
/// Primarily used to expand user-provided seeds into the 256-bit state of
/// [`Xoshiro256`] and to derive independent child seeds (see
/// [`SplitMix64::split`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed value is acceptable,
    /// including zero.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child seed.
    ///
    /// Advances this generator once and returns the output, which is
    /// suitable for seeding another generator. Repeated calls yield a
    /// stream of decorrelated seeds.
    pub fn split(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's default generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded through
/// SplitMix64 per the authors' recommendation so that correlated seeds
/// (e.g. `1, 2, 3, …` for the 50 experiment runs) still produce
/// decorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it to full state
    /// via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from explicit full state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be nonzero"
        );
        Self { s }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from this generator's next output; use this when
    /// a component needs its own stream that must not perturb the parent's
    /// sequence alignment as the component evolves.
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }

    /// Advances the state by 2^128 steps (the xoshiro jump function),
    /// yielding a non-overlapping substream. Useful for carving parallel
    /// streams with hard non-overlap guarantees.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_B562,
            0x3952_1AFC_C5ED_3FE5,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain reference
        // implementation by Sebastiano Vigna.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        let mut c = Xoshiro256::seed_from(43);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut g = Xoshiro256::seed_from(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut g = Xoshiro256::seed_from(99);
        let bound = 7u64;
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[g.next_below(bound) as usize] += 1;
        }
        let expected = n / 7;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i} count {c} deviates {dev}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut g = SplitMix64::new(1);
        let _ = g.next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut g = Xoshiro256::seed_from(5);
        for _ in 0..1000 {
            assert!(!g.chance(0.0));
            assert!(g.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = Xoshiro256::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_decorrelated() {
        let mut parent = Xoshiro256::seed_from(11);
        let mut child_a = parent.fork();
        let mut child_b = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| child_a.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child_b.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jump_produces_distinct_stream() {
        let mut g = Xoshiro256::seed_from(17);
        let mut h = g.clone();
        h.jump();
        let a: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| h.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "state must be nonzero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut g = Xoshiro256::seed_from(23);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*g.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
