//! Probability distributions used by the synthetic workloads.
//!
//! Each distribution implements [`Distribution`], a tiny sampling trait over
//! the crate's [`Rng`]. Parameter validation happens at construction time so
//! sampling is infallible and branch-light.

use crate::rng::Rng;

/// A sampler producing values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample(&self, rng: &mut dyn Rng) -> T;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "uniform bounds must be finite"
        );
        assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
        Self { lo, hi }
    }
}

impl Distribution<f64> for Uniform {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Normal (Gaussian) distribution, sampled via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    /// Panics if `std < 0` or parameters are non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "normal parameters must be finite"
        );
        assert!(std >= 0.0, "normal std must be non-negative, got {std}");
        Self { mean, std }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws a standard-normal variate via Box–Muller.
    fn standard(rng: &mut dyn Rng) -> f64 {
        // Reject u1 == 0 so ln is finite.
        let mut u1 = rng.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.next_f64();
        }
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.mean + self.std * Self::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for heavy-ish-tailed quantities like response times and available
/// bandwidth, matching the skew observed in real network telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with location `mu` and scale
    /// `sigma` (parameters of the underlying normal).
    ///
    /// # Panics
    /// Panics if `sigma < 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Constructs a log-normal from the desired *arithmetic* mean and
    /// standard deviation of the resulting samples.
    ///
    /// # Panics
    /// Panics if `mean <= 0` or `std < 0`.
    pub fn from_mean_std(mean: f64, std: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        assert!(std >= 0.0, "log-normal std must be non-negative");
        let variance_ratio = (std / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with the given rate `lambda`.
///
/// The workhorse of inter-arrival times in `ddn-netsim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`
    /// (mean `1 / lambda`).
    ///
    /// # Panics
    /// Panics if `rate <= 0` or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Self { rate }
    }

    /// The mean `1 / lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let mut u = rng.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = rng.next_f64();
        }
        -u.ln() / self.rate
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Models heavy-tailed flow sizes and session durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0, "pareto x_min must be positive");
        assert!(alpha > 0.0, "pareto alpha must be positive");
        Self { x_min, alpha }
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let mut u = rng.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = rng.next_f64();
        }
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "bernoulli p must be in [0,1], got {p}"
        );
        Self { p }
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut dyn Rng) -> bool {
        rng.chance(self.p)
    }
}

/// Categorical distribution over indices `0..k`, with O(1) sampling via
/// Walker's alias method.
///
/// This is the sampler behind every stochastic [`Policy`](https://docs.rs)
/// in `ddn-policy`: a policy's conditional distribution over decisions is
/// exactly a categorical.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    /// Normalized probabilities, kept for exact PMF queries.
    pmf: Vec<f64>,
}

impl Categorical {
    /// Builds a categorical distribution from non-negative weights.
    /// Weights need not sum to one; they are normalized.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "categorical weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights must not all be zero");
        let k = weights.len();
        let pmf: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Walker's alias method setup.
        let mut prob = vec![0.0f64; k];
        let mut alias = vec![0usize; k];
        let mut small = Vec::new();
        let mut large = Vec::new();
        let scaled: Vec<f64> = pmf.iter().map(|p| p * k as f64).collect();
        let mut scaled = scaled;
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0;
        }
        Self { prob, alias, pmf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the distribution has zero categories (never true by
    /// construction; provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// The normalized probability of category `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn pmf(&self, i: usize) -> f64 {
        self.pmf[i]
    }

    /// The full normalized probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.pmf
    }
}

impl Distribution<usize> for Categorical {
    fn sample(&self, rng: &mut dyn Rng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from(1234)
    }

    fn mean_std(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0);
        (m, v.sqrt())
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut g = rng();
        let d = Uniform::new(-2.0, 6.0);
        let xs = d.sample_n(&mut g, 50_000);
        assert!(xs.iter().all(|&x| (-2.0..6.0).contains(&x)));
        let (m, _) = mean_std(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_bad_bounds() {
        let _ = Uniform::new(1.0, 1.0);
    }

    #[test]
    fn normal_moments() {
        let mut g = rng();
        let d = Normal::new(3.0, 2.0);
        let xs = d.sample_n(&mut g, 100_000);
        let (m, s) = mean_std(&xs);
        assert!((m - 3.0).abs() < 0.03, "mean {m}");
        assert!((s - 2.0).abs() < 0.03, "std {s}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut g = rng();
        let d = Normal::new(5.0, 0.0);
        assert!(d.sample_n(&mut g, 100).iter().all(|&x| x == 5.0));
    }

    #[test]
    fn lognormal_from_mean_std_matches_target() {
        let mut g = rng();
        let d = LogNormal::from_mean_std(10.0, 3.0);
        let xs = d.sample_n(&mut g, 200_000);
        let (m, s) = mean_std(&xs);
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((s - 3.0).abs() < 0.1, "std {s}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut g = rng();
        let d = Exponential::new(0.25);
        let xs = d.sample_n(&mut g, 100_000);
        let (m, _) = mean_std(&xs);
        assert!((m - 4.0).abs() < 0.08, "mean {m}");
    }

    #[test]
    fn pareto_support() {
        let mut g = rng();
        let d = Pareto::new(2.0, 1.5);
        let xs = d.sample_n(&mut g, 10_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Heavy tail: max should be much bigger than the min.
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 20.0, "max {max} suspiciously small for a Pareto");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut g = rng();
        let d = Bernoulli::new(0.3);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut g)).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "freq {f}");
    }

    #[test]
    fn categorical_pmf_normalized() {
        let d = Categorical::new(&[2.0, 6.0, 2.0]);
        assert!((d.pmf(0) - 0.2).abs() < 1e-12);
        assert!((d.pmf(1) - 0.6).abs() < 1e-12);
        assert!((d.pmf(2) - 0.2).abs() < 1e-12);
        assert!((d.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_sampling_matches_pmf() {
        let mut g = rng();
        let d = Categorical::new(&[1.0, 2.0, 3.0, 4.0]);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample(&mut g)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            let p = d.pmf(i);
            assert!((f - p).abs() < 0.01, "cat {i}: freq {f} vs pmf {p}");
        }
    }

    #[test]
    fn categorical_degenerate_weight() {
        let mut g = rng();
        let d = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut g), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_empty_panics() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn categorical_zero_weights_panic() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }
}
