//! Series utilities: correlation measures and exponential smoothing.
//!
//! [`pearson`]/[`spearman`] quantify relationships between experiment
//! outputs (e.g. the second-order-bias ablation correlates DR error with
//! the DM×IPS error product), and [`Ewma`] smooths noisy load proxies
//! before change-point detection — raw per-request backlog series are
//! integer-jumpy and benefit from light smoothing.

/// Pearson (linear) correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample is constant (the coefficient is
/// undefined there; zero is the conventional, safe value for ranking use).
///
/// # Panics
/// Panics on length mismatch or fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation length mismatch");
    assert!(xs.len() >= 2, "correlation needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Average ranks, with ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on average ranks; ties get mean
/// ranks). Robust to monotone but non-linear relationships — the right
/// tool for "does DR error *increase with* the error product" claims.
///
/// # Panics
/// Panics on length mismatch or fewer than two points.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (1 = no smoothing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates a smoother.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, state: None }
    }

    /// Feeds one observation, returning the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.state {
            None => x,
            Some(s) => self.alpha * x + (1.0 - self.alpha) * s,
        };
        self.state = Some(next);
        next
    }

    /// The current smoothed value, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Smooths an entire series.
    pub fn smooth(alpha: f64, xs: &[f64]) -> Vec<f64> {
        let mut e = Ewma::new(alpha);
        xs.iter().map(|&x| e.update(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let cubes: Vec<f64> = xs.iter().map(|x: &f64| x.powi(3)).collect();
        assert!((spearman(&xs, &cubes) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&xs, &cubes) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 6.0, 7.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // And ranks assign the tied pair its mean rank 1.5.
        assert_eq!(ranks(&xs), vec![1.5, 1.5, 3.0, 4.0]);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        let mut last = 0.0;
        for _ in 0..100 {
            last = e.update(5.0);
        }
        assert!((last - 5.0).abs() < 1e-9);
        assert_eq!(e.value(), Some(last));
    }

    #[test]
    fn ewma_first_value_passthrough_and_smooths_jumps() {
        let smoothed = Ewma::smooth(0.2, &[10.0, 0.0, 0.0, 0.0]);
        assert_eq!(smoothed[0], 10.0);
        assert!((smoothed[1] - 8.0).abs() < 1e-12);
        assert!(smoothed[3] < smoothed[1]);
        // alpha = 1 is the identity.
        assert_eq!(Ewma::smooth(1.0, &[3.0, 7.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }
}
