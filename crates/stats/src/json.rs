//! Minimal, dependency-free JSON: a document model, a strict parser and a
//! writer whose output is byte-compatible with what `serde_json` (with the
//! `float_roundtrip` feature) produced for this workspace's wire formats.
//!
//! The workspace's hermetic-build policy (README §"Hermetic build") forbids
//! crates.io dependencies, so trace persistence (`ddn-trace`) and bench
//! telemetry (`ddn-bench`) serialize through this module instead of serde.
//!
//! Design notes:
//!
//! - [`Json`] distinguishes integer literals ([`Json::Int`]) from general
//!   numbers ([`Json::Num`]). The distinction carries deserialization
//!   semantics: `ddn-trace` stores categorical feature codes as integers
//!   and numeric features as floats, and `3` vs `3.0` is exactly how the
//!   old serde wire format told them apart (serde's untagged enum tried
//!   `u32` before `f64`).
//! - Objects preserve insertion order, so writers control field order and
//!   round-trips are stable.
//! - The writer formats finite whole-valued floats with a trailing `.0`
//!   (`10.0`, not `10`), matching serde_json's Ryū output; everything else
//!   uses Rust's shortest-round-trip `Display`, so `parse(write(x)) == x`
//!   bit-for-bit for every finite `f64`. Non-finite floats serialize as
//!   `null`, as serde_json's serializer did.
//! - The parser is total: any input byte sequence returns `Ok` or a
//!   positioned [`JsonError`], never a panic, with a nesting-depth limit
//!   guarding against stack exhaustion on adversarial input.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays/objects combined).
/// Matches serde_json's default recursion limit.
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written as an integer literal (no `.`, `e` or `E`) that
    /// fits in `i64`.
    Int(i64),
    /// Any other number (fractional, exponent-form, or outside `i64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; field order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or from shape-checking accessors: carries a
/// message and, for parse errors, the byte offset of the offending input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    pos: Option<usize>,
}

impl JsonError {
    /// Creates a shape/validation error (no input position).
    pub fn msg(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            pos: None,
        }
    }

    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Self {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    /// Byte offset in the input where parsing failed, when applicable.
    pub fn position(&self) -> Option<usize> {
        self.pos
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at byte {p}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ---- construction helpers ------------------------------------------

    /// An object from `(key, value)` pairs, preserving order.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    // ---- accessors ------------------------------------------------------

    /// The numeric value, accepting both [`Json::Int`] and [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The integer value, only for integer literals.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer value as `u64`, only for non-negative integer literals.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The object fields.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    // ---- checked accessors for deserializers ----------------------------

    /// `get(key)` or a descriptive error naming the expected field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))
    }

    /// `as_f64` or a descriptive error.
    pub fn expect_f64(&self, what: &str) -> Result<f64, JsonError> {
        self.as_f64()
            .ok_or_else(|| JsonError::msg(format!("expected number for {what}")))
    }

    /// Non-negative integer literal fitting `u32`, or a descriptive error.
    pub fn expect_u32(&self, what: &str) -> Result<u32, JsonError> {
        self.as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| JsonError::msg(format!("expected u32 for {what}")))
    }

    /// `as_str` or a descriptive error.
    pub fn expect_str(&self, what: &str) -> Result<&str, JsonError> {
        self.as_str()
            .ok_or_else(|| JsonError::msg(format!("expected string for {what}")))
    }

    /// `as_array` or a descriptive error.
    pub fn expect_array(&self, what: &str) -> Result<&[Json], JsonError> {
        self.as_array()
            .ok_or_else(|| JsonError::msg(format!("expected array for {what}")))
    }

    /// `as_object` or a descriptive error.
    pub fn expect_object(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        self.as_object()
            .ok_or_else(|| JsonError::msg(format!("expected object for {what}")))
    }

    // ---- writing --------------------------------------------------------

    /// Serializes to a compact JSON string (no whitespace), serde_json
    /// byte-compatible for the values this workspace writes.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ---- parsing --------------------------------------------------------

    /// Parses one JSON document, requiring the whole input be consumed
    /// (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

/// Formats a float the way serde_json's Ryū-based serializer did: finite
/// whole values keep a trailing `.0`; non-finite values become `null`;
/// everything else uses Rust's shortest-round-trip formatting.
fn write_f64(x: f64, out: &mut String) {
    use fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                format!("expected `{}`", char::from(b)),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            None => Err(JsonError::at("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::at(
                format!("unexpected character `{}`", char::from(b)),
                self.pos,
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 (it's a &str) and we only stopped on
                // ASCII boundaries, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => {
                    return Err(JsonError::at("control character in string", self.pos));
                }
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self
            .peek()
            .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a low surrogate pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(JsonError::at("invalid low surrogate", self.pos));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code)
                            .ok_or_else(|| JsonError::at("invalid surrogate pair", self.pos))?
                    } else {
                        return Err(JsonError::at("unpaired surrogate", self.pos));
                    }
                } else {
                    char::from_u32(hi)
                        .ok_or_else(|| JsonError::at("invalid \\u escape", self.pos))?
                };
                out.push(c);
            }
            _ => return Err(JsonError::at("invalid escape character", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(JsonError::at("invalid hex digit in \\u escape", self.pos)),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at("invalid number", self.pos)),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("digit required after `.`", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("digit required in exponent", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at("unparseable number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (txt, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-7", Json::Int(-7)),
            ("10.0", Json::Num(10.0)),
            ("0.5", Json::Num(0.5)),
            ("-0.25", Json::Num(-0.25)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(txt).unwrap(), v, "{txt}");
            assert_eq!(v.to_string(), txt, "{txt}");
        }
    }

    #[test]
    fn int_vs_float_literal_distinction() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::parse("3e0").unwrap(), Json::Num(3.0));
        // Beyond i64: still a number, not an error.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        // serde_json (Ryū) prints whole floats with a trailing .0 and keeps
        // shortest-round-trip digits otherwise.
        for (x, expect) in [
            (10.0, "10.0"),
            (0.5, "0.5"),
            (-2.0, "-2.0"),
            (0.1, "0.1"),
            (1.0 / 3.0, "0.3333333333333333"),
            (35.5, "35.5"),
        ] {
            assert_eq!(Json::Num(x).to_string(), expect);
        }
    }

    #[test]
    fn every_finite_float_roundtrips_exactly() {
        let mut g = crate::rng::Xoshiro256::seed_from(99);
        use crate::rng::Rng;
        for _ in 0..20_000 {
            let x = f64::from_bits(g.next_u64());
            if !x.is_finite() {
                continue;
            }
            let s = Json::Num(x).to_string();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r\u{1}ünicode🎉";
        let written = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&written).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83c\\udf89\"").unwrap(),
            Json::Str("Aé🎉".into())
        );
        assert!(Json::parse("\"\\ud83c\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::object(vec![
            ("a", Json::Array(vec![Json::Int(1), Json::Num(2.5)])),
            ("b", Json::object(vec![("c", Json::Null)])),
        ]);
        let s = v.to_string();
        assert_eq!(s, "{\"a\":[1,2.5],\"b\":{\"c\":null}}");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn object_accessors() {
        let v = Json::parse("{\"x\":1,\"y\":\"z\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_i64(), Some(1));
        assert_eq!(v.field("y").unwrap().as_str(), Some("z"));
        assert!(v.field("missing").is_err());
        assert!(v.expect_f64("v").is_err());
        assert_eq!(v.get("x").unwrap().expect_u32("x").unwrap(), 1);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "{", "[", "[1,", "{\"a\"}", "{\"a\":}", "01", "1.", "1e", "+1", "nul", "tru",
            "\"", "\"\\q\"", "[1 2]", "{1:2}", "1 2", "--1", "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] }\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        let deep = "[".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = Json::parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }
}
