//! Paired and two-sample t-tests.
//!
//! The Figure 7 experiments run every estimator on the *same* seeds, so
//! "is DR actually better than WISE?" is a **paired** comparison — the
//! per-run error differences are the sample, which removes the large
//! between-seed variance component. This module implements the paired
//! t-test (and Welch's unpaired variant) with an exact Student-t CDF via
//! the regularized incomplete beta function, all hand-rolled.

/// Outcome of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean difference (first sample minus second).
    pub mean_diff: f64,
}

impl TTest {
    /// Whether the difference is significant at level `alpha` (two-sided).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Continued fraction for the regularized incomplete beta (Numerical
/// Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `P(|T| >= |t|)`.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    // P(|T| >= t) = I_{df/(df+t^2)}(df/2, 1/2).
    incomplete_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// Paired t-test of `a` vs `b` (same length, same experimental units —
/// e.g. per-seed errors of two estimators).
///
/// # Panics
/// Panics on length mismatch or fewer than two pairs.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert_eq!(a.len(), b.len(), "paired test needs equal lengths");
    assert!(a.len() >= 2, "paired test needs at least two pairs");
    let n = a.len() as f64;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let df = n - 1.0;
    if var == 0.0 {
        // All differences identical: either exactly zero (p = 1) or a
        // deterministic nonzero shift (p -> 0).
        let p = if mean == 0.0 { 1.0 } else { 0.0 };
        return TTest {
            t: if mean == 0.0 { 0.0 } else { f64::INFINITY },
            df,
            p_two_sided: p,
            mean_diff: mean,
        };
    }
    let t = mean / (var / n).sqrt();
    TTest {
        t,
        df,
        p_two_sided: t_two_sided_p(t, df),
        mean_diff: mean,
    }
}

/// Welch's unpaired two-sample t-test (unequal variances).
///
/// # Panics
/// Panics if either sample has fewer than two points.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "each sample needs at least two points"
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let ma = a.iter().sum::<f64>() / na;
    let mb = b.iter().sum::<f64>() / nb;
    let va = a.iter().map(|x| (x - ma).powi(2)).sum::<f64>() / (na - 1.0);
    let vb = b.iter().map(|x| (x - mb).powi(2)).sum::<f64>() / (nb - 1.0);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        let diff = ma - mb;
        let p = if diff == 0.0 { 1.0 } else { 0.0 };
        return TTest {
            t: if diff == 0.0 { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_two_sided: p,
            mean_diff: diff,
        };
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    TTest {
        t,
        df,
        p_two_sided: t_two_sided_p(t, df),
        mean_diff: ma - mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Xoshiro256;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let v = incomplete_beta(2.5, 4.0, 0.3);
        let w = 1.0 - incomplete_beta(4.0, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_reference_values() {
        // df=1 (Cauchy): P(|T|>=1) = 0.5 exactly.
        assert!((t_two_sided_p(1.0, 1.0) - 0.5).abs() < 1e-10);
        // df=10, t=2.228...: the classic 0.05 two-sided critical value.
        assert!((t_two_sided_p(2.228, 10.0) - 0.05).abs() < 5e-4);
        // Large df approaches the normal: t=1.96 → ~0.05.
        assert!((t_two_sided_p(1.96, 10_000.0) - 0.05).abs() < 2e-3);
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        let mut g = Xoshiro256::seed_from(1);
        let noise = Normal::new(0.0, 1.0);
        // Same seeds, b consistently 0.5 worse than a.
        let a: Vec<f64> = noise.sample_n(&mut g, 40);
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        let t = paired_t_test(&a, &b);
        assert!((t.mean_diff + 0.5).abs() < 1e-12);
        assert!(
            t.significant(0.001),
            "a constant shift must be overwhelming: p={}",
            t.p_two_sided
        );
        // Welch on the same data is far weaker: the shared noise dominates.
        let w = welch_t_test(&a, &b);
        assert!(w.p_two_sided > t.p_two_sided);
    }

    #[test]
    fn paired_test_accepts_null() {
        let mut g = Xoshiro256::seed_from(2);
        let noise = Normal::new(0.0, 1.0);
        let a: Vec<f64> = noise.sample_n(&mut g, 50);
        let b: Vec<f64> = a.iter().map(|x| x + noise.sample(&mut g) * 0.5).collect();
        let t = paired_t_test(&a, &b);
        assert!(
            t.p_two_sided > 0.01,
            "pure noise should rarely look significant"
        );
    }

    #[test]
    fn degenerate_cases() {
        let t = paired_t_test(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(t.p_two_sided, 1.0);
        let t = paired_t_test(&[2.0, 3.0, 4.0], &[1.0, 2.0, 3.0]);
        assert_eq!(t.p_two_sided, 0.0);
    }

    #[test]
    fn welch_separates_clearly_different_means() {
        let mut g = Xoshiro256::seed_from(3);
        let a = Normal::new(0.0, 1.0).sample_n(&mut g, 60);
        let b = Normal::new(2.0, 1.5).sample_n(&mut g, 40);
        let t = welch_t_test(&a, &b);
        assert!(t.significant(1e-6));
        assert!(t.mean_diff < -1.5);
    }
}
