//! The CFA world (paper Figure 5 / Figure 7c).
//!
//! "Given the video quality of previously seen clients who have been
//! randomly assigned to a set of available CDNs and bitrates, CFA
//! evaluates the video quality of a different client-CDN/bitrate
//! assignment by using only the data of clients who use the same
//! CDNs/bitrates" — the matching estimator whose variance Figure 7c
//! measures, against a DR estimator whose DM is "a k-NN model trained by
//! the trace".
//!
//! The world: clients carry categorical features (city, device,
//! connection type) plus optional irrelevant noise features (for the
//! dimensionality ablation); decisions are the CDN × bitrate product; the
//! quality surface has CDN-city affinities and connection-dependent
//! bitrate penalties so that no single marginal explains it.

use ddn_policy::Policy;
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// Parameters of the CFA world.
#[derive(Debug, Clone, PartialEq)]
pub struct CfaConfig {
    /// Number of cities (categorical feature).
    pub cities: usize,
    /// Number of device types (categorical feature).
    pub devices: usize,
    /// Number of connection types (categorical; index 0 = wired,
    /// higher = increasingly bandwidth-constrained).
    pub connections: usize,
    /// Number of CDNs.
    pub cdns: usize,
    /// Number of bitrate levels.
    pub bitrates: usize,
    /// Extra *irrelevant* categorical features (each with 4 levels) —
    /// the §2.2.2 curse-of-dimensionality dial.
    pub noise_features: usize,
    /// Observation noise standard deviation (quality points).
    pub noise_std: f64,
}

impl Default for CfaConfig {
    fn default() -> Self {
        Self {
            cities: 6,
            devices: 3,
            connections: 2,
            cdns: 3,
            bitrates: 4,
            noise_features: 0,
            noise_std: 0.3,
        }
    }
}

impl CfaConfig {
    /// Validates parameters.
    ///
    /// # Panics
    /// Panics on empty dimensions or negative noise.
    pub fn validate(&self) {
        assert!(
            self.cities > 0 && self.devices > 0 && self.connections > 0,
            "feature dimensions must be positive"
        );
        assert!(
            self.cdns > 0 && self.bitrates > 0,
            "decision dimensions must be positive"
        );
        assert!(self.noise_std >= 0.0, "noise must be ≥ 0");
    }
}

/// The CFA video-QoE world.
#[derive(Debug, Clone)]
pub struct CfaWorld {
    config: CfaConfig,
    schema: ContextSchema,
    space: DecisionSpace,
    /// `affinity[city][cdn]`: quality bonus of that CDN in that city.
    affinity: Vec<Vec<f64>>,
    /// Per-CDN base quality.
    cdn_base: Vec<f64>,
    /// Per-device quality offset.
    device_offset: Vec<f64>,
}

impl CfaWorld {
    /// Builds a world whose quality tables are drawn deterministically
    /// from `seed`.
    pub fn new(config: CfaConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = Xoshiro256::seed_from(seed);
        let mut builder = ContextSchema::builder()
            .categorical("city", config.cities as u32)
            .categorical("device", config.devices as u32)
            .categorical("conn", config.connections as u32);
        for i in 0..config.noise_features {
            builder = builder.categorical(&format!("noise{i}"), 4);
        }
        let schema = builder.build();
        let cdn_names: Vec<String> = (0..config.cdns).map(|c| format!("cdn{c}")).collect();
        let br_names: Vec<String> = (0..config.bitrates).map(|b| format!("br{b}")).collect();
        let space = DecisionSpace::product(
            &cdn_names.iter().map(String::as_str).collect::<Vec<_>>(),
            &br_names.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let affinity = (0..config.cities)
            .map(|_| (0..config.cdns).map(|_| rng.range_f64(-1.0, 1.0)).collect())
            .collect();
        let cdn_base = (0..config.cdns).map(|_| rng.range_f64(2.0, 3.0)).collect();
        let device_offset = (0..config.devices)
            .map(|_| rng.range_f64(-0.3, 0.3))
            .collect();
        Self {
            config,
            schema,
            space,
            affinity,
            cdn_base,
            device_offset,
        }
    }

    /// The context schema.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The CDN × bitrate decision space.
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &CfaConfig {
        &self.config
    }

    /// Decomposes a decision into (cdn, bitrate).
    pub fn cdn_bitrate(&self, d: Decision) -> (usize, usize) {
        (
            d.index() / self.config.bitrates,
            d.index() % self.config.bitrates,
        )
    }

    /// Ground-truth mean quality for a client and decision.
    ///
    /// Quality = CDN base + city-CDN affinity + device offset + bitrate
    /// utility − congestion penalty when a constrained connection streams
    /// a high bitrate (an interaction no marginal captures).
    pub fn mean_quality(&self, ctx: &Context, d: Decision) -> f64 {
        let (cdn, br) = self.cdn_bitrate(d);
        let city = ctx.cat(0) as usize;
        let device = ctx.cat(1) as usize;
        let conn = ctx.cat(2) as usize;
        let bitrate_utility = 0.5 * br as f64;
        let congestion = if conn > 0 && br >= self.config.bitrates - 1 {
            1.5 * conn as f64
        } else {
            0.0
        };
        self.cdn_base[cdn] + self.affinity[city][cdn] + self.device_offset[device] + bitrate_utility
            - congestion
    }

    /// Samples a client population of size `n` (uniform over feature
    /// combinations).
    pub fn sample_clients(&self, n: usize, rng: &mut dyn Rng) -> Vec<Context> {
        (0..n)
            .map(|_| {
                let mut b = Context::build(&self.schema)
                    .set_cat("city", rng.index(self.config.cities) as u32)
                    .set_cat("device", rng.index(self.config.devices) as u32)
                    .set_cat("conn", rng.index(self.config.connections) as u32);
                for i in 0..self.config.noise_features {
                    b = b.set_cat(&format!("noise{i}"), rng.index(4) as u32);
                }
                b.finish()
            })
            .collect()
    }

    /// Logs a trace under `policy` (CFA's own data collection used a
    /// uniformly random policy).
    pub fn log_trace(&self, clients: &[Context], policy: &dyn Policy, seed: u64) -> Trace {
        assert!(!clients.is_empty(), "need at least one client");
        let mut rng = Xoshiro256::seed_from(seed);
        let noise = Normal::new(0.0, self.config.noise_std);
        let records = clients
            .iter()
            .map(|ctx| {
                let (d, p) = policy.sample_with_prob(ctx, &mut rng);
                let q = self.mean_quality(ctx, d) + noise.sample(&mut rng);
                TraceRecord::new(ctx.clone(), d, q).with_propensity(p)
            })
            .collect();
        Trace::from_records(self.schema.clone(), self.space.clone(), records)
            .expect("CFA world emits valid traces")
    }

    /// Exact expected quality of `policy` over a client population.
    pub fn true_value(&self, clients: &[Context], policy: &dyn Policy) -> f64 {
        let total: f64 = clients
            .iter()
            .map(|ctx| {
                self.space
                    .iter()
                    .map(|d| policy.prob(ctx, d) * self.mean_quality(ctx, d))
                    .sum::<f64>()
            })
            .sum();
        total / clients.len() as f64
    }

    /// The "new assignment" of Figure 5: a deterministic policy that picks,
    /// per client, the truly best CDN/bitrate — the kind of optimized
    /// assignment CFA would produce and want to evaluate offline.
    pub fn greedy_policy(&self) -> CfaGreedy {
        CfaGreedy {
            world: self.clone(),
        }
    }
}

/// Per-client argmax-of-true-quality policy. See
/// [`CfaWorld::greedy_policy`].
#[derive(Debug, Clone)]
pub struct CfaGreedy {
    world: CfaWorld,
}

impl Policy for CfaGreedy {
    fn space(&self) -> &DecisionSpace {
        &self.world.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        let mut best = 0;
        let mut best_q = f64::NEG_INFINITY;
        for cand in self.world.space.iter() {
            let q = self.world.mean_quality(ctx, cand);
            if q > best_q {
                best_q = q;
                best = cand.index();
            }
        }
        if d.index() == best {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::UniformRandomPolicy;

    fn world() -> CfaWorld {
        CfaWorld::new(CfaConfig::default(), 11)
    }

    #[test]
    fn decision_space_is_product() {
        let w = world();
        assert_eq!(w.space().len(), 12);
        assert_eq!(w.cdn_bitrate(Decision::from_index(0)), (0, 0));
        assert_eq!(w.cdn_bitrate(Decision::from_index(5)), (1, 1));
        assert_eq!(w.space().name(5), "cdn1/br1");
    }

    #[test]
    fn congestion_interaction_present() {
        // On a constrained connection, the top bitrate loses quality
        // relative to the next one down; on wired it gains.
        let w = world();
        let mut rng = Xoshiro256::seed_from(1);
        let clients = w.sample_clients(200, &mut rng);
        let wired = clients.iter().find(|c| c.cat(2) == 0).unwrap();
        let cell = clients.iter().find(|c| c.cat(2) == 1).unwrap();
        let top = Decision::from_index(3); // cdn0/br3
        let mid = Decision::from_index(2); // cdn0/br2
        assert!(w.mean_quality(wired, top) > w.mean_quality(wired, mid));
        assert!(w.mean_quality(cell, top) < w.mean_quality(cell, mid));
    }

    #[test]
    fn greedy_policy_beats_uniform() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(2);
        let clients = w.sample_clients(1000, &mut rng);
        let uni = UniformRandomPolicy::new(w.space().clone());
        let greedy = w.greedy_policy();
        assert!(w.true_value(&clients, &greedy) > w.true_value(&clients, &uni) + 0.5);
    }

    #[test]
    fn log_trace_uniform_propensities() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(3);
        let clients = w.sample_clients(500, &mut rng);
        let uni = UniformRandomPolicy::new(w.space().clone());
        let t = w.log_trace(&clients, &uni, 4);
        assert_eq!(t.len(), 500);
        assert!(t
            .records()
            .iter()
            .all(|r| (r.propensity.unwrap() - 1.0 / 12.0).abs() < 1e-12));
    }

    #[test]
    fn empirical_mean_near_truth() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(5);
        let clients = w.sample_clients(5000, &mut rng);
        let uni = UniformRandomPolicy::new(w.space().clone());
        let t = w.log_trace(&clients, &uni, 6);
        let truth = w.true_value(&clients, &uni);
        assert!((t.mean_reward() - truth).abs() < 0.05);
    }

    #[test]
    fn noise_features_extend_schema() {
        let w = CfaWorld::new(
            CfaConfig {
                noise_features: 3,
                ..Default::default()
            },
            7,
        );
        assert_eq!(w.schema().len(), 6);
        let mut rng = Xoshiro256::seed_from(8);
        let clients = w.sample_clients(10, &mut rng);
        // Noise features don't change quality.
        let c = &clients[0];
        let d = Decision::from_index(0);
        let q1 = w.mean_quality(c, d);
        // Build the same client with different noise values.
        let mut b = Context::build(w.schema())
            .set_cat("city", c.cat(0))
            .set_cat("device", c.cat(1))
            .set_cat("conn", c.cat(2));
        for i in 0..3 {
            b = b.set_cat(&format!("noise{i}"), (c.cat(3 + i) + 1) % 4);
        }
        let c2 = b.finish();
        assert_eq!(w.mean_quality(&c2, d), q1);
    }

    #[test]
    fn world_deterministic_in_seed() {
        let a = CfaWorld::new(CfaConfig::default(), 9);
        let b = CfaWorld::new(CfaConfig::default(), 9);
        let mut rng = Xoshiro256::seed_from(1);
        let c = a.sample_clients(1, &mut rng)[0].clone();
        assert_eq!(
            a.mean_quality(&c, Decision::from_index(7)),
            b.mean_quality(&c, Decision::from_index(7))
        );
    }
}
