//! The WISE what-if world (paper Figure 4 / Figure 7a).
//!
//! "Suppose each request from ISP-1 and ISP-2 can choose one of two
//! frontend clusters (FE-1, FE-2) and one of two backend clusters (BE-1,
//! BE-2). … The ground truth in the example is that the response time of a
//! request from ISP-1 is high only when it uses BE-1 **and** FE-1."
//!
//! The Figure 7a trace skew (§4.2): "We simulate 500 clients for each
//! measurement (arrow) in Figure 4, and 5 clients for each remaining
//! choice of backend and frontend not shown." The new policy "uses the
//! same traffic pattern, except that 50% of ISP-1 clients use FE-1 and
//! BE-2."

use ddn_policy::Policy;
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::Xoshiro256;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// Number of ISPs / frontends / backends in the Figure 4 world.
const TWO: usize = 2;

/// Parameters of the WISE world.
#[derive(Debug, Clone, PartialEq)]
pub struct WiseConfig {
    /// Response time (ms) of the slow conjunction (ISP-1, FE-1, BE-1).
    pub long_ms: f64,
    /// Response time (ms) of every other combination.
    pub short_ms: f64,
    /// Observation noise standard deviation (ms).
    pub noise_std: f64,
    /// Clients per *observed* (arrow) cell in the logging pattern.
    pub clients_per_arrow: usize,
    /// Clients per *unobserved* cell.
    pub clients_per_rare_cell: usize,
}

impl Default for WiseConfig {
    fn default() -> Self {
        // Paper §4.2 numbers: 500 per arrow, 5 per remaining cell.
        Self {
            long_ms: 300.0,
            short_ms: 50.0,
            noise_std: 10.0,
            clients_per_arrow: 500,
            clients_per_rare_cell: 5,
        }
    }
}

impl WiseConfig {
    /// Validates parameters.
    ///
    /// # Panics
    /// Panics on non-positive times/counts or `long <= short`.
    pub fn validate(&self) {
        assert!(self.short_ms > 0.0, "short response time must be positive");
        assert!(self.long_ms > self.short_ms, "long must exceed short");
        assert!(self.noise_std >= 0.0, "noise must be ≥ 0");
        assert!(self.clients_per_arrow > 0, "need clients per arrow");
        assert!(self.clients_per_rare_cell > 0, "need clients per rare cell");
    }
}

/// The WISE world: ISP context, FE×BE composite decision, response-time
/// reward (we estimate the *average response time*, the metric WISE
/// answers what-if questions about; lower is better but the estimators
/// are direction-agnostic).
#[derive(Debug, Clone)]
pub struct WiseWorld {
    config: WiseConfig,
    schema: ContextSchema,
    space: DecisionSpace,
}

impl WiseWorld {
    /// Creates the world.
    pub fn new(config: WiseConfig) -> Self {
        config.validate();
        let schema = ContextSchema::builder()
            .categorical("isp", TWO as u32)
            .build();
        let space = DecisionSpace::product(&["fe1", "fe2"], &["be1", "be2"]);
        Self {
            config,
            schema,
            space,
        }
    }

    /// The context schema (just the ISP).
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space: `fe1/be1`, `fe1/be2`, `fe2/be1`, `fe2/be2`
    /// (decision index = fe·2 + be, matching
    /// `CbnConfig { decision_axes: \[2, 2\] }`).
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &WiseConfig {
        &self.config
    }

    /// Decomposes a decision index into (fe, be).
    pub fn fe_be(d: Decision) -> (usize, usize) {
        (d.index() / TWO, d.index() % TWO)
    }

    /// Ground-truth mean response time (ms) — long only for the
    /// (ISP-1, FE-1, BE-1) conjunction.
    pub fn mean_response(&self, isp: usize, d: Decision) -> f64 {
        let (fe, be) = Self::fe_be(d);
        if isp == 0 && fe == 0 && be == 0 {
            self.config.long_ms
        } else {
            self.config.short_ms
        }
    }

    /// Builds a request context.
    pub fn context(&self, isp: usize) -> Context {
        Context::build(&self.schema)
            .set_cat("isp", isp as u32)
            .finish()
    }

    /// The skewed old (logging) policy of Figure 7a as an explicit
    /// stochastic policy: for each ISP, mass `clients_per_arrow` on each of
    /// its two "arrow" cells and `clients_per_rare_cell` on the others.
    ///
    /// The arrows follow the traffic pattern of Figure 4: ISP-1 mostly
    /// uses (FE-1, BE-1) or (FE-2, BE-2); ISP-2 mostly uses (FE-1, BE-1)
    /// or (FE-2, BE-2) as well — so the counterfactual (FE-1, BE-2) cell
    /// is nearly unobserved for ISP-1.
    pub fn old_policy(&self) -> WisePolicy {
        let a = self.config.clients_per_arrow as f64;
        let r = self.config.clients_per_rare_cell as f64;
        // Decision order: fe1/be1, fe1/be2, fe2/be1, fe2/be2.
        let weights = [a, r, r, a];
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        WisePolicy {
            space: self.space.clone(),
            per_isp: vec![probs.clone(), probs],
        }
    }

    /// The Figure 7a new policy: "the same traffic pattern, except that
    /// 50% of ISP-1 clients use FE-1 and BE-2."
    pub fn new_policy(&self) -> WisePolicy {
        let old = self.old_policy();
        let mut isp1 = old.per_isp[0].iter().map(|p| 0.5 * p).collect::<Vec<_>>();
        isp1[1] += 0.5; // index 1 = fe1/be2
        WisePolicy {
            space: self.space.clone(),
            per_isp: vec![isp1, old.per_isp[1].clone()],
        }
    }

    /// The client population of one experiment: every ISP contributes
    /// `clients_per_arrow·2 + clients_per_rare_cell·2` requests (matching
    /// the logging pattern's total mass).
    pub fn population(&self) -> Vec<usize> {
        let per_isp = 2 * self.config.clients_per_arrow + 2 * self.config.clients_per_rare_cell;
        let mut isps = Vec::with_capacity(per_isp * TWO);
        for isp in 0..TWO {
            isps.extend(std::iter::repeat_n(isp, per_isp));
        }
        isps
    }

    /// Logs a trace: each client's decision is sampled from `policy`, the
    /// response time observed with noise.
    pub fn log_trace(&self, clients: &[usize], policy: &dyn Policy, seed: u64) -> Trace {
        assert!(!clients.is_empty(), "need at least one client");
        let mut rng = Xoshiro256::seed_from(seed);
        let noise = Normal::new(0.0, self.config.noise_std);
        let records = clients
            .iter()
            .map(|&isp| {
                let ctx = self.context(isp);
                let (d, p) = policy.sample_with_prob(&ctx, &mut rng);
                let resp = self.mean_response(isp, d) + noise.sample(&mut rng);
                TraceRecord::new(ctx, d, resp).with_propensity(p)
            })
            .collect();
        Trace::from_records(self.schema.clone(), self.space.clone(), records)
            .expect("WISE world emits valid traces")
    }

    /// Exact expected average response time of `policy` over a client
    /// population (noise is zero-mean).
    pub fn true_value(&self, clients: &[usize], policy: &dyn Policy) -> f64 {
        let total: f64 = clients
            .iter()
            .map(|&isp| {
                let ctx = self.context(isp);
                self.space
                    .iter()
                    .map(|d| policy.prob(&ctx, d) * self.mean_response(isp, d))
                    .sum::<f64>()
            })
            .sum();
        total / clients.len() as f64
    }
}

/// A per-ISP categorical policy over the four FE×BE decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct WisePolicy {
    space: DecisionSpace,
    per_isp: Vec<Vec<f64>>,
}

impl Policy for WisePolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.per_isp[ctx.cat(0) as usize][d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> WiseWorld {
        WiseWorld::new(WiseConfig::default())
    }

    #[test]
    fn ground_truth_conjunction() {
        let w = world();
        assert_eq!(w.mean_response(0, Decision::from_index(0)), 300.0); // isp1 fe1 be1
        assert_eq!(w.mean_response(0, Decision::from_index(1)), 50.0); // isp1 fe1 be2
        assert_eq!(w.mean_response(0, Decision::from_index(2)), 50.0); // isp1 fe2 be1
        assert_eq!(w.mean_response(1, Decision::from_index(0)), 50.0); // isp2 fe1 be1
    }

    #[test]
    fn decision_axis_mapping() {
        assert_eq!(WiseWorld::fe_be(Decision::from_index(0)), (0, 0));
        assert_eq!(WiseWorld::fe_be(Decision::from_index(1)), (0, 1));
        assert_eq!(WiseWorld::fe_be(Decision::from_index(2)), (1, 0));
        assert_eq!(WiseWorld::fe_be(Decision::from_index(3)), (1, 1));
        let w = world();
        assert_eq!(w.space().name(1), "fe1/be2");
    }

    #[test]
    fn old_policy_mass_matches_pattern() {
        let w = world();
        let p = w.old_policy();
        let ctx = w.context(0);
        // 500/1010 on arrows, 5/1010 on rare cells.
        assert!((p.prob(&ctx, Decision::from_index(0)) - 500.0 / 1010.0).abs() < 1e-12);
        assert!((p.prob(&ctx, Decision::from_index(1)) - 5.0 / 1010.0).abs() < 1e-12);
        let total: f64 = w.space().iter().map(|d| p.prob(&ctx, d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn new_policy_moves_half_of_isp1() {
        let w = world();
        let p = w.new_policy();
        let isp1 = w.context(0);
        let isp2 = w.context(1);
        assert!(p.prob(&isp1, Decision::from_index(1)) > 0.5);
        let total: f64 = w.space().iter().map(|d| p.prob(&isp1, d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // ISP-2 unchanged.
        let old = w.old_policy();
        for d in w.space().iter() {
            assert_eq!(p.prob(&isp2, d), old.prob(&isp2, d));
        }
    }

    #[test]
    fn new_policy_is_faster_for_isp1() {
        // Moving ISP-1 traffic off the slow conjunction reduces the true
        // average response time.
        let w = world();
        let pop = w.population();
        let v_old = w.true_value(&pop, &w.old_policy());
        let v_new = w.true_value(&pop, &w.new_policy());
        assert!(
            v_new < v_old,
            "new policy {v_new} should be faster than old {v_old}"
        );
    }

    #[test]
    fn trace_counts_roughly_match_pattern() {
        let w = world();
        let pop = w.population();
        let t = w.log_trace(&pop, &w.old_policy(), 3);
        assert_eq!(t.len(), 2 * 1010);
        let mut isp1_counts = [0usize; 4];
        for r in t.records() {
            if r.context.cat(0) == 0 {
                isp1_counts[r.decision.index()] += 1;
            }
        }
        assert!(isp1_counts[0] > 400, "{isp1_counts:?}");
        assert!(isp1_counts[3] > 400, "{isp1_counts:?}");
        assert!(isp1_counts[1] < 30, "{isp1_counts:?}");
        assert!(isp1_counts[2] < 30, "{isp1_counts:?}");
    }

    #[test]
    fn empirical_mean_near_analytic_truth() {
        let w = world();
        let pop = w.population();
        let t = w.log_trace(&pop, &w.old_policy(), 5);
        let analytic = w.true_value(&pop, &w.old_policy());
        assert!((t.mean_reward() - analytic).abs() < 5.0);
    }
}
