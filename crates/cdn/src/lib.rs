//! # ddn-cdn — CDN substrates: the WISE and CFA worlds
//!
//! Two synthetic-but-faithful CDN environments backing the paper's
//! Figure 7a and 7c experiments:
//!
//! - [`wise`] — the Figure 4 what-if world: requests from two ISPs choose
//!   a frontend and a backend cluster; response time is long only for the
//!   conjunction (ISP-1, FE-1, BE-1). The skewed logging pattern (500
//!   clients per observed arrow, 5 per unobserved cell) makes a
//!   count-based CBN learn the wrong structure, and Figure 7a measures the
//!   resulting evaluation error.
//! - [`cfa`] — the Figure 5 world: feature-rich video clients assigned to
//!   CDN × bitrate decisions by a uniformly random logging policy (CFA's
//!   randomized data collection); evaluation of a new deterministic
//!   assignment by decision matching is unbiased but high-variance, and
//!   Figure 7c measures how much a DR estimator (k-NN DM + correction)
//!   tightens it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfa;
pub mod wise;

pub use cfa::{CfaConfig, CfaWorld};
pub use wise::{WiseConfig, WiseWorld};
