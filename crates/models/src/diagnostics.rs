//! Model-quality diagnostics.
//!
//! §2.2.1's model-misspecification pitfall is invisible if you never check
//! the model against held-out data. [`ModelDiagnostics`] computes in-trace
//! fit metrics so experiments (and users) can correlate model error with
//! estimator error — the heart of the second-order-bias ablation.

use crate::traits::RewardModel;
use ddn_trace::Trace;

/// Fit quality of a reward model over a trace (on the *logged* decisions —
/// counterfactual cells are by definition unobservable here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelDiagnostics {
    /// Mean squared prediction error on logged (context, decision, reward)
    /// tuples.
    pub mse: f64,
    /// Mean absolute error on logged tuples.
    pub mae: f64,
    /// Mean signed residual (observed − predicted); a large magnitude
    /// signals systematic bias, the hallmark of misspecification.
    pub bias: f64,
    /// R²: 1 − RSS/TSS (can be negative for models worse than the mean).
    pub r_squared: f64,
    /// Number of records scored.
    pub n: usize,
}

impl ModelDiagnostics {
    /// Scores `model` against the observed rewards of `trace`.
    pub fn evaluate<M: RewardModel + ?Sized>(model: &M, trace: &Trace) -> Self {
        let n = trace.len();
        let mean_reward = trace.mean_reward();
        let mut sse = 0.0;
        let mut sae = 0.0;
        let mut sres = 0.0;
        let mut tss = 0.0;
        for r in trace.records() {
            let pred = model.predict(&r.context, r.decision);
            let res = r.reward - pred;
            sse += res * res;
            sae += res.abs();
            sres += res;
            tss += (r.reward - mean_reward).powi(2);
        }
        let nf = n as f64;
        Self {
            mse: sse / nf,
            mae: sae / nf,
            bias: sres / nf,
            r_squared: if tss > 0.0 { 1.0 - sse / tss } else { 1.0 },
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{ConstantModel, FnModel};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};

    fn trace() -> Trace {
        let s = ContextSchema::builder().numeric("x").build();
        let recs = (0..10)
            .map(|i| {
                let x = i as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                TraceRecord::new(c, Decision::from_index(0), 2.0 * x)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap()
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let m = FnModel::new(|c: &Context, _| 2.0 * c.num(0));
        let d = ModelDiagnostics::evaluate(&m, &trace());
        assert_eq!(d.mse, 0.0);
        assert_eq!(d.mae, 0.0);
        assert_eq!(d.bias, 0.0);
        assert_eq!(d.r_squared, 1.0);
        assert_eq!(d.n, 10);
    }

    #[test]
    fn mean_model_has_zero_r_squared() {
        let t = trace();
        let m = ConstantModel::new(t.mean_reward());
        let d = ModelDiagnostics::evaluate(&m, &t);
        assert!(d.r_squared.abs() < 1e-12);
        assert!(d.bias.abs() < 1e-12);
        assert!(d.mse > 0.0);
    }

    #[test]
    fn biased_model_shows_signed_residual() {
        let m = FnModel::new(|c: &Context, _| 2.0 * c.num(0) - 3.0); // systematically low
        let d = ModelDiagnostics::evaluate(&m, &trace());
        assert!((d.bias - 3.0).abs() < 1e-12);
        assert!((d.mae - 3.0).abs() < 1e-12);
    }
}
