//! # ddn-models — hand-rolled reward models
//!
//! The Direct Method (paper §3) "uses a reward model r̂(c, d) to predict the
//! reward of any client c and decision d". Model misspecification is the
//! paper's first pitfall (§2.2.1), so this crate provides a spectrum of
//! reward models — from the deliberately fragile to the reasonably robust —
//! all implemented from scratch:
//!
//! - [`TabularMeanModel`] — per-(context, decision) cell means with
//!   shrinkage toward coarser aggregates; the simplest DM.
//! - [`KnnRegressor`] — k-nearest-neighbour regression (paper ref \[25\]),
//!   the model CFA's evaluator is paired with in Figure 7c.
//! - [`RidgeModel`] — linear (one-hot) ridge regression per decision,
//!   solved by Cholesky on the normal equations.
//! - [`TreeRegressor`] — CART regression tree with variance-reduction
//!   splits.
//! - [`CausalBayesNet`] — a discrete causal Bayesian network in the style
//!   of WISE (paper ref \[38\]): it *learns which features the reward depends
//!   on* by BIC scoring, and with sparse traces learns the wrong structure —
//!   exactly the Figure 4 pitfall that Figure 7a quantifies.
//!
//! All models implement [`RewardModel`], the interface `ddn-estimators`
//! consumes for DM and DR estimation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbn;
pub mod cv;
pub mod diagnostics;
pub mod encode;
pub mod forest;
pub mod isotonic;
pub mod knn;
pub mod ridge;
pub mod tabular;
pub mod traits;
pub mod tree;

pub use cbn::{CausalBayesNet, CbnConfig};
pub use cv::{cross_validate, select_model, CvScore};
pub use diagnostics::ModelDiagnostics;
pub use encode::OneHotEncoder;
pub use forest::{ForestConfig, ForestRegressor};
pub use isotonic::{CalibratedModel, Isotonic};
pub use knn::{KnnConfig, KnnRegressor};
pub use ridge::RidgeModel;
pub use tabular::TabularMeanModel;
pub use traits::{ConstantModel, FnModel, RewardModel};
pub use tree::{TreeConfig, TreeRegressor};
