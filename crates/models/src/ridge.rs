//! Ridge (L2-regularized linear) regression reward model.
//!
//! One independent linear model per decision, fit by solving the normal
//! equations `(XᵀX + λI) w = Xᵀy` with the Cholesky solver from
//! `ddn-stats::linalg`. A linear model is the canonical *misspecifiable*
//! DM: when the true reward surface is non-linear in the features (as in
//! the WISE world, where reward depends on a conjunction of features), a
//! linear DM is biased no matter how much data it sees — which is exactly
//! when DR's IPS correction earns its keep.

use crate::encode::OneHotEncoder;
use crate::traits::RewardModel;
use ddn_stats::linalg::{dot, Matrix};
use ddn_trace::{Context, Decision, Trace};

/// Per-decision ridge regression.
#[derive(Debug, Clone)]
pub struct RidgeModel {
    encoder: OneHotEncoder,
    weights: Vec<Option<Vec<f64>>>, // None when the decision had no data
    fallback: f64,
    lambda: f64,
}

impl RidgeModel {
    /// Fits one ridge regression per decision with regularization
    /// `lambda > 0` and z-standardized numeric features.
    ///
    /// # Panics
    /// Panics unless `lambda > 0` (λ = 0 can make the normal equations
    /// singular for one-hot designs; use a tiny λ instead).
    pub fn fit(trace: &Trace, lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive, got {lambda}"
        );
        let schema = trace.schema();
        let stats = OneHotEncoder::stats_of(schema, trace.records().iter().map(|r| &r.context));
        let encoder = OneHotEncoder::new(schema, Some(stats));
        let k = trace.space().len();
        let p = encoder.width();

        let mut weights = Vec::with_capacity(k);
        for d in 0..k {
            let rows: Vec<(&Context, f64)> = trace
                .records()
                .iter()
                .filter(|r| r.decision.index() == d)
                .map(|r| (&r.context, r.reward))
                .collect();
            if rows.is_empty() {
                weights.push(None);
                continue;
            }
            let data: Vec<f64> = rows.iter().flat_map(|(c, _)| encoder.encode(c)).collect();
            let x = Matrix::from_rows(rows.len(), p, data);
            let y: Vec<f64> = rows.iter().map(|(_, r)| *r).collect();
            let mut gram = x.gram();
            gram.add_diagonal(lambda);
            let xty = x.transpose_mul_vec(&y);
            match gram.cholesky_solve(&xty) {
                Some(w) => weights.push(Some(w)),
                None => weights.push(None),
            }
        }
        let fallback = trace.mean_reward();
        Self {
            encoder,
            weights,
            fallback,
            lambda,
        }
    }

    /// The regularization strength used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The fitted coefficient vector for decision `d`, if that decision had
    /// training data.
    pub fn coefficients(&self, d: Decision) -> Option<&[f64]> {
        self.weights.get(d.index()).and_then(|w| w.as_deref())
    }
}

impl RewardModel for RidgeModel {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        match self.weights.get(d.index()).and_then(|w| w.as_ref()) {
            Some(w) => dot(&self.encoder.encode(ctx), w),
            None => self.fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    fn linear_trace(n: usize, slope: f64, intercept: f64) -> (Trace, ContextSchema) {
        let s = ContextSchema::builder().numeric("x").build();
        let recs = (0..n)
            .map(|i| {
                let x = i as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                TraceRecord::new(c, Decision::from_index(0), slope * x + intercept)
            })
            .collect();
        (
            Trace::from_records(s.clone(), DecisionSpace::of(&["a", "b"]), recs).unwrap(),
            s,
        )
    }

    #[test]
    fn recovers_linear_relationship() {
        let (t, s) = linear_trace(50, 2.0, 1.0);
        let m = RidgeModel::fit(&t, 1e-6);
        for &x in &[0.0, 10.0, 49.0, 100.0] {
            let c = Context::build(&s).set_numeric("x", x).finish();
            let pred = m.predict(&c, Decision::from_index(0));
            assert!(
                (pred - (2.0 * x + 1.0)).abs() < 1e-3,
                "x={x}: predicted {pred}, expected {}",
                2.0 * x + 1.0
            );
        }
    }

    #[test]
    fn unseen_decision_uses_fallback() {
        let (t, s) = linear_trace(10, 1.0, 0.0);
        let m = RidgeModel::fit(&t, 1e-6);
        let c = Context::build(&s).set_numeric("x", 3.0).finish();
        assert!((m.predict(&c, Decision::from_index(1)) - t.mean_reward()).abs() < 1e-12);
        assert!(m.coefficients(Decision::from_index(1)).is_none());
        assert!(m.coefficients(Decision::from_index(0)).is_some());
    }

    #[test]
    fn heavy_regularization_shrinks_slope() {
        let (t, s) = linear_trace(20, 2.0, 0.0);
        let light = RidgeModel::fit(&t, 1e-6);
        let heavy = RidgeModel::fit(&t, 1e6);
        let c_far = Context::build(&s).set_numeric("x", 19.0).finish();
        let c_near = Context::build(&s).set_numeric("x", 9.5).finish();
        let slope_light = light.predict(&c_far, Decision::from_index(0))
            - light.predict(&c_near, Decision::from_index(0));
        let slope_heavy = heavy.predict(&c_far, Decision::from_index(0))
            - heavy.predict(&c_near, Decision::from_index(0));
        assert!(slope_heavy.abs() < slope_light.abs() / 10.0);
    }

    #[test]
    fn one_hot_categorical_means() {
        // Reward depends on a category; ridge with one-hot should recover
        // per-category means.
        let s = ContextSchema::builder().categorical("g", 2).build();
        let recs: Vec<TraceRecord> = (0..40)
            .map(|i| {
                let g = (i % 2) as u32;
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(0), if g == 0 { 1.0 } else { 5.0 })
            })
            .collect();
        let t = Trace::from_records(s.clone(), DecisionSpace::of(&["a"]), recs).unwrap();
        let m = RidgeModel::fit(&t, 1e-6);
        let c0 = Context::build(&s).set_cat("g", 0).finish();
        let c1 = Context::build(&s).set_cat("g", 1).finish();
        assert!((m.predict(&c0, Decision::from_index(0)) - 1.0).abs() < 1e-3);
        assert!((m.predict(&c1, Decision::from_index(0)) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn linear_model_misspecified_on_xor() {
        // XOR-style conjunction reward (the WISE pattern): a linear model
        // cannot represent it; verify it is indeed biased.
        let s = ContextSchema::builder()
            .categorical("a", 2)
            .categorical("b", 2)
            .build();
        let mut recs = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for _ in 0..25 {
                    let c = Context::build(&s).set_cat("a", a).set_cat("b", b).finish();
                    let r = if a == b { 1.0 } else { 0.0 }; // XOR-complement
                    recs.push(TraceRecord::new(c, Decision::from_index(0), r));
                }
            }
        }
        let t = Trace::from_records(s.clone(), DecisionSpace::of(&["d"]), recs).unwrap();
        let m = RidgeModel::fit(&t, 1e-6);
        let c = Context::build(&s).set_cat("a", 0).set_cat("b", 0).finish();
        let pred = m.predict(&c, Decision::from_index(0));
        // The best linear fit of XOR is the constant 0.5 — far from truth 1.0.
        assert!(
            (pred - 0.5).abs() < 0.05,
            "linear model should flatline at 0.5, got {pred}"
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let (t, _) = linear_trace(5, 1.0, 0.0);
        let _ = RidgeModel::fit(&t, 0.0);
    }
}
