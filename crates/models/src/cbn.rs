//! A discrete causal-Bayesian-network-style reward model in the spirit of
//! WISE (paper ref \[38\], §2.2.1).
//!
//! WISE "builds a Causal Bayesian Network to capture the effect of
//! different CDN configurations on average response time". The operative
//! behaviour — and the pitfall Figure 4 illustrates — is *structure
//! learning*: from the trace, the model infers **which variables the
//! reward depends on**, then predicts with the conditional mean given
//! those parents. When the trace is small or skewed, the learned parent
//! set is incomplete ("WISE infers an incomplete CBN") and predictions for
//! counterfactual configurations are systematically wrong.
//!
//! [`CausalBayesNet`] reproduces this faithfully:
//!
//! 1. Candidate parents are the categorical context features, quantile-
//!    binned numeric features, and the *decision axes* (a composite
//!    decision like FE×BE is decomposed into independent axes so structure
//!    learning can include one axis but miss the other).
//! 2. The reward node's parent set is chosen by greedy forward selection
//!    under the Gaussian BIC score.
//! 3. Prediction is the empirical mean reward conditioned on the selected
//!    parents' configuration, falling back to the global mean for unseen
//!    configurations.

use crate::traits::RewardModel;
use ddn_trace::{Context, Decision, FeatureKind, Trace};
use std::collections::HashMap;

/// Configuration for [`CausalBayesNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct CbnConfig {
    /// Cardinalities of the decision axes. Their product must equal the
    /// decision-space size; the flat decision index is decomposed in
    /// row-major (last axis fastest) mixed radix. `None` treats the whole
    /// decision as a single axis.
    pub decision_axes: Option<Vec<usize>>,
    /// Number of quantile bins for numeric features.
    pub numeric_bins: usize,
    /// Maximum number of parents the reward node may acquire.
    pub max_parents: usize,
}

impl Default for CbnConfig {
    fn default() -> Self {
        Self {
            decision_axes: None,
            numeric_bins: 4,
            max_parents: 4,
        }
    }
}

/// A candidate parent variable of the reward node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// A context feature (by schema index).
    Feature(usize),
    /// One axis of the (possibly composite) decision.
    DecisionAxis(usize),
}

/// The fitted model. See module docs.
#[derive(Debug, Clone)]
pub struct CausalBayesNet {
    parents: Vec<Var>,
    table: HashMap<Vec<u32>, (f64, f64)>, // config -> (sum, count)
    global_mean: f64,
    axes: Vec<usize>,
    numeric_cuts: Vec<Vec<f64>>, // per feature: bin upper edges (empty for categorical)
}

impl CausalBayesNet {
    /// Fits the network on a trace.
    ///
    /// # Panics
    /// Panics if the decision axes don't multiply to the decision-space
    /// size, or `numeric_bins == 0`.
    pub fn fit(trace: &Trace, cfg: &CbnConfig) -> Self {
        assert!(cfg.numeric_bins > 0, "numeric_bins must be positive");
        let space_len = trace.space().len();
        let axes = match &cfg.decision_axes {
            Some(a) => {
                let prod: usize = a.iter().product();
                assert_eq!(
                    prod, space_len,
                    "decision axes product {prod} must equal decision-space size {space_len}"
                );
                a.clone()
            }
            None => vec![space_len],
        };

        // Quantile cuts for numeric features.
        let schema = trace.schema();
        let numeric_cuts: Vec<Vec<f64>> = schema
            .kinds()
            .iter()
            .enumerate()
            .map(|(i, k)| match k {
                FeatureKind::Categorical { .. } => Vec::new(),
                FeatureKind::Numeric => {
                    let mut vals: Vec<f64> =
                        trace.records().iter().map(|r| r.context.num(i)).collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
                    (1..cfg.numeric_bins)
                        .map(|b| {
                            let pos = b * vals.len() / cfg.numeric_bins;
                            vals[pos.min(vals.len() - 1)]
                        })
                        .collect()
                }
            })
            .collect();

        let candidates: Vec<Var> = (0..schema.len())
            .map(Var::Feature)
            .chain((0..axes.len()).map(Var::DecisionAxis))
            .collect();

        let n = trace.len();
        let global_mean = trace.mean_reward();

        // Extract each record's value for each candidate var once.
        let values: Vec<Vec<u32>> = trace
            .records()
            .iter()
            .map(|r| {
                candidates
                    .iter()
                    .map(|v| var_value(*v, &r.context, r.decision, &axes, &numeric_cuts))
                    .collect()
            })
            .collect();
        let rewards: Vec<f64> = trace.records().iter().map(|r| r.reward).collect();

        // Greedy forward selection by BIC.
        let mut selected: Vec<usize> = Vec::new(); // indices into `candidates`
        let mut best_bic = bic_for(&selected, &values, &rewards);
        loop {
            if selected.len() >= cfg.max_parents {
                break;
            }
            let mut improvement: Option<(usize, f64)> = None;
            for (ci, _) in candidates.iter().enumerate() {
                if selected.contains(&ci) {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(ci);
                let score = bic_for(&trial, &values, &rewards);
                if score < best_bic && improvement.is_none_or(|(_, s)| score < s) {
                    improvement = Some((ci, score));
                }
            }
            match improvement {
                Some((ci, score)) => {
                    selected.push(ci);
                    best_bic = score;
                }
                None => break,
            }
        }

        // Build the conditional mean table over the selected parents.
        let parents: Vec<Var> = selected.iter().map(|&ci| candidates[ci]).collect();
        let mut table: HashMap<Vec<u32>, (f64, f64)> = HashMap::new();
        for k in 0..n {
            let config: Vec<u32> = selected.iter().map(|&ci| values[k][ci]).collect();
            let e = table.entry(config).or_insert((0.0, 0.0));
            e.0 += rewards[k];
            e.1 += 1.0;
        }

        Self {
            parents,
            table,
            global_mean,
            axes,
            numeric_cuts,
        }
    }

    /// The learned parent set of the reward node.
    pub fn parents(&self) -> &[Var] {
        &self.parents
    }

    /// Whether the learned structure includes the given variable.
    pub fn depends_on(&self, v: Var) -> bool {
        self.parents.contains(&v)
    }

    /// Number of parent configurations observed at fit time.
    pub fn configurations(&self) -> usize {
        self.table.len()
    }
}

/// Value of a candidate variable for one (context, decision) pair.
fn var_value(v: Var, ctx: &Context, d: Decision, axes: &[usize], numeric_cuts: &[Vec<f64>]) -> u32 {
    match v {
        Var::Feature(i) => match ctx.get(i) {
            ddn_trace::FeatureValue::Cat(c) => c,
            ddn_trace::FeatureValue::Num(x) => {
                let cuts = &numeric_cuts[i];
                cuts.iter().take_while(|&&c| x > c).count() as u32
            }
        },
        Var::DecisionAxis(a) => {
            // Row-major mixed radix: last axis varies fastest.
            let mut idx = d.index();
            for &radix in &axes[(a + 1)..] {
                idx /= radix;
            }
            (idx % axes[a]) as u32
        }
    }
}

/// Gaussian BIC of predicting rewards by the conditional mean given the
/// configuration of the chosen variables. Lower is better.
fn bic_for(chosen: &[usize], values: &[Vec<u32>], rewards: &[f64]) -> f64 {
    let n = rewards.len();
    let mut groups: HashMap<Vec<u32>, (f64, f64, f64)> = HashMap::new(); // (sum, sumsq, count)
    for k in 0..n {
        let config: Vec<u32> = chosen.iter().map(|&ci| values[k][ci]).collect();
        let e = groups.entry(config).or_insert((0.0, 0.0, 0.0));
        e.0 += rewards[k];
        e.1 += rewards[k] * rewards[k];
        e.2 += 1.0;
    }
    let rss: f64 = groups
        .values()
        .map(|&(s, ss, c)| (ss - s * s / c).max(0.0))
        .sum();
    let params = groups.len() as f64;
    let nf = n as f64;
    nf * (rss / nf).max(1e-12).ln() + params * nf.ln()
}

impl RewardModel for CausalBayesNet {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        let config: Vec<u32> = self
            .parents
            .iter()
            .map(|v| var_value(*v, ctx, d, &self.axes, &self.numeric_cuts))
            .collect();
        match self.table.get(&config) {
            Some(&(sum, count)) => sum / count,
            None => self.global_mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    /// WISE-like world: ISP context feature, FE×BE composite decision,
    /// response time long only for (ISP-1, FE-1, BE-1). Rewards = −latency.
    fn wise_schema() -> ContextSchema {
        ContextSchema::builder().categorical("isp", 2).build()
    }

    fn wise_space() -> DecisionSpace {
        DecisionSpace::product(&["fe1", "fe2"], &["be1", "be2"])
    }

    fn wise_reward(isp: u32, fe: u32, be: u32, rng: &mut dyn Rng) -> f64 {
        let long = isp == 0 && fe == 0 && be == 0;
        let base = if long { -10.0 } else { -1.0 };
        base + 0.1 * (rng.next_f64() - 0.5)
    }

    fn wise_trace(per_cell: usize, seed: u64) -> Trace {
        let s = wise_schema();
        let sp = wise_space();
        let mut rng = Xoshiro256::seed_from(seed);
        let mut recs = Vec::new();
        for isp in 0..2u32 {
            for fe in 0..2u32 {
                for be in 0..2u32 {
                    for _ in 0..per_cell {
                        let c = Context::build(&s).set_cat("isp", isp).finish();
                        let d = Decision::from_index((fe * 2 + be) as usize);
                        recs.push(TraceRecord::new(c, d, wise_reward(isp, fe, be, &mut rng)));
                    }
                }
            }
        }
        Trace::from_records(s, sp, recs).unwrap()
    }

    #[test]
    fn learns_full_structure_with_ample_balanced_data() {
        let t = wise_trace(100, 1);
        let cfg = CbnConfig {
            decision_axes: Some(vec![2, 2]),
            ..Default::default()
        };
        let m = CausalBayesNet::fit(&t, &cfg);
        assert!(m.depends_on(Var::Feature(0)), "parents: {:?}", m.parents());
        assert!(
            m.depends_on(Var::DecisionAxis(0)),
            "parents: {:?}",
            m.parents()
        );
        assert!(
            m.depends_on(Var::DecisionAxis(1)),
            "parents: {:?}",
            m.parents()
        );

        // Predictions match ground truth.
        let s = wise_schema();
        let c_isp1 = Context::build(&s).set_cat("isp", 0).finish();
        let long = m.predict(&c_isp1, Decision::from_index(0)); // fe1/be1
        let short = m.predict(&c_isp1, Decision::from_index(1)); // fe1/be2
        assert!(long < -8.0, "long path {long}");
        assert!(short > -2.0, "short path {short}");
    }

    #[test]
    fn decision_axis_decomposition() {
        let axes = vec![2usize, 3usize];
        let cuts: Vec<Vec<f64>> = vec![];
        let s = ContextSchema::builder().build();
        let ctx = Context::from_values(&s, vec![]);
        // Flat index 5 = (fe=1, be=2) in row-major with be fastest.
        let fe = var_value(
            Var::DecisionAxis(0),
            &ctx,
            Decision::from_index(5),
            &axes,
            &cuts,
        );
        let be = var_value(
            Var::DecisionAxis(1),
            &ctx,
            Decision::from_index(5),
            &axes,
            &cuts,
        );
        assert_eq!((fe, be), (1, 2));
        let fe = var_value(
            Var::DecisionAxis(0),
            &ctx,
            Decision::from_index(2),
            &axes,
            &cuts,
        );
        let be = var_value(
            Var::DecisionAxis(1),
            &ctx,
            Decision::from_index(2),
            &axes,
            &cuts,
        );
        assert_eq!((fe, be), (0, 2));
    }

    #[test]
    fn numeric_features_are_binned() {
        let s = ContextSchema::builder().numeric("x").build();
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| {
                let x = i as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                // Reward jumps at x = 50.
                TraceRecord::new(c, Decision::from_index(0), if x < 50.0 { 0.0 } else { 1.0 })
            })
            .collect();
        let t = Trace::from_records(s.clone(), DecisionSpace::of(&["d"]), recs).unwrap();
        let m = CausalBayesNet::fit(
            &t,
            &CbnConfig {
                numeric_bins: 2,
                ..Default::default()
            },
        );
        assert!(m.depends_on(Var::Feature(0)));
        let lo = Context::build(&s).set_numeric("x", 10.0).finish();
        let hi = Context::build(&s).set_numeric("x", 90.0).finish();
        assert!(m.predict(&lo, Decision::from_index(0)) < 0.2);
        assert!(m.predict(&hi, Decision::from_index(0)) > 0.8);
    }

    #[test]
    fn irrelevant_features_excluded() {
        let s = ContextSchema::builder()
            .categorical("sig", 2)
            .categorical("noise", 2)
            .build();
        let mut rng = Xoshiro256::seed_from(9);
        let recs: Vec<TraceRecord> = (0..400)
            .map(|_| {
                let sig = rng.index(2) as u32;
                let noise = rng.index(2) as u32;
                let c = Context::build(&s)
                    .set_cat("sig", sig)
                    .set_cat("noise", noise)
                    .finish();
                let r = sig as f64 * 5.0 + 0.01 * (rng.next_f64() - 0.5);
                TraceRecord::new(c, Decision::from_index(0), r)
            })
            .collect();
        let t = Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap();
        let m = CausalBayesNet::fit(&t, &CbnConfig::default());
        assert!(m.depends_on(Var::Feature(0)));
        assert!(
            !m.depends_on(Var::Feature(1)),
            "noise feature selected: {:?}",
            m.parents()
        );
    }

    #[test]
    fn unseen_configuration_falls_back_to_global_mean() {
        // Only ISP-0 in the trace; query ISP-1.
        let s = wise_schema();
        let mut rng = Xoshiro256::seed_from(2);
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| {
                let c = Context::build(&s).set_cat("isp", 0).finish();
                let d = Decision::from_index(i % 4);
                let r = wise_reward(0, (i % 4) as u32 / 2, (i % 4) as u32 % 2, &mut rng);
                TraceRecord::new(c, d, r)
            })
            .collect();
        let t = Trace::from_records(s.clone(), wise_space(), recs).unwrap();
        let cfg = CbnConfig {
            decision_axes: Some(vec![2, 2]),
            ..Default::default()
        };
        let m = CausalBayesNet::fit(&t, &cfg);
        let c1 = Context::build(&s).set_cat("isp", 1).finish();
        let pred = m.predict(&c1, Decision::from_index(0));
        assert!(pred.is_finite());
    }

    #[test]
    fn max_parents_caps_structure() {
        let t = wise_trace(50, 3);
        let cfg = CbnConfig {
            decision_axes: Some(vec![2, 2]),
            max_parents: 1,
            ..Default::default()
        };
        let m = CausalBayesNet::fit(&t, &cfg);
        assert!(m.parents().len() <= 1);
    }
}
