//! One-hot feature encoding shared by the linear models.

use ddn_trace::{Context, ContextSchema, FeatureKind};

/// Encodes contexts into dense design-matrix rows: categorical features are
/// one-hot expanded, numeric features are passed through (optionally
/// z-standardized), and a bias/intercept column is appended.
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    kinds: Vec<FeatureKind>,
    num_mean: Vec<f64>,
    num_std: Vec<f64>,
    width: usize,
}

impl OneHotEncoder {
    /// Builds an encoder for `schema`. `numeric_stats` optionally supplies
    /// `(mean, std)` per feature (ignored entries for categorical
    /// features); when `None`, numeric features pass through unscaled.
    pub fn new(schema: &ContextSchema, numeric_stats: Option<(Vec<f64>, Vec<f64>)>) -> Self {
        let kinds = schema.kinds().to_vec();
        let width = 1 + kinds
            .iter()
            .map(|k| match k {
                FeatureKind::Categorical { cardinality } => *cardinality as usize,
                FeatureKind::Numeric => 1,
            })
            .sum::<usize>();
        let (num_mean, num_std) = match numeric_stats {
            Some((m, s)) => {
                assert_eq!(m.len(), kinds.len(), "mean vector length mismatch");
                assert_eq!(s.len(), kinds.len(), "std vector length mismatch");
                (
                    m,
                    s.into_iter()
                        .map(|x| if x > 1e-12 { x } else { 1.0 })
                        .collect(),
                )
            }
            None => (vec![0.0; kinds.len()], vec![1.0; kinds.len()]),
        };
        Self {
            kinds,
            num_mean,
            num_std,
            width,
        }
    }

    /// Computes per-feature mean/std of the numeric features over contexts,
    /// for use as `numeric_stats`.
    pub fn stats_of<'a>(
        schema: &ContextSchema,
        contexts: impl Iterator<Item = &'a Context>,
    ) -> (Vec<f64>, Vec<f64>) {
        let dim = schema.len();
        let mut mean = vec![0.0; dim];
        let mut var = vec![0.0; dim];
        let mut n = 0.0;
        let rows: Vec<Vec<f64>> = contexts.map(|c| c.dense()).collect();
        for row in &rows {
            n += 1.0;
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        if n > 0.0 {
            for m in &mut mean {
                *m /= n;
            }
            for row in &rows {
                for (v, (x, m)) in var.iter_mut().zip(row.iter().zip(&mean)) {
                    *v += (x - m).powi(2);
                }
            }
            for v in &mut var {
                *v = (*v / n).sqrt();
            }
        }
        (mean, var)
    }

    /// Width of encoded rows (including the intercept column).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes one context.
    pub fn encode(&self, ctx: &Context) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.width);
        row.push(1.0); // intercept
        for (i, kind) in self.kinds.iter().enumerate() {
            match kind {
                FeatureKind::Categorical { cardinality } => {
                    let code = ctx.cat(i) as usize;
                    for j in 0..*cardinality as usize {
                        row.push(if j == code { 1.0 } else { 0.0 });
                    }
                }
                FeatureKind::Numeric => {
                    row.push((ctx.num(i) - self.num_mean[i]) / self.num_std[i]);
                }
            }
        }
        debug_assert_eq!(row.len(), self.width);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::ContextSchema;

    #[test]
    fn encodes_mixed_features() {
        let s = ContextSchema::builder()
            .categorical("c", 3)
            .numeric("x")
            .build();
        let enc = OneHotEncoder::new(&s, None);
        assert_eq!(enc.width(), 1 + 3 + 1);
        let ctx = Context::build(&s)
            .set_cat("c", 1)
            .set_numeric("x", 2.5)
            .finish();
        assert_eq!(enc.encode(&ctx), vec![1.0, 0.0, 1.0, 0.0, 2.5]);
    }

    #[test]
    fn standardizes_numeric() {
        let s = ContextSchema::builder().numeric("x").build();
        let enc = OneHotEncoder::new(&s, Some((vec![10.0], vec![2.0])));
        let ctx = Context::build(&s).set_numeric("x", 14.0).finish();
        assert_eq!(enc.encode(&ctx), vec![1.0, 2.0]);
    }

    #[test]
    fn stats_of_computes_mean_std() {
        let s = ContextSchema::builder().numeric("x").build();
        let c1 = Context::build(&s).set_numeric("x", 2.0).finish();
        let c2 = Context::build(&s).set_numeric("x", 6.0).finish();
        let (mean, std) = OneHotEncoder::stats_of(&s, [&c1, &c2].into_iter());
        assert_eq!(mean, vec![4.0]);
        assert_eq!(std, vec![2.0]);
    }

    #[test]
    fn zero_std_degrades_gracefully() {
        let s = ContextSchema::builder().numeric("x").build();
        let enc = OneHotEncoder::new(&s, Some((vec![5.0], vec![0.0])));
        let ctx = Context::build(&s).set_numeric("x", 5.0).finish();
        // std floored to 1.0 → encoded as 0.0, not NaN.
        assert_eq!(enc.encode(&ctx), vec![1.0, 0.0]);
    }
}
