//! Bagged regression forest.
//!
//! An ensemble of CART trees ([`crate::TreeRegressor`]) fitted on
//! bootstrap resamples of the trace. Averaging decorrelated trees cuts the
//! variance of a single deep tree — useful as a stronger Direct-Method
//! model in the data-scarce regimes of §2.2.1, while remaining entirely
//! hand-rolled (no external ML dependencies).

use crate::traits::RewardModel;
use crate::tree::{TreeConfig, TreeRegressor};
use ddn_stats::rng::{Rng, SplitMix64};
use ddn_trace::{Context, Decision, Trace, TraceRecord};

/// Configuration for [`ForestRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree CART configuration.
    pub tree: TreeConfig,
    /// Seed for the bootstrap resampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            trees: 25,
            tree: TreeConfig::default(),
            seed: 0x0F0E,
        }
    }
}

/// Bootstrap-aggregated CART forest over `(context, decision) → reward`.
#[derive(Debug, Clone)]
pub struct ForestRegressor {
    trees: Vec<TreeRegressor>,
}

impl ForestRegressor {
    /// Fits the forest on a trace.
    ///
    /// # Panics
    /// Panics if `cfg.trees == 0`.
    pub fn fit(trace: &Trace, cfg: ForestConfig) -> Self {
        assert!(cfg.trees > 0, "forest needs at least one tree");
        let mut seeder = SplitMix64::new(cfg.seed);
        let n = trace.len();
        let trees = (0..cfg.trees)
            .map(|_| {
                let mut rng = SplitMix64::new(seeder.split());
                let sample: Vec<TraceRecord> = (0..n)
                    .map(|_| trace.records()[rng.index(n)].clone())
                    .collect();
                let boot =
                    Trace::from_records(trace.schema().clone(), trace.space().clone(), sample)
                        .expect("bootstrap of a valid trace is valid");
                TreeRegressor::fit(&boot, cfg.tree)
            })
            .collect();
        Self { trees }
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Per-tree predictions for a query — exposes the ensemble spread,
    /// a cheap epistemic-uncertainty signal for the DM.
    pub fn spread(&self, ctx: &Context, d: Decision) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(ctx, d)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }
}

impl RewardModel for ForestRegressor {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        self.trees.iter().map(|t| t.predict(ctx, d)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::ModelDiagnostics;
    use ddn_stats::dist::{Distribution, Normal};
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::{ContextSchema, DecisionSpace};

    fn noisy_step_trace(n: usize, seed: u64) -> Trace {
        let s = ContextSchema::builder().numeric("x").build();
        let mut rng = Xoshiro256::seed_from(seed);
        let noise = Normal::new(0.0, 1.0);
        let recs = (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                let r = if x < 50.0 { 0.0 } else { 10.0 } + noise.sample(&mut rng);
                TraceRecord::new(c, Decision::from_index(0), r)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap()
    }

    fn ctx(x: f64) -> Context {
        let s = ContextSchema::builder().numeric("x").build();
        Context::build(&s).set_numeric("x", x).finish()
    }

    #[test]
    fn forest_learns_the_step() {
        let t = noisy_step_trace(400, 1);
        let f = ForestRegressor::fit(&t, ForestConfig::default());
        assert!(f.predict(&ctx(10.0), Decision::from_index(0)) < 2.0);
        assert!(f.predict(&ctx(90.0), Decision::from_index(0)) > 8.0);
        assert_eq!(f.len(), 25);
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let train = noisy_step_trace(300, 2);
        let test = noisy_step_trace(300, 3);
        let tree = TreeRegressor::fit(
            &train,
            TreeConfig {
                min_leaf: 2,
                ..Default::default()
            },
        );
        let forest = ForestRegressor::fit(
            &train,
            ForestConfig {
                tree: TreeConfig {
                    min_leaf: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mse_tree = ModelDiagnostics::evaluate(&tree, &test).mse;
        let mse_forest = ModelDiagnostics::evaluate(&forest, &test).mse;
        assert!(
            mse_forest < mse_tree,
            "forest test MSE {mse_forest} should beat single tree {mse_tree}"
        );
    }

    #[test]
    fn forest_is_deterministic_in_seed() {
        let t = noisy_step_trace(100, 4);
        let a = ForestRegressor::fit(&t, ForestConfig::default());
        let b = ForestRegressor::fit(&t, ForestConfig::default());
        assert_eq!(
            a.predict(&ctx(33.0), Decision::from_index(0)),
            b.predict(&ctx(33.0), Decision::from_index(0))
        );
    }

    #[test]
    fn spread_reflects_uncertainty() {
        let t = noisy_step_trace(400, 5);
        let f = ForestRegressor::fit(&t, ForestConfig::default());
        // Near the step boundary the trees disagree more than deep inside
        // a flat region.
        let (_, sd_boundary) = f.spread(&ctx(50.0), Decision::from_index(0));
        let (_, sd_flat) = f.spread(&ctx(90.0), Decision::from_index(0));
        assert!(
            sd_boundary > sd_flat,
            "boundary spread {sd_boundary} should exceed flat-region spread {sd_flat}"
        );
    }
}
