//! Tabular cell-mean reward model with shrinkage.

use crate::traits::RewardModel;
use ddn_trace::{Context, ContextKey, Decision, Trace};
use std::collections::HashMap;

/// Per-(context, decision) mean reward with shrinkage toward coarser
/// aggregates.
///
/// Prediction for cell `(c, d)` is a precision-weighted blend of the cell
/// mean, the per-decision mean, and the global mean:
///
/// ```text
/// r̂(c,d) = (n_cd · m_cd + s · m_d) / (n_cd + s)
/// ```
///
/// where `s` is the shrinkage pseudo-count. Cells never observed fall back
/// to the per-decision mean `m_d`, and decisions never observed fall back
/// to the global mean. With `s = 0` the model is the raw empirical cell
/// mean — an unbiased but high-variance DM, the "insufficient data for
/// specific subpopulations" pitfall of paper §1 in its purest form.
#[derive(Debug, Clone)]
pub struct TabularMeanModel {
    cells: HashMap<(ContextKey, usize), (f64, f64)>, // (sum, count)
    per_decision: Vec<(f64, f64)>,
    global: (f64, f64),
    shrinkage: f64,
}

impl TabularMeanModel {
    /// Fits the model on a trace with pseudo-count `shrinkage ≥ 0`.
    ///
    /// # Panics
    /// Panics if `shrinkage` is negative or non-finite.
    pub fn fit_trace(trace: &Trace, shrinkage: f64) -> Self {
        assert!(
            shrinkage.is_finite() && shrinkage >= 0.0,
            "shrinkage must be ≥ 0"
        );
        let k = trace.space().len();
        let mut cells: HashMap<(ContextKey, usize), (f64, f64)> = HashMap::new();
        let mut per_decision = vec![(0.0, 0.0); k];
        let mut global = (0.0, 0.0);
        for r in trace.records() {
            let e = cells
                .entry((r.context.key(), r.decision.index()))
                .or_insert((0.0, 0.0));
            e.0 += r.reward;
            e.1 += 1.0;
            per_decision[r.decision.index()].0 += r.reward;
            per_decision[r.decision.index()].1 += 1.0;
            global.0 += r.reward;
            global.1 += 1.0;
        }
        Self {
            cells,
            per_decision,
            global,
            shrinkage,
        }
    }

    fn decision_mean(&self, d: usize) -> f64 {
        let (sum, n) = self.per_decision.get(d).copied().unwrap_or((0.0, 0.0));
        if n > 0.0 {
            sum / n
        } else {
            self.global_mean()
        }
    }

    /// The global mean reward of the fitting trace.
    pub fn global_mean(&self) -> f64 {
        if self.global.1 > 0.0 {
            self.global.0 / self.global.1
        } else {
            0.0
        }
    }

    /// Number of observed (context, decision) cells.
    pub fn cells_observed(&self) -> usize {
        self.cells.len()
    }
}

impl RewardModel for TabularMeanModel {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        let fallback = self.decision_mean(d.index());
        match self.cells.get(&(ctx.key(), d.index())) {
            Some(&(sum, n)) => (sum + self.shrinkage * fallback) / (n + self.shrinkage).max(1e-12),
            None => fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 3).build()
    }

    fn trace(rows: &[(u32, usize, f64)]) -> Trace {
        let s = schema();
        let recs = rows
            .iter()
            .map(|&(g, d, r)| {
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), r)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap()
    }

    fn ctx(g: u32) -> Context {
        Context::build(&schema()).set_cat("g", g).finish()
    }

    #[test]
    fn cell_mean_exact_without_shrinkage() {
        let t = trace(&[(0, 0, 1.0), (0, 0, 3.0), (0, 1, 10.0)]);
        let m = TabularMeanModel::fit_trace(&t, 0.0);
        assert!((m.predict(&ctx(0), Decision::from_index(0)) - 2.0).abs() < 1e-12);
        assert!((m.predict(&ctx(0), Decision::from_index(1)) - 10.0).abs() < 1e-12);
        assert_eq!(m.cells_observed(), 2);
    }

    #[test]
    fn unseen_cell_falls_back_to_decision_mean() {
        let t = trace(&[(0, 0, 2.0), (1, 0, 4.0), (0, 1, 8.0)]);
        let m = TabularMeanModel::fit_trace(&t, 0.0);
        // Context g=2 never seen: decision 0 mean is 3.0.
        assert!((m.predict(&ctx(2), Decision::from_index(0)) - 3.0).abs() < 1e-12);
        assert!((m.predict(&ctx(2), Decision::from_index(1)) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_decision_falls_back_to_global_mean() {
        let t = trace(&[(0, 0, 2.0), (1, 0, 4.0)]);
        let m = TabularMeanModel::fit_trace(&t, 0.0);
        assert!((m.predict(&ctx(0), Decision::from_index(1)) - 3.0).abs() < 1e-12);
        assert!((m.global_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shrinkage_pulls_toward_decision_mean() {
        // Cell (g0, d0) mean 10 from one sample; decision-0 mean is 4.
        let t = trace(&[(0, 0, 10.0), (1, 0, 1.0), (2, 0, 1.0)]);
        let raw = TabularMeanModel::fit_trace(&t, 0.0);
        let shrunk = TabularMeanModel::fit_trace(&t, 2.0);
        let p_raw = raw.predict(&ctx(0), Decision::from_index(0));
        let p_shrunk = shrunk.predict(&ctx(0), Decision::from_index(0));
        assert_eq!(p_raw, 10.0);
        assert!(p_shrunk < p_raw && p_shrunk > 4.0, "shrunk {p_shrunk}");
    }
}
