//! k-nearest-neighbour regression (paper ref \[25\]) — the reward model the
//! paper pairs with DR in the CFA experiment (Figure 7c: "The DM estimates
//! are based on a k-NN model trained by the trace").

use crate::traits::RewardModel;
use ddn_trace::{Context, Decision, Trace};

/// Configuration for [`KnnRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnConfig {
    /// Number of neighbours to average.
    pub k: usize,
    /// Whether to z-standardize features using the fitting trace's
    /// per-feature mean/std (recommended whenever numeric features are on
    /// different scales).
    pub standardize: bool,
    /// If true, only records with the queried decision are candidate
    /// neighbours (separate neighbourhoods per decision — the CFA setup);
    /// if false, records with other decisions are used as neighbours too,
    /// which borrows strength but is biased when decisions matter.
    pub match_decision: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            standardize: true,
            match_decision: true,
        }
    }
}

/// Brute-force k-NN reward regressor over dense feature vectors
/// (categorical codes cast to ℝ; exact matches dominate at distance 0).
///
/// Prediction: mean reward of the `k` nearest fitting records (among
/// those with the queried decision when `match_decision`), falling back to
/// the per-decision mean and then the global mean when no candidates exist.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    points: Vec<(Vec<f64>, usize, f64)>, // (standardized features, decision, reward)
    mean: Vec<f64>,
    std: Vec<f64>,
    per_decision_mean: Vec<Option<f64>>,
    global_mean: f64,
    cfg: KnnConfig,
}

impl KnnRegressor {
    /// Fits the regressor on a trace.
    ///
    /// # Panics
    /// Panics if `cfg.k == 0`.
    pub fn fit(trace: &Trace, cfg: KnnConfig) -> Self {
        assert!(cfg.k > 0, "k must be at least 1");
        let dim = trace.schema().len();
        let n = trace.len() as f64;

        // Feature standardization statistics.
        let mut mean = vec![0.0; dim];
        let mut std = vec![1.0; dim];
        if cfg.standardize && dim > 0 {
            for r in trace.records() {
                for (m, x) in mean.iter_mut().zip(r.context.dense()) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut var = vec![0.0; dim];
            for r in trace.records() {
                for (v, (x, m)) in var.iter_mut().zip(r.context.dense().iter().zip(&mean)) {
                    *v += (x - m).powi(2);
                }
            }
            for (s, v) in std.iter_mut().zip(var) {
                let sd = (v / n).sqrt();
                *s = if sd > 1e-12 { sd } else { 1.0 };
            }
        } else {
            mean = vec![0.0; dim];
        }

        let k_dec = trace.space().len();
        let mut dec_sum = vec![(0.0, 0.0); k_dec];
        let mut global = (0.0, 0.0);
        let points = trace
            .records()
            .iter()
            .map(|r| {
                let z: Vec<f64> = r
                    .context
                    .dense()
                    .iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(x, (m, s))| (x - m) / s)
                    .collect();
                dec_sum[r.decision.index()].0 += r.reward;
                dec_sum[r.decision.index()].1 += 1.0;
                global.0 += r.reward;
                global.1 += 1.0;
                (z, r.decision.index(), r.reward)
            })
            .collect();
        let per_decision_mean = dec_sum
            .into_iter()
            .map(|(s, c)| if c > 0.0 { Some(s / c) } else { None })
            .collect();
        Self {
            points,
            mean,
            std,
            per_decision_mean,
            global_mean: if global.1 > 0.0 {
                global.0 / global.1
            } else {
                0.0
            },
            cfg,
        }
    }

    fn standardized(&self, ctx: &Context) -> Vec<f64> {
        ctx.dense()
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// The fitted global mean reward.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

impl RewardModel for KnnRegressor {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        let q = self.standardized(ctx);
        // Collect (distance, reward) among candidates.
        let mut cand: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|(_, dec, _)| !self.cfg.match_decision || *dec == d.index())
            .map(|(z, _, r)| (sq_dist(&q, z), *r))
            .collect();
        if cand.is_empty() {
            return self
                .per_decision_mean
                .get(d.index())
                .copied()
                .flatten()
                .unwrap_or(self.global_mean);
        }
        let k = self.cfg.k.min(cand.len());
        cand.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("NaN distance in k-NN")
        });
        cand[..k].iter().map(|(_, r)| r).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().numeric("x").build()
    }

    fn trace(rows: &[(f64, usize, f64)]) -> Trace {
        let s = schema();
        let recs = rows
            .iter()
            .map(|&(x, d, r)| {
                let c = Context::build(&s).set_numeric("x", x).finish();
                TraceRecord::new(c, Decision::from_index(d), r)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap()
    }

    fn ctx(x: f64) -> Context {
        Context::build(&schema()).set_numeric("x", x).finish()
    }

    #[test]
    fn one_nn_returns_nearest_reward() {
        let t = trace(&[(0.0, 0, 1.0), (10.0, 0, 5.0)]);
        let m = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 1,
                standardize: false,
                match_decision: true,
            },
        );
        assert_eq!(m.predict(&ctx(1.0), Decision::from_index(0)), 1.0);
        assert_eq!(m.predict(&ctx(9.0), Decision::from_index(0)), 5.0);
    }

    #[test]
    fn k_averages_neighbours() {
        let t = trace(&[(0.0, 0, 1.0), (1.0, 0, 3.0), (100.0, 0, 100.0)]);
        let m = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 2,
                standardize: false,
                match_decision: true,
            },
        );
        assert!((m.predict(&ctx(0.5), Decision::from_index(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn decision_matching_separates_neighbourhoods() {
        let t = trace(&[(0.0, 0, 1.0), (0.0, 1, 9.0)]);
        let m = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 5,
                standardize: false,
                match_decision: true,
            },
        );
        assert_eq!(m.predict(&ctx(0.0), Decision::from_index(0)), 1.0);
        assert_eq!(m.predict(&ctx(0.0), Decision::from_index(1)), 9.0);
    }

    #[test]
    fn without_decision_matching_pools_everything() {
        let t = trace(&[(0.0, 0, 1.0), (0.0, 1, 9.0)]);
        let m = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 5,
                standardize: false,
                match_decision: false,
            },
        );
        assert_eq!(m.predict(&ctx(0.0), Decision::from_index(0)), 5.0);
    }

    #[test]
    fn unseen_decision_falls_back() {
        let t = trace(&[(0.0, 0, 2.0), (1.0, 0, 4.0)]);
        let m = KnnRegressor::fit(&t, KnnConfig::default());
        // Decision 1 has no data: fall back to global mean (no decision mean).
        assert!((m.predict(&ctx(0.0), Decision::from_index(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn standardization_rescales_distances() {
        // Feature x spans [0, 1000]; with standardization, x=500 is
        // equidistant in z-space from both clusters just as it is raw —
        // but a second tiny-scale feature dominates only if standardized.
        let s = ContextSchema::builder()
            .numeric("big")
            .numeric("small")
            .build();
        let mk = |b: f64, sm: f64, d: usize, r: f64| {
            let c = Context::build(&s)
                .set_numeric("big", b)
                .set_numeric("small", sm)
                .finish();
            TraceRecord::new(c, Decision::from_index(d), r)
        };
        let t = Trace::from_records(
            s.clone(),
            DecisionSpace::of(&["a"]),
            vec![
                mk(0.0, 0.0, 0, 1.0),
                mk(1000.0, 0.0, 0, 1.0),
                mk(0.0, 1.0, 0, 9.0),
                mk(1000.0, 1.0, 0, 9.0),
            ],
        )
        .unwrap();
        let m = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 2,
                standardize: true,
                match_decision: true,
            },
        );
        // Query near big=500, small=1: with standardization the two
        // small=1 points are the nearest two.
        let q = Context::build(&s)
            .set_numeric("big", 500.0)
            .set_numeric("small", 1.0)
            .finish();
        assert!((m.predict(&q, Decision::from_index(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let t = trace(&[(0.0, 0, 1.0)]);
        let _ = KnnRegressor::fit(
            &t,
            KnnConfig {
                k: 0,
                standardize: false,
                match_decision: true,
            },
        );
    }
}
