//! Isotonic regression (pool-adjacent-violators) and model calibration.
//!
//! A misspecified reward model often gets the *ordering* of rewards right
//! while being wrong about their scale — exactly the FastMPC situation,
//! where predicted QoE moves with true QoE but is systematically shifted.
//! Isotonic calibration fixes the scale without touching the ordering:
//! fit the best monotone map from model predictions to observed rewards
//! on the logged pairs, then compose it with the model. The result is a
//! better Direct Method and smaller DR residuals, at zero propensity cost.

use crate::traits::RewardModel;
use ddn_trace::{Context, Decision, Trace};

/// A fitted monotone (non-decreasing) step function.
#[derive(Debug, Clone, PartialEq)]
pub struct Isotonic {
    /// Block boundaries: the x-threshold where each fitted level begins.
    xs: Vec<f64>,
    /// Fitted level per block (non-decreasing).
    ys: Vec<f64>,
}

impl Isotonic {
    /// Fits isotonic regression of `y` on `x` by pool-adjacent-violators,
    /// minimizing squared error among all non-decreasing functions.
    ///
    /// # Panics
    /// Panics if the slices are empty, lengths mismatch, or contain NaN.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "isotonic needs paired observations");
        assert!(!x.is_empty(), "isotonic needs at least one pair");
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("NaN in isotonic x"));

        // PAV over blocks of (mean, weight, min-x).
        #[derive(Clone, Copy)]
        struct Block {
            mean: f64,
            weight: f64,
            start_x: f64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(x.len());
        for &i in &order {
            assert!(y[i].is_finite(), "NaN/inf in isotonic y");
            blocks.push(Block {
                mean: y[i],
                weight: 1.0,
                start_x: x[i],
            });
            while blocks.len() >= 2 {
                let b = blocks[blocks.len() - 1];
                let a = blocks[blocks.len() - 2];
                if a.mean <= b.mean {
                    break;
                }
                // Pool the violating pair.
                let w = a.weight + b.weight;
                let merged = Block {
                    mean: (a.mean * a.weight + b.mean * b.weight) / w,
                    weight: w,
                    start_x: a.start_x,
                };
                blocks.pop();
                blocks.pop();
                blocks.push(merged);
            }
        }
        Self {
            xs: blocks.iter().map(|b| b.start_x).collect(),
            ys: blocks.iter().map(|b| b.mean).collect(),
        }
    }

    /// Evaluates the fitted step function at `x` (constant extrapolation
    /// beyond the observed range).
    pub fn predict(&self, x: f64) -> f64 {
        // Last block whose start_x <= x; before the first block, clamp to
        // the first level.
        match self.xs.partition_point(|&t| t <= x) {
            0 => self.ys[0],
            k => self.ys[k - 1],
        }
    }

    /// Number of fitted blocks (≤ number of training points).
    pub fn blocks(&self) -> usize {
        self.ys.len()
    }
}

/// A reward model composed with an isotonic calibration map fitted on the
/// logged (prediction, observed reward) pairs.
#[derive(Debug, Clone)]
pub struct CalibratedModel<M: RewardModel> {
    inner: M,
    map: Isotonic,
}

impl<M: RewardModel> CalibratedModel<M> {
    /// Calibrates `inner` against the observed rewards of `trace`.
    pub fn fit(inner: M, trace: &Trace) -> Self {
        let preds: Vec<f64> = trace
            .records()
            .iter()
            .map(|r| inner.predict(&r.context, r.decision))
            .collect();
        let observed: Vec<f64> = trace.records().iter().map(|r| r.reward).collect();
        let map = Isotonic::fit(&preds, &observed);
        Self { inner, map }
    }

    /// The calibration map.
    pub fn map(&self) -> &Isotonic {
        &self.map
    }
}

impl<M: RewardModel> RewardModel for CalibratedModel<M> {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        self.map.predict(self.inner.predict(ctx, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::ModelDiagnostics;
    use crate::traits::FnModel;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    #[test]
    fn pav_reference_example() {
        // Classic: y = [1, 3, 2, 4] at x = [1, 2, 3, 4]: the (3, 2)
        // violation pools to 2.5.
        let iso = Isotonic::fit(&[1.0, 2.0, 3.0, 4.0], &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(iso.blocks(), 3);
        assert_eq!(iso.predict(1.0), 1.0);
        assert!((iso.predict(2.0) - 2.5).abs() < 1e-12);
        assert!((iso.predict(3.5) - 2.5).abs() < 1e-12);
        assert_eq!(iso.predict(4.0), 4.0);
        // Extrapolation clamps.
        assert_eq!(iso.predict(-10.0), 1.0);
        assert_eq!(iso.predict(100.0), 4.0);
    }

    #[test]
    fn already_monotone_data_is_untouched() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.5, 1.0, 2.0, 9.0];
        let iso = Isotonic::fit(&x, &y);
        assert_eq!(iso.blocks(), 4);
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(iso.predict(*xi), *yi);
        }
    }

    #[test]
    fn fully_decreasing_pools_to_the_mean() {
        let iso = Isotonic::fit(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert_eq!(iso.blocks(), 1);
        assert!((iso.predict(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fitted_function_is_monotone_on_random_data() {
        let mut g = Xoshiro256::seed_from(1);
        let x: Vec<f64> = (0..200).map(|_| g.range_f64(-5.0, 5.0)).collect();
        let y: Vec<f64> = (0..200).map(|_| g.range_f64(-5.0, 5.0)).collect();
        let iso = Isotonic::fit(&x, &y);
        let mut prev = f64::NEG_INFINITY;
        for i in -60..60 {
            let v = iso.predict(i as f64 / 10.0);
            assert!(v >= prev - 1e-12, "monotonicity violated at {i}");
            prev = v;
        }
    }

    #[test]
    fn calibration_fixes_a_scale_biased_model() {
        // Truth: r = 2·(g + d). Model: monotone but mis-scaled and
        // shifted: r̂ = 0.5·(g + d) − 3.
        let s = ContextSchema::builder().categorical("g", 4).build();
        let mut g = Xoshiro256::seed_from(2);
        let recs: Vec<TraceRecord> = (0..800)
            .map(|_| {
                let gv = g.index(4) as u32;
                let d = g.index(3);
                let c = Context::build(&s).set_cat("g", gv).finish();
                let r = 2.0 * (gv as f64 + d as f64) + 0.1 * (g.next_f64() - 0.5);
                TraceRecord::new(c, Decision::from_index(d), r)
            })
            .collect();
        let trace = Trace::from_records(s, DecisionSpace::of(&["a", "b", "c"]), recs).unwrap();
        let biased = FnModel::new(|c: &Context, d: Decision| {
            0.5 * (c.cat(0) as f64 + d.index() as f64) - 3.0
        });
        let raw = ModelDiagnostics::evaluate(&biased, &trace);
        let calibrated = CalibratedModel::fit(biased, &trace);
        let fixed = ModelDiagnostics::evaluate(&calibrated, &trace);
        assert!(
            fixed.mse < raw.mse / 10.0,
            "calibration should slash the MSE: {} -> {}",
            raw.mse,
            fixed.mse
        );
        assert!(fixed.bias.abs() < 0.05, "calibrated bias {}", fixed.bias);
    }

    #[test]
    #[should_panic(expected = "paired observations")]
    fn mismatched_lengths_panic() {
        let _ = Isotonic::fit(&[1.0], &[1.0, 2.0]);
    }
}
