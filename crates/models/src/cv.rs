//! K-fold cross-validation for reward-model selection.
//!
//! §2.2.1's misspecification pitfall has a practical mitigation the paper
//! leaves implicit: *measure* the model before trusting a DM/DR built on
//! it. [`cross_validate`] scores any model-fitting function by held-out
//! MSE, and [`select_model`] picks the best of a candidate set — e.g.
//! choosing `k` for the CFA k-NN or `λ` for the ridge.
//!
//! The folds are contiguous blocks (after an optional shuffle), so the
//! same machinery also supports temporal splits for non-i.i.d. traces.

use crate::traits::RewardModel;
use ddn_stats::rng::Rng;
use ddn_trace::{Trace, TraceRecord};

/// Cross-validation scores for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CvScore {
    /// Mean held-out MSE across folds.
    pub mse: f64,
    /// Per-fold held-out MSEs.
    pub per_fold: Vec<f64>,
}

/// Runs `folds`-fold cross-validation of `fit` on `trace`.
///
/// `fit` receives the training split and must return a model; the model
/// is scored by MSE on the held-out split's logged decisions. Pass a
/// `rng` to shuffle record order first (recommended for i.i.d. traces;
/// pass `None` to keep temporal order, giving forward-chained blocks).
///
/// # Panics
/// Panics if `folds < 2` or the trace has fewer records than folds.
pub fn cross_validate<M, F>(
    trace: &Trace,
    folds: usize,
    mut fit: F,
    rng: Option<&mut dyn Rng>,
) -> CvScore
where
    M: RewardModel,
    F: FnMut(&Trace) -> M,
{
    assert!(folds >= 2, "need at least two folds");
    assert!(
        trace.len() >= folds,
        "trace of {} records cannot form {} folds",
        trace.len(),
        folds
    );
    let mut order: Vec<usize> = (0..trace.len()).collect();
    if let Some(rng) = rng {
        // Fisher–Yates over the index vector.
        for i in (1..order.len()).rev() {
            let j = rng.index(i + 1);
            order.swap(i, j);
        }
    }
    let records = trace.records();
    let mut per_fold = Vec::with_capacity(folds);
    for f in 0..folds {
        let lo = f * order.len() / folds;
        let hi = (f + 1) * order.len() / folds;
        let (mut train, mut test): (Vec<TraceRecord>, Vec<TraceRecord>) = (vec![], vec![]);
        for (pos, &i) in order.iter().enumerate() {
            if pos >= lo && pos < hi {
                test.push(records[i].clone());
            } else {
                train.push(records[i].clone());
            }
        }
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let train_trace = Trace::from_records(trace.schema().clone(), trace.space().clone(), train)
            .expect("train split of a valid trace is valid");
        let model = fit(&train_trace);
        let mse = test
            .iter()
            .map(|r| (r.reward - model.predict(&r.context, r.decision)).powi(2))
            .sum::<f64>()
            / test.len() as f64;
        per_fold.push(mse);
    }
    assert!(!per_fold.is_empty(), "no scoreable folds");
    let mse = per_fold.iter().sum::<f64>() / per_fold.len() as f64;
    CvScore { mse, per_fold }
}

/// Cross-validates every candidate and returns `(best index, scores)`,
/// where best minimizes mean held-out MSE.
///
/// # Panics
/// Panics if `candidates` is empty (plus the [`cross_validate`] panics).
pub fn select_model<M, F>(
    trace: &Trace,
    folds: usize,
    candidates: Vec<F>,
    mut rng: Option<&mut dyn Rng>,
) -> (usize, Vec<CvScore>)
where
    M: RewardModel,
    F: FnMut(&Trace) -> M,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut scores: Vec<CvScore> = Vec::new();
    for fit in candidates {
        let r: Option<&mut dyn Rng> = match rng {
            Some(ref mut r) => Some(&mut **r),
            None => None,
        };
        scores.push(cross_validate(trace, folds, fit, r));
    }
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.mse.partial_cmp(&b.1.mse).expect("finite MSE"))
        .map(|(i, _)| i)
        .expect("non-empty scores");
    (best, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnConfig, KnnRegressor};
    use crate::ridge::RidgeModel;
    use crate::tabular::TabularMeanModel;
    use ddn_stats::dist::{Distribution, Normal};
    use ddn_stats::rng::Xoshiro256;
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace};

    fn linear_trace(n: usize, noise: f64, seed: u64) -> Trace {
        let s = ContextSchema::builder().numeric("x").build();
        let mut rng = Xoshiro256::seed_from(seed);
        let eps = Normal::new(0.0, noise);
        let recs = (0..n)
            .map(|i| {
                let x = (i % 50) as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                TraceRecord::new(c, Decision::from_index(0), 2.0 * x + eps.sample(&mut rng))
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap()
    }

    #[test]
    fn cv_prefers_the_right_model_class() {
        // A linear world with *unique* contexts: the tabular model can
        // only memorize, so on held-out contexts it falls back to the
        // decision mean, while ridge extrapolates the line.
        let s = ContextSchema::builder().numeric("x").build();
        let mut g = Xoshiro256::seed_from(11);
        let eps = Normal::new(0.0, 1.0);
        let recs = (0..200)
            .map(|i| {
                let x = i as f64;
                let c = Context::build(&s).set_numeric("x", x).finish();
                TraceRecord::new(c, Decision::from_index(0), 2.0 * x + eps.sample(&mut g))
            })
            .collect();
        let t = Trace::from_records(s, DecisionSpace::of(&["d"]), recs).unwrap();
        let mut rng = Xoshiro256::seed_from(2);
        let ridge = cross_validate(&t, 5, |tr| RidgeModel::fit(tr, 1e-3), Some(&mut rng));
        let mut rng2 = Xoshiro256::seed_from(2);
        let tabular = cross_validate(
            &t,
            5,
            |tr| TabularMeanModel::fit_trace(tr, 0.0),
            Some(&mut rng2),
        );
        assert!(
            ridge.mse < tabular.mse / 2.0,
            "ridge CV MSE {} should crush tabular {}",
            ridge.mse,
            tabular.mse
        );
        assert_eq!(ridge.per_fold.len(), 5);
    }

    #[test]
    fn select_model_tunes_knn_k() {
        // Noisy data: k = 1 overfits, large k underfits; CV should pick a
        // middle k over both extremes... at minimum, not pick k = 1.
        let t = linear_trace(300, 8.0, 3);
        let ks = [1usize, 5, 25];
        let mut rng = Xoshiro256::seed_from(4);
        let candidates: Vec<_> = ks
            .iter()
            .map(|&k| {
                move |tr: &Trace| {
                    KnnRegressor::fit(
                        tr,
                        KnnConfig {
                            k,
                            standardize: false,
                            match_decision: true,
                        },
                    )
                }
            })
            .collect();
        let (best, scores) = select_model(&t, 5, candidates, Some(&mut rng));
        assert_ne!(ks[best], 1, "CV chose overfit k=1; scores {scores:?}");
        assert!(scores[0].mse > scores[best].mse);
    }

    #[test]
    fn temporal_folds_without_shuffle() {
        let t = linear_trace(50, 0.5, 5);
        let score = cross_validate(&t, 5, |tr| RidgeModel::fit(tr, 1e-3), None);
        assert!(score.mse.is_finite());
        assert_eq!(score.per_fold.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let t = linear_trace(10, 0.1, 6);
        let _ = cross_validate(&t, 1, |tr| TabularMeanModel::fit_trace(tr, 0.0), None);
    }
}
