//! CART regression tree reward model.
//!
//! A variance-reduction regression tree over the context features plus the
//! decision (treated as one extra categorical dimension so the tree can
//! model decision-dependent rewards and feature×decision interactions).
//! Unlike the linear model, a deep enough tree *can* represent the WISE
//! conjunction — given enough data; with sparse traces it reproduces the
//! "unreliable model from data scarcity" pitfall of §2.2.1.

use crate::traits::RewardModel;
use ddn_trace::{Context, Decision, Trace};

/// Configuration for [`TreeRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_leaf: usize,
    /// Minimum total variance reduction for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_leaf: 5,
            min_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        /// Feature index; `usize::MAX` encodes the decision dimension.
        feature: usize,
        /// Numeric threshold: left if `x <= threshold`.
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART regression tree over `(context, decision) → reward`.
#[derive(Debug, Clone)]
pub struct TreeRegressor {
    root: Node,
    dim: usize,
}

const DECISION_FEATURE: usize = usize::MAX;

impl TreeRegressor {
    /// Fits a tree on a trace.
    ///
    /// # Panics
    /// Panics if `cfg.min_leaf == 0`.
    pub fn fit(trace: &Trace, cfg: TreeConfig) -> Self {
        assert!(cfg.min_leaf > 0, "min_leaf must be at least 1");
        let dim = trace.schema().len();
        let rows: Vec<(Vec<f64>, f64)> = trace
            .records()
            .iter()
            .map(|r| {
                let mut x = r.context.dense();
                x.push(r.decision.index() as f64);
                (x, r.reward)
            })
            .collect();
        let idx: Vec<usize> = (0..rows.len()).collect();
        let root = Self::build(&rows, idx, 0, &cfg, dim);
        Self { root, dim }
    }

    fn mean(rows: &[(Vec<f64>, f64)], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| rows[i].1).sum::<f64>() / idx.len() as f64
    }

    fn sse(rows: &[(Vec<f64>, f64)], idx: &[usize]) -> f64 {
        let m = Self::mean(rows, idx);
        idx.iter().map(|&i| (rows[i].1 - m).powi(2)).sum()
    }

    fn build(
        rows: &[(Vec<f64>, f64)],
        idx: Vec<usize>,
        depth: usize,
        cfg: &TreeConfig,
        dim: usize,
    ) -> Node {
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
            return Node::Leaf {
                value: Self::mean(rows, &idx),
            };
        }
        let parent_sse = Self::sse(rows, &idx);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        // Candidate features: context dims 0..dim plus the decision dim.
        for f in 0..=dim {
            let col = |i: usize| rows[i].0[f];
            // Candidate thresholds: midpoints between consecutive sorted
            // distinct values.
            let mut vals: Vec<f64> = idx.iter().map(|&i| col(i)).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for w in vals.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let (mut ls, mut lc, mut lss) = (0.0, 0usize, 0.0);
                let (mut rs, mut rc, mut rss) = (0.0, 0usize, 0.0);
                for &i in &idx {
                    let y = rows[i].1;
                    if col(i) <= thr {
                        ls += y;
                        lss += y * y;
                        lc += 1;
                    } else {
                        rs += y;
                        rss += y * y;
                        rc += 1;
                    }
                }
                if lc < cfg.min_leaf || rc < cfg.min_leaf {
                    continue;
                }
                let sse_l = lss - ls * ls / lc as f64;
                let sse_r = rss - rs * rs / rc as f64;
                let gain = parent_sse - sse_l - sse_r;
                if gain > cfg.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, thr, gain));
                }
            }
        }

        match best {
            None => Node::Leaf {
                value: Self::mean(rows, &idx),
            },
            Some((f, thr, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.into_iter().partition(|&i| rows[i].0[f] <= thr);
                let feature = if f == dim { DECISION_FEATURE } else { f };
                Node::Split {
                    feature,
                    threshold: thr,
                    left: Box::new(Self::build(rows, left_idx, depth + 1, cfg, dim)),
                    right: Box::new(Self::build(rows, right_idx, depth + 1, cfg, dim)),
                }
            }
        }
    }

    /// Number of leaves in the fitted tree.
    pub fn leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

impl RewardModel for TreeRegressor {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        let x = ctx.dense();
        debug_assert_eq!(x.len(), self.dim, "context dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = if *feature == DECISION_FEATURE {
                        d.index() as f64
                    } else {
                        x[*feature]
                    };
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

    fn schema() -> ContextSchema {
        ContextSchema::builder().numeric("x").build()
    }

    fn ctx(x: f64) -> Context {
        Context::build(&schema()).set_numeric("x", x).finish()
    }

    fn step_trace() -> Trace {
        // Reward is a step function of x: 0 below 50, 10 above.
        let s = schema();
        let recs = (0..100)
            .map(|i| {
                let x = i as f64;
                TraceRecord::new(
                    Context::build(&s).set_numeric("x", x).finish(),
                    Decision::from_index(0),
                    if x < 50.0 { 0.0 } else { 10.0 },
                )
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["a"]), recs).unwrap()
    }

    #[test]
    fn learns_step_function() {
        let m = TreeRegressor::fit(&step_trace(), TreeConfig::default());
        assert!((m.predict(&ctx(10.0), Decision::from_index(0)) - 0.0).abs() < 1e-9);
        assert!((m.predict(&ctx(90.0), Decision::from_index(0)) - 10.0).abs() < 1e-9);
        assert_eq!(m.leaves(), 2, "a single split suffices");
    }

    #[test]
    fn splits_on_decision() {
        let s = schema();
        let mut recs = Vec::new();
        for i in 0..50 {
            let c = Context::build(&s).set_numeric("x", (i % 5) as f64).finish();
            recs.push(TraceRecord::new(c.clone(), Decision::from_index(0), 1.0));
            recs.push(TraceRecord::new(c, Decision::from_index(1), 7.0));
        }
        let t = Trace::from_records(s, DecisionSpace::of(&["a", "b"]), recs).unwrap();
        let m = TreeRegressor::fit(&t, TreeConfig::default());
        assert!((m.predict(&ctx(2.0), Decision::from_index(0)) - 1.0).abs() < 1e-9);
        assert!((m.predict(&ctx(2.0), Decision::from_index(1)) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn learns_conjunction_with_enough_data() {
        // The WISE pattern: reward 1 iff a == 1 && b == 1.
        let s = ContextSchema::builder()
            .categorical("a", 2)
            .categorical("b", 2)
            .build();
        let mut recs = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for _ in 0..30 {
                    let c = Context::build(&s).set_cat("a", a).set_cat("b", b).finish();
                    let r = if a == 1 && b == 1 { 1.0 } else { 0.0 };
                    recs.push(TraceRecord::new(c, Decision::from_index(0), r));
                }
            }
        }
        let t = Trace::from_records(s.clone(), DecisionSpace::of(&["d"]), recs).unwrap();
        let m = TreeRegressor::fit(&t, TreeConfig::default());
        let q = |a: u32, b: u32| {
            let c = Context::build(&s).set_cat("a", a).set_cat("b", b).finish();
            m.predict(&c, Decision::from_index(0))
        };
        assert!((q(1, 1) - 1.0).abs() < 1e-9);
        assert!((q(0, 1) - 0.0).abs() < 1e-9);
        assert!((q(1, 0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_respected() {
        let m = TreeRegressor::fit(
            &step_trace(),
            TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert_eq!(m.depth(), 0);
        assert_eq!(m.leaves(), 1);
        // Depth-0 tree predicts the global mean.
        assert!((m.predict(&ctx(0.0), Decision::from_index(0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_leaf_respected() {
        let m = TreeRegressor::fit(
            &step_trace(),
            TreeConfig {
                min_leaf: 60,
                ..Default::default()
            },
        );
        // No split can give both children ≥ 60 of 100 samples.
        assert_eq!(m.leaves(), 1);
    }
}
