//! The [`RewardModel`] interface and trivial implementations.

use ddn_trace::{Context, Decision};

/// A reward model r̂(c, d): predicts the reward of taking decision `d` for
/// client-context `c` (paper §3, Direct Method).
///
/// Implementations must return a finite value for *every* (context,
/// decision) pair — models are expected to fall back to coarser aggregates
/// for cells they never observed, because the Direct Method queries them for
/// counterfactual decisions by construction.
pub trait RewardModel {
    /// Predicted reward for taking `d` on `c`.
    fn predict(&self, ctx: &Context, d: Decision) -> f64;
}

/// Blanket implementation so `&M`, `Box<M>`, `Arc<M>` are models too.
impl<M: RewardModel + ?Sized> RewardModel for &M {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        (**self).predict(ctx, d)
    }
}

impl<M: RewardModel + ?Sized> RewardModel for Box<M> {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        (**self).predict(ctx, d)
    }
}

impl<M: RewardModel + ?Sized> RewardModel for std::sync::Arc<M> {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        (**self).predict(ctx, d)
    }
}

/// A model that predicts the same constant everywhere. Useful as the
/// "maximally misspecified" baseline in bias experiments, and as the
/// zero model that reduces DR to plain IPS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantModel {
    value: f64,
}

impl ConstantModel {
    /// Creates a constant model.
    ///
    /// # Panics
    /// Panics if `value` is non-finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "constant model value must be finite");
        Self { value }
    }

    /// The zero model: `r̂ ≡ 0`. Plugging this into DR yields exactly IPS.
    pub fn zero() -> Self {
        Self::new(0.0)
    }
}

impl RewardModel for ConstantModel {
    fn predict(&self, _ctx: &Context, _d: Decision) -> f64 {
        self.value
    }
}

/// A model defined by an arbitrary function — the escape hatch for wiring
/// ground-truth reward functions (perfect models) or analytically
/// misspecified models into experiments.
pub struct FnModel<F: Fn(&Context, Decision) -> f64> {
    f: F,
}

impl<F: Fn(&Context, Decision) -> f64> FnModel<F> {
    /// Wraps a prediction function.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: Fn(&Context, Decision) -> f64> RewardModel for FnModel<F> {
    fn predict(&self, ctx: &Context, d: Decision) -> f64 {
        (self.f)(ctx, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::ContextSchema;

    fn ctx() -> Context {
        let s = ContextSchema::builder().numeric("x").build();
        Context::build(&s).set_numeric("x", 2.0).finish()
    }

    #[test]
    fn constant_model_predicts_constant() {
        let m = ConstantModel::new(3.5);
        assert_eq!(m.predict(&ctx(), Decision::from_index(0)), 3.5);
        assert_eq!(m.predict(&ctx(), Decision::from_index(9)), 3.5);
        assert_eq!(
            ConstantModel::zero().predict(&ctx(), Decision::from_index(0)),
            0.0
        );
    }

    #[test]
    fn fn_model_delegates() {
        let m = FnModel::new(|c: &Context, d: Decision| c.num(0) * (d.index() + 1) as f64);
        assert_eq!(m.predict(&ctx(), Decision::from_index(1)), 4.0);
    }

    #[test]
    fn references_and_boxes_are_models() {
        let m = ConstantModel::new(1.0);
        let by_ref: &dyn RewardModel = &m;
        assert_eq!(by_ref.predict(&ctx(), Decision::from_index(0)), 1.0);
        let boxed: Box<dyn RewardModel> = Box::new(m);
        assert_eq!(boxed.predict(&ctx(), Decision::from_index(0)), 1.0);
        let arc: std::sync::Arc<dyn RewardModel> = std::sync::Arc::new(ConstantModel::new(2.0));
        assert_eq!(arc.predict(&ctx(), Decision::from_index(0)), 2.0);
    }
}
