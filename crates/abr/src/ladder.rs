//! Bitrate ladders and chunk geometry.

/// An ascending ladder of available bitrates (kbps) with a fixed chunk
/// duration, e.g. the classic `{350, 600, 1000, 2000, 3000}` five-level
//  ladder the paper's Figure 7b sweep uses.
#[derive(Debug, Clone, PartialEq)]
pub struct BitrateLadder {
    rates_kbps: Vec<f64>,
    chunk_secs: f64,
}

impl BitrateLadder {
    /// Creates a ladder.
    ///
    /// # Panics
    /// Panics if the ladder is empty, not strictly ascending, contains a
    /// non-positive rate, or `chunk_secs <= 0`.
    pub fn new(rates_kbps: Vec<f64>, chunk_secs: f64) -> Self {
        assert!(
            !rates_kbps.is_empty(),
            "ladder must have at least one bitrate"
        );
        assert!(rates_kbps[0] > 0.0, "bitrates must be positive");
        for w in rates_kbps.windows(2) {
            assert!(w[1] > w[0], "ladder must be strictly ascending: {w:?}");
        }
        assert!(chunk_secs > 0.0, "chunk duration must be positive");
        Self {
            rates_kbps,
            chunk_secs,
        }
    }

    /// The five-level ladder used by the Figure 7b reproduction.
    pub fn five_level() -> Self {
        Self::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0], 4.0)
    }

    /// Number of bitrate levels.
    pub fn levels(&self) -> usize {
        self.rates_kbps.len()
    }

    /// Bitrate (kbps) of level `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn kbps(&self, i: usize) -> f64 {
        self.rates_kbps[i]
    }

    /// All bitrates, ascending.
    pub fn rates(&self) -> &[f64] {
        &self.rates_kbps
    }

    /// Chunk playback duration in seconds.
    pub fn chunk_secs(&self) -> f64 {
        self.chunk_secs
    }

    /// Size of a chunk at level `i`, in kilobits.
    pub fn chunk_kbits(&self, i: usize) -> f64 {
        self.kbps(i) * self.chunk_secs
    }

    /// The highest level whose bitrate does not exceed `kbps`, or level 0
    /// if even the lowest exceeds it.
    pub fn highest_at_most(&self, kbps: f64) -> usize {
        self.rates_kbps
            .iter()
            .rposition(|&r| r <= kbps)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_level_shape() {
        let l = BitrateLadder::five_level();
        assert_eq!(l.levels(), 5);
        assert_eq!(l.kbps(0), 350.0);
        assert_eq!(l.kbps(4), 3000.0);
        assert_eq!(l.chunk_secs(), 4.0);
        assert_eq!(l.chunk_kbits(2), 4000.0);
    }

    #[test]
    fn highest_at_most_selects_correctly() {
        let l = BitrateLadder::five_level();
        assert_eq!(l.highest_at_most(10_000.0), 4);
        assert_eq!(l.highest_at_most(2500.0), 3);
        assert_eq!(l.highest_at_most(601.0), 1);
        assert_eq!(l.highest_at_most(100.0), 0); // below the floor
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_ladder_panics() {
        let _ = BitrateLadder::new(vec![1000.0, 600.0], 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one bitrate")]
    fn empty_ladder_panics() {
        let _ = BitrateLadder::new(vec![], 4.0);
    }
}
