//! Adapters mapping ABR sessions onto the `ddn-trace` evaluation model:
//! **chunk = client, bitrate = decision, chunk QoE = reward** — exactly
//! the correspondence the paper sets up for the Figure 2/7b scenario ("a
//! flow-level simulator (the reward model) … for any given chunk c and
//! bitrate d").

use crate::ladder::BitrateLadder;
use crate::policies::AbrPolicy;
use crate::session::{ChunkOutcome, ChunkState, Session};
use ddn_policy::Policy;
use ddn_stats::rng::Rng;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// Sentinel for "no previous chunk" in numeric context features.
const NONE_SENTINEL: f64 = -1.0;

/// The context schema for ABR traces: the chunk index, the buffer level,
/// the previous level and the previously *observed* throughput — the full
/// observable state of [`ChunkState`].
pub fn abr_schema() -> ContextSchema {
    ContextSchema::builder()
        .numeric("chunk")
        .numeric("buffer_secs")
        .numeric("prev_level")
        .numeric("prev_observed_kbps")
        .build()
}

/// The decision space of a ladder: one decision per bitrate level.
pub fn abr_space(ladder: &BitrateLadder) -> DecisionSpace {
    DecisionSpace::new(ladder.rates().iter().map(|r| format!("{r}kbps")).collect())
}

/// Encodes a [`ChunkState`] as a trace context.
pub fn encode_state(schema: &ContextSchema, state: &ChunkState) -> Context {
    Context::build(schema)
        .set_numeric("chunk", state.index as f64)
        .set_numeric("buffer_secs", state.buffer_secs)
        .set_numeric(
            "prev_level",
            state.prev_level.map_or(NONE_SENTINEL, |l| l as f64),
        )
        .set_numeric(
            "prev_observed_kbps",
            state.prev_observed_kbps.unwrap_or(NONE_SENTINEL),
        )
        .finish()
}

/// Decodes a trace context back into a [`ChunkState`].
pub fn decode_state(ctx: &Context) -> ChunkState {
    let prev_level = ctx.num(2);
    let prev_tput = ctx.num(3);
    ChunkState {
        index: ctx.num(0) as usize,
        buffer_secs: ctx.num(1),
        prev_level: (prev_level >= 0.0).then_some(prev_level as usize),
        prev_observed_kbps: (prev_tput >= 0.0).then_some(prev_tput),
    }
}

/// ε-exploring wrapper around a deterministic ABR controller — the
/// randomized logging the paper's §4.1 asks operators to deploy, applied
/// to ABR: with probability `1 − ε` follow the controller, else pick a
/// uniformly random level, and *record the propensity*.
#[derive(Debug, Clone)]
pub struct ExploringAbr<P: AbrPolicy> {
    inner: P,
    epsilon: f64,
}

impl<P: AbrPolicy> ExploringAbr<P> {
    /// Wraps `inner` with exploration rate `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 <= epsilon <= 1`.
    pub fn new(inner: P, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        Self { inner, epsilon }
    }

    /// Probability this wrapper picks `level` in `state`.
    pub fn prob(&self, state: &ChunkState, ladder: &BitrateLadder, level: usize) -> f64 {
        let k = ladder.levels() as f64;
        let greedy = self.inner.choose(state, ladder);
        let base = if level == greedy {
            1.0 - self.epsilon
        } else {
            0.0
        };
        base + self.epsilon / k
    }

    /// Samples a level and its propensity.
    pub fn sample(
        &self,
        state: &ChunkState,
        ladder: &BitrateLadder,
        rng: &mut dyn Rng,
    ) -> (usize, f64) {
        let level = if rng.chance(self.epsilon) {
            rng.index(ladder.levels())
        } else {
            self.inner.choose(state, ladder)
        };
        (level, self.prob(state, ladder, level))
    }
}

/// A logged ABR session: the evaluation-ready trace plus the raw outcomes.
#[derive(Debug, Clone)]
pub struct SessionTrace {
    /// Trace with contexts, bitrate decisions, per-chunk QoE rewards and
    /// logging propensities.
    pub trace: Trace,
    /// The per-chunk outcomes (including observed throughput — what a
    /// FastMPC-style evaluator would consume).
    pub outcomes: Vec<ChunkOutcome>,
}

/// Runs `session` to completion under the ε-exploring `logger`, recording
/// a trace.
pub fn log_session<P: AbrPolicy>(
    mut session: Session,
    logger: &ExploringAbr<P>,
    rng: &mut dyn Rng,
) -> SessionTrace {
    let schema = abr_schema();
    let space = abr_space(session.ladder());
    let ladder = session.ladder().clone();
    let mut records = Vec::new();
    let mut outcomes = Vec::new();
    while !session.finished() {
        let state = session.state();
        let (level, propensity) = logger.sample(&state, &ladder, rng);
        let ctx = encode_state(&schema, &state);
        let outcome = session.download(level, rng);
        records.push(
            TraceRecord::new(ctx, Decision::from_index(level), outcome.qoe)
                .with_propensity(propensity),
        );
        outcomes.push(outcome);
    }
    let trace =
        Trace::from_records(schema, space, records).expect("ABR sessions always emit valid traces");
    SessionTrace { trace, outcomes }
}

/// Runs `session` to completion under a plain (deterministic) policy —
/// used for ground truth ("what QoE would the new ABR policy really get").
pub fn run_session(
    mut session: Session,
    policy: &dyn AbrPolicy,
    rng: &mut dyn Rng,
) -> Vec<ChunkOutcome> {
    let ladder = session.ladder().clone();
    let mut outcomes = Vec::new();
    while !session.finished() {
        let level = policy.choose(&session.state(), &ladder);
        outcomes.push(session.download(level, rng));
    }
    outcomes
}

/// Adapter exposing a deterministic ABR controller as a stationary
/// [`Policy`] over ABR trace contexts, so the generic estimators can
/// compute `μ_new(d | c)` on logged chunks.
pub struct AbrAsPolicy<P: AbrPolicy> {
    inner: P,
    ladder: BitrateLadder,
    space: DecisionSpace,
}

impl<P: AbrPolicy> AbrAsPolicy<P> {
    /// Wraps an ABR controller for the given ladder.
    pub fn new(inner: P, ladder: BitrateLadder) -> Self {
        let space = abr_space(&ladder);
        Self {
            inner,
            ladder,
            space,
        }
    }
}

impl<P: AbrPolicy> Policy for AbrAsPolicy<P> {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        let state = decode_state(ctx);
        if self.inner.choose(&state, &self.ladder) == d.index() {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{BufferBased, Mpc};
    use crate::session::{QoeModel, SessionConfig};
    use crate::throughput::{Bandwidth, ThroughputDiscount};
    use ddn_stats::rng::Xoshiro256;

    fn session() -> Session {
        Session::new(
            BitrateLadder::five_level(),
            SessionConfig::default(),
            QoeModel::default(),
            Bandwidth::Constant(2000.0),
            ThroughputDiscount::paper_default(),
        )
    }

    #[test]
    fn state_roundtrip() {
        let schema = abr_schema();
        let st = ChunkState {
            index: 7,
            buffer_secs: 12.5,
            prev_level: Some(3),
            prev_observed_kbps: Some(1850.0),
        };
        assert_eq!(decode_state(&encode_state(&schema, &st)), st);
        let st0 = ChunkState {
            index: 0,
            buffer_secs: 8.0,
            prev_level: None,
            prev_observed_kbps: None,
        };
        assert_eq!(decode_state(&encode_state(&schema, &st0)), st0);
    }

    #[test]
    fn log_session_produces_valid_trace() {
        let logger = ExploringAbr::new(BufferBased::default(), 0.2);
        let mut rng = Xoshiro256::seed_from(1);
        let st = log_session(session(), &logger, &mut rng);
        assert_eq!(st.trace.len(), 100);
        assert!(st.trace.has_propensities());
        assert_eq!(st.outcomes.len(), 100);
        assert_eq!(st.trace.space().len(), 5);
        // Rewards in the trace equal the chunk QoEs.
        for (r, o) in st.trace.records().iter().zip(&st.outcomes) {
            assert_eq!(r.reward, o.qoe);
            assert_eq!(r.decision.index(), o.level);
        }
    }

    #[test]
    fn exploring_propensities_are_correct() {
        let logger = ExploringAbr::new(BufferBased::default(), 0.25);
        let ladder = BitrateLadder::five_level();
        let st = ChunkState {
            index: 1,
            buffer_secs: 25.0, // deep buffer → BBA picks top level
            prev_level: Some(4),
            prev_observed_kbps: Some(900.0),
        };
        assert!((logger.prob(&st, &ladder, 4) - (0.75 + 0.05)).abs() < 1e-12);
        assert!((logger.prob(&st, &ladder, 0) - 0.05).abs() < 1e-12);
        let total: f64 = (0..5).map(|l| logger.prob(&st, &ladder, l)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exploration_rate_matches_epsilon() {
        let logger = ExploringAbr::new(BufferBased::default(), 0.5);
        let ladder = BitrateLadder::five_level();
        let st = ChunkState {
            index: 1,
            buffer_secs: 0.0, // BBA would pick 0
            prev_level: None,
            prev_observed_kbps: None,
        };
        let mut rng = Xoshiro256::seed_from(2);
        let n = 50_000;
        let nonzero = (0..n)
            .filter(|_| logger.sample(&st, &ladder, &mut rng).0 != 0)
            .count();
        // P(level ≠ 0) = ε·(4/5) = 0.4.
        let f = nonzero as f64 / n as f64;
        assert!((f - 0.4).abs() < 0.01, "explore fraction {f}");
    }

    #[test]
    fn abr_as_policy_is_deterministic_and_consistent() {
        let mpc = Mpc::new(5, QoeModel::default());
        let pol = AbrAsPolicy::new(
            Mpc::new(5, QoeModel::default()),
            BitrateLadder::five_level(),
        );
        let schema = abr_schema();
        let st = ChunkState {
            index: 9,
            buffer_secs: 18.0,
            prev_level: Some(2),
            prev_observed_kbps: Some(2400.0),
        };
        let ctx = encode_state(&schema, &st);
        let choice = mpc.choose(&st, &BitrateLadder::five_level());
        let probs = pol.probabilities(&ctx);
        assert_eq!(probs[choice], 1.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_run_is_deterministic() {
        let mpc = Mpc::new(5, QoeModel::default());
        let mut g1 = Xoshiro256::seed_from(3);
        let mut g2 = Xoshiro256::seed_from(3);
        let a = run_session(session(), &mpc, &mut g1);
        let b = run_session(session(), &mpc, &mut g2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn bba_and_mpc_behave_differently_on_same_world() {
        let mut g1 = Xoshiro256::seed_from(4);
        let mut g2 = Xoshiro256::seed_from(4);
        let bba = run_session(session(), &BufferBased::default(), &mut g1);
        let mpc = run_session(session(), &Mpc::new(5, QoeModel::default()), &mut g2);
        let bba_levels: Vec<usize> = bba.iter().map(|c| c.level).collect();
        let mpc_levels: Vec<usize> = mpc.iter().map(|c| c.level).collect();
        assert_ne!(bba_levels, mpc_levels, "policies should diverge");
    }
}
