//! Buffer dynamics and QoE accounting for one streaming session.

use crate::ladder::BitrateLadder;
use crate::throughput::{Bandwidth, ThroughputDiscount};
use ddn_stats::rng::Rng;

/// QoE model in the MPC style (paper ref \[42\]): per-chunk utility of the
/// bitrate minus rebuffering and bitrate-switch penalties.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeModel {
    /// Weight on rebuffer seconds.
    pub rebuffer_penalty: f64,
    /// Weight on |quality(r_i) − quality(r_{i−1})|.
    pub smoothness_penalty: f64,
    /// If true, chunk utility is `log(r / r_min)`; otherwise `r / 1000`
    /// (Mbps-scaled linear).
    pub log_utility: bool,
}

impl Default for QoeModel {
    fn default() -> Self {
        Self {
            rebuffer_penalty: 4.0,
            smoothness_penalty: 1.0,
            log_utility: false,
        }
    }
}

impl QoeModel {
    /// Utility of streaming one chunk at level `level`.
    pub fn utility(&self, ladder: &BitrateLadder, level: usize) -> f64 {
        if self.log_utility {
            (ladder.kbps(level) / ladder.kbps(0)).ln()
        } else {
            ladder.kbps(level) / 1000.0
        }
    }

    /// QoE of one chunk given its level, the previous chunk's level, and
    /// the rebuffering it caused.
    pub fn chunk_qoe(
        &self,
        ladder: &BitrateLadder,
        level: usize,
        prev_level: Option<usize>,
        rebuffer_secs: f64,
    ) -> f64 {
        let u = self.utility(ladder, level);
        let switch = match prev_level {
            Some(p) => (self.utility(ladder, level) - self.utility(ladder, p)).abs(),
            None => 0.0,
        };
        u - self.rebuffer_penalty * rebuffer_secs - self.smoothness_penalty * switch
    }
}

/// Static session parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Number of chunks in the session (the paper uses 100).
    pub chunks: usize,
    /// Maximum buffer occupancy in seconds of video.
    pub buffer_max_secs: f64,
    /// Buffer level at session start (seconds of pre-fetched video).
    pub startup_buffer_secs: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            chunks: 100,
            buffer_max_secs: 30.0,
            startup_buffer_secs: 8.0,
        }
    }
}

impl SessionConfig {
    /// Validates parameters.
    ///
    /// # Panics
    /// Panics on zero chunks or negative buffers.
    pub fn validate(&self) {
        assert!(self.chunks > 0, "session needs at least one chunk");
        assert!(self.buffer_max_secs > 0.0, "buffer cap must be positive");
        assert!(
            self.startup_buffer_secs >= 0.0 && self.startup_buffer_secs <= self.buffer_max_secs,
            "startup buffer must fit in the cap"
        );
    }
}

/// The observable state an ABR policy sees before choosing chunk `index`'s
/// bitrate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkState {
    /// Chunk index (0-based).
    pub index: usize,
    /// Buffer occupancy (seconds) before the download starts.
    pub buffer_secs: f64,
    /// Level chosen for the previous chunk, if any.
    pub prev_level: Option<usize>,
    /// Observed throughput (kbps) of the previous chunk's download, if any
    /// — the (biased!) signal throughput-predicting policies consume.
    pub prev_observed_kbps: Option<f64>,
}

/// Record of one downloaded chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkOutcome {
    /// The pre-decision state.
    pub state: ChunkState,
    /// The chosen bitrate level.
    pub level: usize,
    /// True available bandwidth during the download (kbps).
    pub available_kbps: f64,
    /// Observed throughput (kbps): `available · p(level)`.
    pub observed_kbps: f64,
    /// Rebuffering incurred (seconds).
    pub rebuffer_secs: f64,
    /// The chunk's QoE (the *reward* in the trace mapping).
    pub qoe: f64,
}

/// Result of a full session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Per-chunk outcomes, in order.
    pub chunks: Vec<ChunkOutcome>,
}

impl SessionResult {
    /// Total session QoE.
    pub fn total_qoe(&self) -> f64 {
        self.chunks.iter().map(|c| c.qoe).sum()
    }

    /// Mean per-chunk QoE — the session's value in the trace-evaluation
    /// sense.
    pub fn mean_qoe(&self) -> f64 {
        self.total_qoe() / self.chunks.len() as f64
    }

    /// Total rebuffering seconds.
    pub fn total_rebuffer(&self) -> f64 {
        self.chunks.iter().map(|c| c.rebuffer_secs).sum()
    }
}

/// A streaming session simulator.
///
/// Drive it chunk by chunk with [`Session::download`], which applies the
/// standard buffer recursion: download time `size(level)/observed`,
/// rebuffer `max(0, download − buffer)`, then the buffer gains one chunk
/// of playback (capped — the client idles rather than overflow).
#[derive(Debug, Clone)]
pub struct Session {
    ladder: BitrateLadder,
    config: SessionConfig,
    qoe: QoeModel,
    bandwidth: Bandwidth,
    discount: ThroughputDiscount,
    // Mutable per-session state.
    buffer: f64,
    index: usize,
    prev_level: Option<usize>,
    prev_observed: Option<f64>,
}

impl Session {
    /// Creates a fresh session.
    pub fn new(
        ladder: BitrateLadder,
        config: SessionConfig,
        qoe: QoeModel,
        bandwidth: Bandwidth,
        discount: ThroughputDiscount,
    ) -> Self {
        config.validate();
        let buffer = config.startup_buffer_secs;
        Self {
            ladder,
            config,
            qoe,
            bandwidth,
            discount,
            buffer,
            index: 0,
            prev_level: None,
            prev_observed: None,
        }
    }

    /// The ladder in use.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// The QoE model in use.
    pub fn qoe_model(&self) -> &QoeModel {
        &self.qoe
    }

    /// Whether every chunk has been downloaded.
    pub fn finished(&self) -> bool {
        self.index >= self.config.chunks
    }

    /// The state the policy should decide the next chunk from.
    ///
    /// # Panics
    /// Panics if the session is finished.
    pub fn state(&self) -> ChunkState {
        assert!(!self.finished(), "session already finished");
        ChunkState {
            index: self.index,
            buffer_secs: self.buffer,
            prev_level: self.prev_level,
            prev_observed_kbps: self.prev_observed,
        }
    }

    /// Downloads the next chunk at `level`, advancing the session.
    ///
    /// # Panics
    /// Panics if finished or `level` is out of range.
    pub fn download(&mut self, level: usize, rng: &mut dyn Rng) -> ChunkOutcome {
        let state = self.state();
        assert!(level < self.ladder.levels(), "bitrate level out of range");
        let available = self.bandwidth.at(self.index, rng);
        let observed = self
            .discount
            .observed(available, level, self.ladder.levels());
        let download_secs = self.ladder.chunk_kbits(level) / observed;
        let rebuffer = (download_secs - self.buffer).max(0.0);
        self.buffer = (self.buffer - download_secs).max(0.0) + self.ladder.chunk_secs();
        self.buffer = self.buffer.min(self.config.buffer_max_secs);
        let qoe = self
            .qoe
            .chunk_qoe(&self.ladder, level, state.prev_level, rebuffer);
        self.index += 1;
        self.prev_level = Some(level);
        self.prev_observed = Some(observed);
        ChunkOutcome {
            state,
            level,
            available_kbps: available,
            observed_kbps: observed,
            rebuffer_secs: rebuffer,
            qoe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::Xoshiro256;

    fn session(bw: f64, discount: ThroughputDiscount) -> Session {
        Session::new(
            BitrateLadder::five_level(),
            SessionConfig::default(),
            QoeModel::default(),
            Bandwidth::Constant(bw),
            discount,
        )
    }

    #[test]
    fn buffer_never_negative_and_capped() {
        let mut s = session(500.0, ThroughputDiscount::paper_default());
        let mut g = Xoshiro256::seed_from(1);
        while !s.finished() {
            let st = s.state();
            assert!(st.buffer_secs >= 0.0);
            assert!(st.buffer_secs <= 30.0 + 1e-9);
            s.download(4, &mut g); // always top bitrate on 500kbps → struggle
        }
    }

    #[test]
    fn low_bitrate_on_fast_link_never_rebuffers() {
        let mut s = session(5000.0, ThroughputDiscount::paper_default());
        let mut g = Xoshiro256::seed_from(2);
        let mut out = Vec::new();
        while !s.finished() {
            out.push(s.download(0, &mut g));
        }
        let total_rebuf: f64 = out.iter().map(|c| c.rebuffer_secs).sum();
        assert_eq!(total_rebuf, 0.0);
    }

    #[test]
    fn top_bitrate_on_slow_link_rebuffers() {
        let mut s = session(1000.0, ThroughputDiscount::none());
        let mut g = Xoshiro256::seed_from(3);
        let mut rebuf = 0.0;
        while !s.finished() {
            rebuf += s.download(4, &mut g).rebuffer_secs; // 3000kbps on 1000kbps link
        }
        assert!(rebuf > 100.0, "expected heavy rebuffering, got {rebuf}");
    }

    #[test]
    fn observed_throughput_depends_on_bitrate() {
        // The Figure 2 mechanism: same bandwidth, different observation.
        let mut s_low = session(2000.0, ThroughputDiscount::paper_default());
        let mut s_high = session(2000.0, ThroughputDiscount::paper_default());
        let mut g1 = Xoshiro256::seed_from(4);
        let mut g2 = Xoshiro256::seed_from(4);
        let lo = s_low.download(0, &mut g1);
        let hi = s_high.download(4, &mut g2);
        assert_eq!(lo.available_kbps, hi.available_kbps);
        assert!(
            lo.observed_kbps < hi.observed_kbps,
            "low bitrate must observe less: {} vs {}",
            lo.observed_kbps,
            hi.observed_kbps
        );
        assert!(
            (hi.observed_kbps - 2000.0).abs() < 1e-9,
            "top level observes everything"
        );
    }

    #[test]
    fn qoe_penalizes_switches_and_rebuffering() {
        let ladder = BitrateLadder::five_level();
        let q = QoeModel::default();
        let steady = q.chunk_qoe(&ladder, 2, Some(2), 0.0);
        let switched = q.chunk_qoe(&ladder, 2, Some(4), 0.0);
        let stalled = q.chunk_qoe(&ladder, 2, Some(2), 1.0);
        assert!(switched < steady);
        assert!(stalled < steady);
        assert!(
            (steady - stalled - 4.0).abs() < 1e-12,
            "rebuffer penalty is 4/s"
        );
    }

    #[test]
    fn log_utility_is_concave() {
        let ladder = BitrateLadder::five_level();
        let q = QoeModel {
            log_utility: true,
            ..Default::default()
        };
        let u0 = q.utility(&ladder, 0);
        let u2 = q.utility(&ladder, 2);
        let u4 = q.utility(&ladder, 4);
        assert_eq!(u0, 0.0);
        // Concave in bitrate: marginal utility per kbps shrinks.
        let lo_slope = (u2 - u0) / (ladder.kbps(2) - ladder.kbps(0));
        let hi_slope = (u4 - u2) / (ladder.kbps(4) - ladder.kbps(2));
        assert!(
            hi_slope < lo_slope,
            "log utility must flatten: {hi_slope} vs {lo_slope}"
        );
    }

    #[test]
    fn session_runs_exactly_n_chunks() {
        let mut s = session(2000.0, ThroughputDiscount::none());
        let mut g = Xoshiro256::seed_from(5);
        let mut n = 0;
        while !s.finished() {
            s.download(1, &mut g);
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn state_after_finish_panics() {
        let mut s = Session::new(
            BitrateLadder::five_level(),
            SessionConfig {
                chunks: 1,
                ..Default::default()
            },
            QoeModel::default(),
            Bandwidth::Constant(1000.0),
            ThroughputDiscount::none(),
        );
        let mut g = Xoshiro256::seed_from(6);
        s.download(0, &mut g);
        let _ = s.state();
    }
}
