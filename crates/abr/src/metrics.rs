//! Session-level streaming metrics.
//!
//! Per-chunk QoE is what the estimators consume; operators additionally
//! read session-level rollups — rebuffer ratio, switch counts, bitrate
//! distribution — when comparing ABR controllers. [`SessionMetrics`]
//! computes the standard set from a slice of [`ChunkOutcome`]s.

use crate::ladder::BitrateLadder;
use crate::session::ChunkOutcome;

/// Session-level rollup of a chunk sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMetrics {
    /// Number of chunks played.
    pub chunks: usize,
    /// Mean bitrate over played chunks (kbps).
    pub mean_bitrate_kbps: f64,
    /// Total rebuffering (seconds).
    pub rebuffer_secs: f64,
    /// Rebuffering as a fraction of total playback time
    /// (`stall / (stall + chunks · chunk_secs)`).
    pub rebuffer_ratio: f64,
    /// Number of bitrate switches (adjacent chunks at different levels).
    pub switches: usize,
    /// Mean absolute switch magnitude in ladder levels (0 when no
    /// switches).
    pub mean_switch_magnitude: f64,
    /// Per-level chunk counts.
    pub level_histogram: Vec<usize>,
    /// Mean per-chunk QoE (the evaluation reward).
    pub mean_qoe: f64,
}

impl SessionMetrics {
    /// Computes metrics over a completed (or partial) session.
    ///
    /// # Panics
    /// Panics if `outcomes` is empty.
    pub fn of(ladder: &BitrateLadder, outcomes: &[ChunkOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "metrics need at least one chunk");
        let n = outcomes.len();
        let mut level_histogram = vec![0usize; ladder.levels()];
        let mut bitrate_sum = 0.0;
        let mut rebuffer = 0.0;
        let mut switches = 0usize;
        let mut switch_mag = 0usize;
        let mut qoe = 0.0;
        let mut prev: Option<usize> = None;
        for o in outcomes {
            level_histogram[o.level] += 1;
            bitrate_sum += ladder.kbps(o.level);
            rebuffer += o.rebuffer_secs;
            qoe += o.qoe;
            if let Some(p) = prev {
                if p != o.level {
                    switches += 1;
                    switch_mag += p.abs_diff(o.level);
                }
            }
            prev = Some(o.level);
        }
        let playback = n as f64 * ladder.chunk_secs();
        Self {
            chunks: n,
            mean_bitrate_kbps: bitrate_sum / n as f64,
            rebuffer_secs: rebuffer,
            rebuffer_ratio: rebuffer / (rebuffer + playback),
            switches,
            mean_switch_magnitude: if switches > 0 {
                switch_mag as f64 / switches as f64
            } else {
                0.0
            },
            level_histogram,
            mean_qoe: qoe / n as f64,
        }
    }

    /// Renders the metrics as compact text.
    pub fn render(&self) -> String {
        format!(
            "chunks {} | mean bitrate {:.0} kbps | rebuffer {:.1}s ({:.2}%) | \
             {} switches (mean {:.1} levels) | mean QoE {:.3}\nlevels: {:?}",
            self.chunks,
            self.mean_bitrate_kbps,
            self.rebuffer_secs,
            100.0 * self.rebuffer_ratio,
            self.switches,
            self.mean_switch_magnitude,
            self.mean_qoe,
            self.level_histogram,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{BolaLike, BufferBased, Mpc};
    use crate::session::{QoeModel, Session, SessionConfig};
    use crate::throughput::{Bandwidth, ThroughputDiscount};
    use crate::{run_session, AbrPolicy};
    use ddn_stats::rng::Xoshiro256;

    fn run(policy: &dyn AbrPolicy, bandwidth: f64, seed: u64) -> Vec<ChunkOutcome> {
        let session = Session::new(
            BitrateLadder::five_level(),
            SessionConfig::default(),
            QoeModel::default(),
            Bandwidth::Constant(bandwidth),
            ThroughputDiscount::paper_default(),
        );
        let mut rng = Xoshiro256::seed_from(seed);
        run_session(session, policy, &mut rng)
    }

    #[test]
    fn histogram_and_counts_are_consistent() {
        let ladder = BitrateLadder::five_level();
        let out = run(&BufferBased::default(), 2_000.0, 1);
        let m = SessionMetrics::of(&ladder, &out);
        assert_eq!(m.chunks, 100);
        assert_eq!(m.level_histogram.iter().sum::<usize>(), 100);
        assert!(m.mean_bitrate_kbps >= 350.0 && m.mean_bitrate_kbps <= 3_000.0);
        assert!((0.0..1.0).contains(&m.rebuffer_ratio));
    }

    #[test]
    fn faster_link_streams_higher() {
        let ladder = BitrateLadder::five_level();
        let slow = SessionMetrics::of(&ladder, &run(&Mpc::new(5, QoeModel::default()), 800.0, 2));
        let fast = SessionMetrics::of(&ladder, &run(&Mpc::new(5, QoeModel::default()), 4_000.0, 2));
        assert!(fast.mean_bitrate_kbps > slow.mean_bitrate_kbps);
        assert!(fast.mean_qoe > slow.mean_qoe);
    }

    #[test]
    fn bola_switches_less_than_bba_under_default_tuning() {
        // Not a universal law, but on a steady link the Lyapunov controller
        // settles while BBA tracks its buffer ramp chunk by chunk.
        let ladder = BitrateLadder::five_level();
        let bba = SessionMetrics::of(&ladder, &run(&BufferBased::default(), 2_000.0, 3));
        let bola = SessionMetrics::of(&ladder, &run(&BolaLike::default(), 2_000.0, 3));
        assert!(
            bola.switches <= bba.switches,
            "BOLA {} vs BBA {} switches",
            bola.switches,
            bba.switches
        );
    }

    #[test]
    fn render_mentions_key_numbers() {
        let ladder = BitrateLadder::five_level();
        let m = SessionMetrics::of(&ladder, &run(&BufferBased::default(), 2_000.0, 4));
        let text = m.render();
        assert!(text.contains("chunks 100"));
        assert!(text.contains("levels:"));
    }
}
