//! # ddn-abr — chunk-level adaptive-bitrate streaming simulator
//!
//! The substrate behind the paper's Figure 2 pitfall and Figure 7b
//! experiment. A video session downloads `N` chunks; for each chunk an ABR
//! policy picks a bitrate from a ladder; the chunk's download time follows
//! from the **observed** throughput, which — crucially — depends on the
//! chosen bitrate: `observed = available · p(bitrate)` with `p ≤ 1`
//! monotonically increasing (paper ref \[12\]: small chunks never let TCP
//! reach steady state). Evaluators that assume observed throughput is
//! independent of bitrate (FastMPC's assumption, §2.2.1) are therefore
//! systematically biased, and Figure 7b quantifies how much DR recovers.
//!
//! Components:
//!
//! - [`ladder`] — bitrate ladders and chunk geometry.
//! - [`throughput`] — available-bandwidth processes and the
//!   bitrate-dependent observation discount `p(r)`.
//! - [`session`] — buffer dynamics: download, rebuffer, QoE accounting.
//! - [`policies`] — ABR controllers: buffer-based (BBA, paper ref \[13\] —
//!   the old policy of Figure 7b), rate-based, FESTIVE-like, and
//!   MPC/FastMPC (paper ref \[42\] — the new policy).
//! - [`bridge`] — adapters mapping sessions onto the `ddn-trace` model
//!   (chunk = client, bitrate = decision, chunk QoE = reward) including
//!   ε-exploring loggers with recorded propensities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod ladder;
pub mod metrics;
pub mod policies;
pub mod session;
pub mod throughput;

pub use bridge::{
    abr_schema, abr_space, decode_state, encode_state, log_session, run_session, AbrAsPolicy,
    ExploringAbr, SessionTrace,
};
pub use ladder::BitrateLadder;
pub use metrics::SessionMetrics;
pub use policies::{AbrPolicy, BolaLike, BufferBased, FestiveLike, Mpc, RateBased};
pub use session::{QoeModel, Session, SessionConfig, SessionResult};
pub use throughput::{Bandwidth, ThroughputDiscount};
