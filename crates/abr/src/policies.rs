//! ABR controllers.
//!
//! The Figure 7b cast: [`BufferBased`] (BBA, paper ref \[13\]) is the *old*
//! policy that logged the trace; [`Mpc`] (FastMPC, paper ref \[42\]) is the
//! *new* policy being evaluated. [`RateBased`] and [`FestiveLike`]
//! (paper ref \[17\]) round out the spectrum for ablations.

use crate::ladder::BitrateLadder;
use crate::session::{ChunkState, QoeModel};

/// An ABR controller: a (deterministic) mapping from observable chunk
/// state to a bitrate level.
pub trait AbrPolicy {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// The level to download the next chunk at.
    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize;
}

/// Buffer-based ABR (BBA, paper ref \[13\]): bitrate is a piecewise-linear
/// function of buffer occupancy — below the `reservoir` play it safe at the
/// bottom, above `reservoir + cushion` go to the top, linear in between.
/// Ignores throughput entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferBased {
    /// Buffer level (seconds) below which the lowest level is used.
    pub reservoir_secs: f64,
    /// Width (seconds) of the linear ramp above the reservoir.
    pub cushion_secs: f64,
}

impl Default for BufferBased {
    fn default() -> Self {
        Self {
            reservoir_secs: 5.0,
            cushion_secs: 15.0,
        }
    }
}

impl AbrPolicy for BufferBased {
    fn name(&self) -> &str {
        "BBA"
    }

    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize {
        let b = state.buffer_secs;
        if b <= self.reservoir_secs {
            return 0;
        }
        let top = ladder.levels() - 1;
        if b >= self.reservoir_secs + self.cushion_secs {
            return top;
        }
        let frac = (b - self.reservoir_secs) / self.cushion_secs;
        ((frac * top as f64).floor() as usize).min(top)
    }
}

/// Rate-based ABR: picks the highest bitrate at most `safety ×` the
/// predicted throughput, where the prediction is simply the previously
/// observed throughput — inheriting its bitrate-dependence bias.
#[derive(Debug, Clone, PartialEq)]
pub struct RateBased {
    /// Safety factor in `(0, 1]` applied to the throughput estimate.
    pub safety: f64,
}

impl Default for RateBased {
    fn default() -> Self {
        Self { safety: 0.9 }
    }
}

impl AbrPolicy for RateBased {
    fn name(&self) -> &str {
        "RateBased"
    }

    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize {
        match state.prev_observed_kbps {
            Some(tput) => ladder.highest_at_most(self.safety * tput),
            None => 0, // conservative start
        }
    }
}

/// FESTIVE-like ABR (paper ref \[17\]): rate-based target, but steps at most
/// one ladder level per chunk for stability.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FestiveLike {
    inner: RateBased,
}

impl AbrPolicy for FestiveLike {
    fn name(&self) -> &str {
        "FESTIVE"
    }

    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize {
        let target = self.inner.choose(state, ladder);
        match state.prev_level {
            None => target.min(1),
            Some(p) => {
                if target > p {
                    p + 1
                } else if target < p {
                    p.saturating_sub(1)
                } else {
                    p
                }
            }
        }
    }
}

/// MPC / FastMPC (paper ref \[42\]): chooses the bitrate whose `horizon`-step
/// lookahead maximizes predicted QoE, assuming the throughput estimate
/// holds for the whole horizon.
///
/// The throughput estimate is the previously observed throughput — which is
/// exactly the assumption Figure 2 skewers: "the throughput estimator may
/// implicitly assume that the observed throughput is independent of the
/// chunk's bitrate".
#[derive(Debug, Clone, PartialEq)]
pub struct Mpc {
    /// Lookahead depth in chunks (FastMPC uses ~5).
    pub horizon: usize,
    /// QoE model optimized over the horizon.
    pub qoe: QoeModel,
}

impl Mpc {
    /// Creates an MPC controller.
    ///
    /// # Panics
    /// Panics if `horizon == 0`.
    pub fn new(horizon: usize, qoe: QoeModel) -> Self {
        assert!(horizon > 0, "MPC horizon must be at least 1");
        Self { horizon, qoe }
    }

    /// Best total predicted QoE achievable from `(buffer, prev)` over
    /// `depth` steps at assumed throughput `tput`, together with the best
    /// first move. Exhaustive search; ladders are small (≤ ~8 levels).
    fn plan(
        &self,
        ladder: &BitrateLadder,
        buffer: f64,
        prev: Option<usize>,
        tput: f64,
        depth: usize,
    ) -> (f64, usize) {
        let mut best = (f64::NEG_INFINITY, 0);
        for level in 0..ladder.levels() {
            let download = ladder.chunk_kbits(level) / tput;
            let rebuf = (download - buffer).max(0.0);
            let next_buffer = (buffer - download).max(0.0) + ladder.chunk_secs();
            let q = self.qoe.chunk_qoe(ladder, level, prev, rebuf);
            let total = if depth > 1 {
                q + self
                    .plan(ladder, next_buffer, Some(level), tput, depth - 1)
                    .0
            } else {
                q
            };
            if total > best.0 {
                best = (total, level);
            }
        }
        best
    }
}

impl AbrPolicy for Mpc {
    fn name(&self) -> &str {
        "MPC"
    }

    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize {
        let tput = match state.prev_observed_kbps {
            Some(t) => t,
            None => return 0, // no estimate yet: conservative start
        };
        self.plan(
            ladder,
            state.buffer_secs,
            state.prev_level,
            tput,
            self.horizon,
        )
        .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> BitrateLadder {
        BitrateLadder::five_level()
    }

    fn state(buffer: f64, prev: Option<usize>, tput: Option<f64>) -> ChunkState {
        ChunkState {
            index: 3,
            buffer_secs: buffer,
            prev_level: prev,
            prev_observed_kbps: tput,
        }
    }

    #[test]
    fn bba_maps_buffer_to_ladder() {
        let p = BufferBased::default();
        let l = ladder();
        assert_eq!(p.choose(&state(0.0, None, None), &l), 0);
        assert_eq!(p.choose(&state(5.0, None, None), &l), 0);
        assert_eq!(p.choose(&state(20.0, None, None), &l), 4);
        assert_eq!(p.choose(&state(30.0, None, None), &l), 4);
        // Mid-cushion: monotone in buffer.
        let mid1 = p.choose(&state(9.0, None, None), &l);
        let mid2 = p.choose(&state(14.0, None, None), &l);
        assert!(mid1 <= mid2);
        assert!(mid1 >= 1 && mid2 <= 3);
    }

    #[test]
    fn bba_ignores_throughput() {
        let p = BufferBased::default();
        let l = ladder();
        let a = p.choose(&state(10.0, Some(2), Some(100.0)), &l);
        let b = p.choose(&state(10.0, Some(2), Some(100_000.0)), &l);
        assert_eq!(a, b);
    }

    #[test]
    fn rate_based_follows_throughput() {
        let p = RateBased::default();
        let l = ladder();
        assert_eq!(p.choose(&state(10.0, None, None), &l), 0);
        assert_eq!(p.choose(&state(10.0, None, Some(400.0)), &l), 0); // 360 → level 0
        assert_eq!(p.choose(&state(10.0, None, Some(1200.0)), &l), 2); // 1080 → level 2
        assert_eq!(p.choose(&state(10.0, None, Some(10_000.0)), &l), 4);
    }

    #[test]
    fn festive_steps_one_level() {
        let p = FestiveLike::default();
        let l = ladder();
        // Huge estimate but prev level 1 → step to 2 only.
        assert_eq!(p.choose(&state(10.0, Some(1), Some(10_000.0)), &l), 2);
        // Tiny estimate from level 3 → step down to 2.
        assert_eq!(p.choose(&state(10.0, Some(3), Some(100.0)), &l), 2);
        // Matching target stays.
        assert_eq!(p.choose(&state(10.0, Some(2), Some(1200.0)), &l), 2);
    }

    #[test]
    fn mpc_picks_high_when_bandwidth_ample() {
        let p = Mpc::new(5, QoeModel::default());
        let l = ladder();
        let choice = p.choose(&state(20.0, Some(4), Some(10_000.0)), &l);
        assert_eq!(choice, 4);
    }

    #[test]
    fn mpc_conservative_when_bandwidth_scarce() {
        let p = Mpc::new(5, QoeModel::default());
        let l = ladder();
        let choice = p.choose(&state(4.0, Some(0), Some(400.0)), &l);
        assert!(
            choice <= 1,
            "scarce bandwidth should keep MPC low, chose {choice}"
        );
    }

    #[test]
    fn mpc_avoids_wild_switches() {
        // With a big smoothness penalty, MPC should not leap from 0 to 4
        // even with bandwidth to spare.
        let qoe = QoeModel {
            smoothness_penalty: 10.0,
            ..Default::default()
        };
        let p = Mpc::new(3, qoe);
        let l = ladder();
        let choice = p.choose(&state(25.0, Some(0), Some(10_000.0)), &l);
        assert!(choice <= 2, "smoothness-heavy MPC jumped to {choice}");
    }

    #[test]
    fn mpc_lookahead_beats_greedy_when_rebuffer_looms() {
        // Greedy (horizon 1) grabs a higher level; horizon 5 foresees the
        // buffer drain. Construct: thin buffer, modest tput.
        let l = ladder();
        let st = state(5.0, Some(2), Some(1100.0));
        let greedy = Mpc::new(1, QoeModel::default()).choose(&st, &l);
        let planner = Mpc::new(5, QoeModel::default()).choose(&st, &l);
        assert!(
            planner <= greedy,
            "planner {planner} should be at most greedy {greedy}"
        );
    }
}

/// BOLA-like ABR (Lyapunov/buffer-utility controller): chooses the level
/// maximizing `(V·utility(level) + V·gamma − buffer) / chunk_size(level)`
/// — the classic DASH.js default family. Like BBA it is throughput-
/// agnostic, but it trades utility against buffer risk explicitly, so its
/// decisions differ from BBA's in the mid-buffer regime.
#[derive(Debug, Clone, PartialEq)]
pub struct BolaLike {
    /// Lyapunov control gain (seconds of buffer per unit utility);
    /// larger favors higher bitrates.
    pub v: f64,
    /// Rebuffer-avoidance utility offset.
    pub gamma: f64,
    /// QoE model supplying the per-level utility.
    pub qoe: QoeModel,
}

impl Default for BolaLike {
    fn default() -> Self {
        Self {
            v: 10.0,
            gamma: 0.8,
            qoe: QoeModel {
                log_utility: true,
                ..Default::default()
            },
        }
    }
}

impl AbrPolicy for BolaLike {
    fn name(&self) -> &str {
        "BOLA"
    }

    fn choose(&self, state: &ChunkState, ladder: &BitrateLadder) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for level in 0..ladder.levels() {
            let utility = self.qoe.utility(ladder, level);
            let score =
                (self.v * (utility + self.gamma) - state.buffer_secs) / ladder.chunk_kbits(level);
            if score > best_score {
                best_score = score;
                best = level;
            }
        }
        best
    }
}

#[cfg(test)]
mod bola_tests {
    use super::*;

    fn state(buffer: f64) -> ChunkState {
        ChunkState {
            index: 3,
            buffer_secs: buffer,
            prev_level: Some(2),
            prev_observed_kbps: Some(1500.0),
        }
    }

    #[test]
    fn bola_monotone_in_buffer() {
        let p = BolaLike::default();
        let l = BitrateLadder::five_level();
        let mut prev = 0usize;
        for b in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
            let level = p.choose(&state(b), &l);
            assert!(
                level >= prev,
                "BOLA should not drop as buffer grows: {prev} -> {level} at {b}s"
            );
            prev = level;
        }
    }

    #[test]
    fn bola_conservative_when_buffer_empty() {
        let p = BolaLike::default();
        let l = BitrateLadder::five_level();
        assert_eq!(p.choose(&state(0.0), &l), 0);
    }

    #[test]
    fn bola_ignores_throughput() {
        let p = BolaLike::default();
        let l = BitrateLadder::five_level();
        let mut a = state(12.0);
        let mut b = state(12.0);
        a.prev_observed_kbps = Some(100.0);
        b.prev_observed_kbps = Some(100_000.0);
        assert_eq!(p.choose(&a, &l), p.choose(&b, &l));
    }

    #[test]
    fn v_scales_the_upgrade_thresholds() {
        // V multiplies the buffer levels at which BOLA upgrades: at a
        // fixed mid buffer, a smaller V (thresholds compressed) sits at a
        // higher rung than a large V.
        let l = BitrateLadder::five_level();
        let compressed = BolaLike {
            v: 5.0,
            ..Default::default()
        };
        let stretched = BolaLike {
            v: 40.0,
            ..Default::default()
        };
        let st = state(10.0);
        assert!(
            compressed.choose(&st, &l) > stretched.choose(&st, &l),
            "v=5 should upgrade earlier than v=40 at the same buffer"
        );
    }
}
