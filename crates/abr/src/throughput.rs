//! Available bandwidth processes and the bitrate-dependent observation
//! discount — the causal mechanism behind the Figure 2 pitfall.

use ddn_stats::dist::{Distribution, LogNormal};
use ddn_stats::rng::Rng;

/// Available (true) bandwidth per chunk, in kbps.
#[derive(Debug, Clone)]
pub enum Bandwidth {
    /// Constant bandwidth `b` — the Figure 7b setting ("the available
    /// bandwidth is a constant b").
    Constant(f64),
    /// Log-normal i.i.d. per-chunk bandwidth with the given mean/std.
    LogNormal {
        /// Mean bandwidth (kbps).
        mean: f64,
        /// Standard deviation (kbps).
        std: f64,
    },
    /// Explicit per-chunk series (cycled if shorter than the session).
    Series(Vec<f64>),
}

impl Bandwidth {
    /// The bandwidth available while downloading chunk `i`.
    ///
    /// # Panics
    /// Panics if a `Series` is empty or a parameter is non-positive.
    pub fn at(&self, chunk: usize, rng: &mut dyn Rng) -> f64 {
        match self {
            Bandwidth::Constant(b) => {
                assert!(*b > 0.0, "bandwidth must be positive");
                *b
            }
            Bandwidth::LogNormal { mean, std } => LogNormal::from_mean_std(*mean, *std).sample(rng),
            Bandwidth::Series(v) => {
                assert!(!v.is_empty(), "bandwidth series must be non-empty");
                v[chunk % v.len()]
            }
        }
    }
}

/// The bitrate-dependent throughput discount `p(r)`: the fraction of
/// available bandwidth a download at bitrate level `r` actually observes.
///
/// "Using lower bitrates can lead to lower observed throughput than
/// available bandwidth; e.g., if the chunk size is too small for TCP to
/// reach steady state" (§2.2.1 citing \[12\]). The Figure 7b generator sets
/// observed throughput to `b · p(r)` with `p < 1` monotonically increasing
/// in the chosen bitrate.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputDiscount {
    floor: f64,
    gamma: f64,
}

impl ThroughputDiscount {
    /// Creates a discount curve: level `i` of `k` observes fraction
    /// `floor + (1 − floor) · ((i+1)/k)^gamma` of the available bandwidth
    /// — monotone increasing from slightly above `floor` to exactly 1 at
    /// the top level.
    ///
    /// # Panics
    /// Panics unless `0 < floor <= 1` and `gamma > 0`.
    pub fn new(floor: f64, gamma: f64) -> Self {
        assert!(
            floor > 0.0 && floor <= 1.0,
            "floor must be in (0,1], got {floor}"
        );
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        Self { floor, gamma }
    }

    /// The default curve used in the Figure 7b reproduction: the lowest
    /// bitrate sees ~45% of available bandwidth, the highest sees 100%.
    pub fn paper_default() -> Self {
        Self::new(0.35, 1.0)
    }

    /// A discount of 1 for every level — switches the pitfall *off*
    /// (observed throughput truly independent of bitrate), used as the
    /// control arm of the model-bias ablation.
    pub fn none() -> Self {
        Self {
            floor: 1.0,
            gamma: 1.0,
        }
    }

    /// The fraction observed at bitrate level `level` of a ladder with
    /// `levels` levels.
    ///
    /// # Panics
    /// Panics if `level >= levels` or `levels == 0`.
    pub fn fraction(&self, level: usize, levels: usize) -> f64 {
        assert!(levels > 0, "ladder must have levels");
        assert!(level < levels, "level {level} out of range 0..{levels}");
        let x = (level + 1) as f64 / levels as f64;
        self.floor + (1.0 - self.floor) * x.powf(self.gamma)
    }

    /// Observed throughput for a download at `level` when `available` kbps
    /// is truly available.
    pub fn observed(&self, available: f64, level: usize, levels: usize) -> f64 {
        available * self.fraction(level, levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::Xoshiro256;

    #[test]
    fn discount_monotone_and_tops_at_one() {
        let d = ThroughputDiscount::paper_default();
        let k = 5;
        let mut prev = 0.0;
        for i in 0..k {
            let f = d.fraction(i, k);
            assert!(f > prev, "fraction must increase");
            assert!(f <= 1.0 + 1e-12);
            prev = f;
        }
        assert!(
            (d.fraction(k - 1, k) - 1.0).abs() < 1e-12,
            "top level sees full bandwidth"
        );
    }

    #[test]
    fn none_discount_is_identity() {
        let d = ThroughputDiscount::none();
        for i in 0..5 {
            assert_eq!(d.observed(2000.0, i, 5), 2000.0);
        }
    }

    #[test]
    fn observed_scales_available() {
        let d = ThroughputDiscount::new(0.5, 1.0);
        // level 0 of 2: 0.5 + 0.5·0.5 = 0.75.
        assert!((d.observed(1000.0, 0, 2) - 750.0).abs() < 1e-9);
        assert!((d.observed(1000.0, 1, 2) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn constant_bandwidth() {
        let mut g = Xoshiro256::seed_from(1);
        let b = Bandwidth::Constant(2500.0);
        assert_eq!(b.at(0, &mut g), 2500.0);
        assert_eq!(b.at(99, &mut g), 2500.0);
    }

    #[test]
    fn lognormal_bandwidth_statistics() {
        let mut g = Xoshiro256::seed_from(2);
        let b = Bandwidth::LogNormal {
            mean: 2000.0,
            std: 400.0,
        };
        let xs: Vec<f64> = (0..50_000).map(|i| b.at(i, &mut g)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2000.0).abs() < 30.0, "mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn series_bandwidth_cycles() {
        let mut g = Xoshiro256::seed_from(3);
        let b = Bandwidth::Series(vec![100.0, 200.0]);
        assert_eq!(b.at(0, &mut g), 100.0);
        assert_eq!(b.at(1, &mut g), 200.0);
        assert_eq!(b.at(2, &mut g), 100.0);
    }

    #[test]
    #[should_panic(expected = "floor must be in (0,1]")]
    fn bad_floor_panics() {
        let _ = ThroughputDiscount::new(0.0, 1.0);
    }
}
