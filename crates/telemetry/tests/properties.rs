//! Property tests for histogram bucketing, on the in-repo `ddn-testkit`
//! framework: bucket bounds are monotone and contiguous, every sample
//! lands in the bucket whose bounds contain it, and merging conserves
//! total counts bucket-by-bucket.

use ddn_telemetry::{Histogram, HISTOGRAM_BUCKETS};
use ddn_testkit::{prop, prop_assert, prop_assert_eq, vecs};

#[test]
fn bounds_are_monotone_and_contiguous() {
    let (lo0, hi0) = Histogram::bucket_bounds(0);
    assert_eq!((lo0, hi0), (0, 0));
    for i in 1..HISTOGRAM_BUCKETS {
        let (prev_lo, prev_hi) = Histogram::bucket_bounds(i - 1);
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert!(prev_lo <= prev_hi, "bucket {} inverted", i - 1);
        assert!(lo <= hi, "bucket {i} inverted");
        assert_eq!(lo, prev_hi + 1, "gap or overlap between buckets {} and {i}", i - 1);
    }
    assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
}

prop! {
    fn samples_land_in_their_buckets_bounds(vals in vecs(0u64..u64::MAX, 1..50)) {
        for &v in &vals {
            let i = Histogram::bucket_index(v);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            let (lo, hi) = Histogram::bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "value {} outside bucket {} = [{}, {}]", v, i, lo, hi);
        }
    }

    fn total_count_equals_samples_recorded(vals in vecs(0u64..1_000_000, 0..80)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        prop_assert_eq!(h.total(), vals.len() as u64);
        let bucket_sum: u64 = h.counts().iter().sum();
        prop_assert_eq!(bucket_sum, vals.len() as u64);
    }

    fn merge_conserves_counts_per_bucket(
        xs in vecs(0u64..1_000_000, 0..60),
        ys in vecs(0u64..1_000_000, 0..60),
    ) {
        // Recording xs and ys separately then merging must equal
        // recording everything into one histogram.
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &v in &xs {
            a.record(v);
            combined.record(v);
        }
        for &v in &ys {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.total(), combined.total());
        prop_assert_eq!(a.sum(), combined.sum());
        prop_assert_eq!(a.counts(), combined.counts());
    }
}
