//! Deterministic aggregation of per-run [`Collector`]s into a
//! [`TelemetrySnapshot`]: the JSON wire format behind `--telemetry` and
//! the human summary table printed to stderr.
//!
//! Aggregation walks collectors in the order given (the runner passes
//! them in seed order), and within each collector in emission order, so
//! the snapshot — float accumulation included — is bit-identical between
//! serial and parallel execution. Wall-clock span timings are inherently
//! nondeterministic, which is why [`TelemetrySnapshot::to_json_deterministic`]
//! zeroes every nanosecond field while keeping the (deterministic) span
//! occurrence counts and structure.

use crate::collector::Collector;
use ddn_stats::Json;

/// Running aggregate of one health metric across runs.
#[derive(Clone, Copy, Debug)]
pub struct MetricAgg {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (accumulated in seed order).
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl MetricAgg {
    fn first(v: f64) -> Self {
        Self {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    fn absorb(&mut self, other: &MetricAgg) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("runs", Json::Int(self.count as i64)),
            ("mean", Json::Num(self.mean())),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }
}

/// Running aggregate of one span path's timings across runs.
#[derive(Clone, Copy, Debug)]
pub struct TimingAgg {
    /// Number of span occurrences (deterministic).
    pub count: u64,
    /// Total elapsed nanoseconds (nondeterministic).
    pub total_ns: u64,
    /// Fastest occurrence in nanoseconds.
    pub min_ns: u64,
    /// Slowest occurrence in nanoseconds.
    pub max_ns: u64,
}

impl TimingAgg {
    fn first(ns: u64) -> Self {
        Self {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        if ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    fn absorb(&mut self, other: &TimingAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        if other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
    }

    fn to_json(&self, zero_times: bool) -> Json {
        let ns = |v: u64| Json::Int(if zero_times { 0 } else { v.min(i64::MAX as u64) as i64 });
        let mean = if zero_times || self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        };
        Json::object(vec![
            ("count", Json::Int(self.count as i64)),
            ("total_ns", ns(self.total_ns)),
            ("mean_ns", Json::Num(mean)),
            ("min_ns", ns(self.min_ns)),
            ("max_ns", ns(self.max_ns)),
        ])
    }
}

fn entry<'a, V>(list: &'a mut Vec<(String, V)>, key: &str) -> Option<&'a mut V> {
    // Linear scan keeps first-seen order, which is what determinism needs;
    // these lists hold a handful of estimators/paths, not thousands.
    list.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Aggregated telemetry for one experiment (or several, via
/// [`TelemetrySnapshot::merge`]).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    runs: usize,
    threads: usize,
    /// source → metric → aggregate, both levels in first-seen order.
    health: Vec<(String, Vec<(String, MetricAgg)>)>,
    counters: Vec<(String, u64)>,
    timings: Vec<(String, TimingAgg)>,
}

impl TelemetrySnapshot {
    /// Aggregates per-run collectors. Pass them in seed order: the
    /// accumulation order defines the float bits of every mean.
    pub fn from_runs(collectors: &[Collector]) -> Self {
        let mut snap = TelemetrySnapshot {
            runs: collectors.len(),
            ..Default::default()
        };
        for c in collectors {
            for (source, metrics) in &c.health {
                if entry(&mut snap.health, source).is_none() {
                    snap.health.push((source.clone(), Vec::new()));
                }
                let per_source = entry(&mut snap.health, source).expect("just inserted");
                for &(name, value) in metrics {
                    match entry(per_source, name) {
                        Some(agg) => agg.observe(value),
                        None => per_source.push((name.to_string(), MetricAgg::first(value))),
                    }
                }
            }
            for &(name, delta) in &c.counts {
                match entry(&mut snap.counters, name) {
                    Some(v) => *v += delta,
                    None => snap.counters.push((name.to_string(), delta)),
                }
            }
            for (path, ns) in &c.spans {
                match entry(&mut snap.timings, path) {
                    Some(agg) => agg.observe(*ns),
                    None => snap.timings.push((path.clone(), TimingAgg::first(*ns))),
                }
            }
        }
        snap
    }

    /// Records the worker-thread count used to produce this snapshot
    /// (reported in the full JSON, excluded from the deterministic form).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Worker-thread count recorded via [`TelemetrySnapshot::set_threads`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of runs aggregated.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Adds one timing observation under `path` (used by the runner for
    /// whole-experiment wall time, outside any per-run collector).
    pub fn add_timing(&mut self, path: &str, ns: u64) {
        match entry(&mut self.timings, path) {
            Some(agg) => agg.observe(ns),
            None => self.timings.push((path.to_string(), TimingAgg::first(ns))),
        }
    }

    /// Aggregate for `metric` under `source`, if recorded.
    pub fn health_metric(&self, source: &str, metric: &str) -> Option<&MetricAgg> {
        self.health
            .iter()
            .find(|(s, _)| s == source)
            .and_then(|(_, ms)| ms.iter().find(|(m, _)| m == metric))
            .map(|(_, agg)| agg)
    }

    /// Health sources in first-seen order (estimator / subsystem names).
    pub fn health_sources(&self) -> Vec<&str> {
        self.health.iter().map(|(s, _)| s.as_str()).collect()
    }

    /// Value of run-local counter `name`, if any run incremented it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Folds `other` into `self` (e.g. combining the three figure-7
    /// panels into one file). Aggregates merge pairwise; `other`'s
    /// sources/paths unseen here are appended in their order.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.runs += other.runs;
        self.threads = self.threads.max(other.threads);
        for (source, metrics) in &other.health {
            if entry(&mut self.health, source).is_none() {
                self.health.push((source.clone(), Vec::new()));
            }
            let per_source = entry(&mut self.health, source).expect("just inserted");
            for (name, agg) in metrics {
                match entry(per_source, name) {
                    Some(mine) => mine.absorb(agg),
                    None => per_source.push((name.clone(), *agg)),
                }
            }
        }
        for (name, delta) in &other.counters {
            match entry(&mut self.counters, name) {
                Some(v) => *v += delta,
                None => self.counters.push((name.clone(), *delta)),
            }
        }
        for (path, agg) in &other.timings {
            match entry(&mut self.timings, path) {
                Some(mine) => mine.absorb(agg),
                None => self.timings.push((path.clone(), *agg)),
            }
        }
    }

    fn json(&self, deterministic: bool) -> Json {
        let health = Json::Object(
            self.health
                .iter()
                .map(|(source, metrics)| {
                    (
                        source.clone(),
                        Json::Object(
                            metrics
                                .iter()
                                .map(|(name, agg)| (name.clone(), agg.to_json()))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let counters = Json::Object(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::Int((*v).min(i64::MAX as u64) as i64)))
                .collect(),
        );
        let timings = Json::Object(
            self.timings
                .iter()
                .map(|(p, agg)| (p.clone(), agg.to_json(deterministic)))
                .collect(),
        );
        let mut fields = vec![
            ("version", Json::Int(1)),
            ("runs", Json::Int(self.runs as i64)),
        ];
        if !deterministic {
            fields.push(("threads", Json::Int(self.threads as i64)));
        }
        fields.push(("health", health));
        fields.push(("counters", counters));
        fields.push(("timings", timings));
        Json::object(fields)
    }

    /// Full JSON snapshot: version, runs, threads, health aggregates,
    /// counters, and span timings. This is what `--telemetry` writes.
    pub fn to_json(&self) -> Json {
        self.json(false)
    }

    /// Deterministic JSON form: drops the thread count and zeroes every
    /// nanosecond field (span *counts* stay). Bit-identical between
    /// `run_parallel(1, …)` and `run_parallel(n, …)`.
    pub fn to_json_deterministic(&self) -> Json {
        self.json(true)
    }

    /// Human-readable summary table (for stderr).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: {} run{} ({} thread{})\n",
            self.runs,
            if self.runs == 1 { "" } else { "s" },
            self.threads.max(1),
            if self.threads.max(1) == 1 { "" } else { "s" },
        ));
        if !self.health.is_empty() {
            out.push_str(&format!(
                "  {:<28} {:>6} {:>12} {:>12} {:>12}\n",
                "health", "runs", "mean", "min", "max"
            ));
            for (source, metrics) in &self.health {
                for (name, agg) in metrics {
                    out.push_str(&format!(
                        "  {:<28} {:>6} {:>12.4} {:>12.4} {:>12.4}\n",
                        format!("{source}/{name}"),
                        agg.count,
                        agg.mean(),
                        agg.min,
                        agg.max
                    ));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("  {:<28} {:>6}\n", "counters", "total"));
            for (name, v) in &self.counters {
                out.push_str(&format!("  {:<28} {:>6}\n", name, v));
            }
        }
        if !self.timings.is_empty() {
            out.push_str(&format!(
                "  {:<28} {:>6} {:>12} {:>12}\n",
                "timings", "count", "total(ms)", "mean(us)"
            ));
            for (path, agg) in &self.timings {
                out.push_str(&format!(
                    "  {:<28} {:>6} {:>12.2} {:>12.1}\n",
                    path,
                    agg.count,
                    agg.total_ns as f64 / 1e6,
                    if agg.count == 0 {
                        0.0
                    } else {
                        agg.total_ns as f64 / agg.count as f64 / 1e3
                    }
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect;

    fn one_run(seed: f64) -> Collector {
        let ((), c) = collect(|| {
            let _run = crate::collector::span("run");
            crate::collector::record_health("IPS", &[("ess", 10.0 + seed), ("max_weight", seed)]);
            crate::collector::add_count("records", 100);
        });
        c
    }

    #[test]
    fn aggregates_in_order_with_min_max() {
        let snap = TelemetrySnapshot::from_runs(&[one_run(1.0), one_run(3.0), one_run(2.0)]);
        assert_eq!(snap.runs(), 3);
        let ess = snap.health_metric("IPS", "ess").unwrap();
        assert_eq!(ess.count, 3);
        assert_eq!(ess.min, 11.0);
        assert_eq!(ess.max, 13.0);
        assert!((ess.mean() - 12.0).abs() < 1e-12);
        assert_eq!(snap.counter("records"), Some(300));
    }

    #[test]
    fn deterministic_json_zeroes_times_but_keeps_counts() {
        let mut snap = TelemetrySnapshot::from_runs(&[one_run(1.0)]);
        snap.set_threads(8);
        snap.add_timing("experiment", 12345);
        let j = snap.to_json_deterministic();
        assert!(j.get("threads").is_none());
        let timings = j.get("timings").unwrap();
        let run = timings.get("run").unwrap();
        assert_eq!(run.get("count").unwrap().as_i64(), Some(1));
        assert_eq!(run.get("total_ns").unwrap().as_i64(), Some(0));
        let full = snap.to_json();
        assert_eq!(full.get("threads").unwrap().as_i64(), Some(8));
        assert_eq!(
            full.get("timings")
                .unwrap()
                .get("experiment")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_i64(),
            Some(12345)
        );
    }

    #[test]
    fn merge_combines_runs_and_aggregates() {
        let mut a = TelemetrySnapshot::from_runs(&[one_run(1.0)]);
        let b = TelemetrySnapshot::from_runs(&[one_run(5.0)]);
        a.merge(&b);
        assert_eq!(a.runs(), 2);
        let ess = a.health_metric("IPS", "ess").unwrap();
        assert_eq!(ess.count, 2);
        assert_eq!(ess.max, 15.0);
        assert_eq!(a.counter("records"), Some(200));
    }

    #[test]
    fn render_mentions_every_section() {
        let mut snap = TelemetrySnapshot::from_runs(&[one_run(1.0)]);
        snap.set_threads(4);
        let table = snap.render();
        assert!(table.contains("telemetry: 1 run (4 threads)"));
        assert!(table.contains("IPS/ess"));
        assert!(table.contains("records"));
        assert!(table.contains("run"));
    }
}
