//! # ddn-telemetry — hermetic observability for the evaluation pipeline
//!
//! The paper's central warning is that off-policy estimates fail
//! *silently*: IPS variance explodes when importance weights concentrate
//! on a few records, replay throws away most of the trace, matching
//! collapses as the context space grows. A bare point estimate shows
//! none of that. This crate gives every layer of the workspace a way to
//! surface those failure signals without taking on a dependency:
//!
//! - **Spans** ([`span`]): RAII-timed hierarchical regions using
//!   [`std::time::Instant`] (monotonic — never wall-clock), recorded
//!   into the run-local collector as paths like `"run/fit"`.
//! - **Health diagnostics** ([`record_health`]): estimator-attributed
//!   metric batches — effective sample size, max weight, clip rate,
//!   acceptance rate, coverage — emitted by every evaluator in
//!   `ddn-estimators` whenever a collector is installed.
//! - **Registry** ([`Registry`]): process-wide atomic counters, gauges,
//!   and log-bucketed [`Histogram`]s for cross-run facts (chosen thread
//!   count, cumulative run durations) that don't need determinism.
//! - **Snapshots** ([`TelemetrySnapshot`]): per-seed collectors merged
//!   *in seed order*, so the parallel-vs-serial bit-identity guarantee
//!   of `ExperimentRunner` extends to telemetry. Exported as JSON via
//!   the in-repo `ddn_stats::Json` writer and rendered as a summary
//!   table for stderr.
//!
//! ## Determinism contract
//!
//! [`TelemetrySnapshot::to_json_deterministic`] is bit-identical across
//! thread counts: health aggregates and counters accumulate in seed
//! order, span *counts* are structural, and every nanosecond field is
//! zeroed (the full [`TelemetrySnapshot::to_json`] keeps real timings
//! and the thread count).
//!
//! ## Zero cost when off
//!
//! All free functions check one thread-local and no-op when no
//! [`collect`] scope is active; [`span`] doesn't even read the clock.
//! Callers computing anything non-trivial for a health record should
//! gate on [`enabled`] first.
//!
//! ```
//! let ((), run) = ddn_telemetry::collect(|| {
//!     let _outer = ddn_telemetry::span("run");
//!     ddn_telemetry::record_health("IPS", &[("ess", 37.5), ("max_weight", 4.0)]);
//!     ddn_telemetry::add_count("records", 200);
//! });
//! let snap = ddn_telemetry::TelemetrySnapshot::from_runs(&[run]);
//! assert_eq!(snap.health_metric("IPS", "ess").unwrap().mean(), 37.5);
//! assert!(snap.to_json().to_string().contains("\"ess\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod metrics;
pub mod snapshot;

pub use collector::{add_count, collect, enabled, record_health, span, Collector, Span};
pub use metrics::{
    quantile_from_counts, quantile_from_le_buckets, Counter, Gauge, Histogram, Registry,
    HISTOGRAM_BUCKETS,
};
pub use snapshot::{MetricAgg, TelemetrySnapshot, TimingAgg};
