//! Process-wide metric primitives: atomic counters, gauges, log-bucketed
//! histograms, and a thread-safe [`Registry`] that owns named instances.
//!
//! These are the *cross-run*, *cross-thread* side of telemetry — cheap
//! enough to leave compiled into hot paths (one relaxed atomic op per
//! update, no locks after handle acquisition). The per-run deterministic
//! side lives in [`crate::collector`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ddn_stats::Json;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of buckets in a [`Histogram`]: one zero bucket plus one per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-size log2-bucketed histogram of `u64` samples (typically
/// nanoseconds or byte counts).
///
/// Bucket 0 holds exactly the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)` (the last bucket's upper bound saturates at
/// `u64::MAX`). Recording is a single relaxed `fetch_add`, so histograms
/// can sit on hot paths shared across threads without a lock.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        // 0 has 64 leading zeros -> bucket 0; 2^k has 63-k -> bucket k+1.
        64 - value.leading_zeros() as usize
    }

    /// Inclusive `(low, high)` value range covered by bucket `index`.
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Per-bucket counts, in bucket order.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow, like the adds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// JSON snapshot: total count, sum, and the non-empty buckets as
    /// `{"le": inclusive_upper_bound, "count": n}` in bucket order.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let (_, hi) = Self::bucket_bounds(i);
                Some(Json::object(vec![
                    ("le", Json::Int(hi.min(i64::MAX as u64) as i64)),
                    ("count", Json::Int(n as i64)),
                ]))
            })
            .collect();
        Json::object(vec![
            ("count", Json::Int(self.total() as i64)),
            ("sum", Json::Int(self.sum().min(i64::MAX as u64) as i64)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// Thread-safe name → metric map. Handles are `Arc`s, so callers fetch
/// once and update lock-free afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut guard = list.lock().expect("telemetry registry poisoned");
    if let Some((_, v)) = guard.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    guard.push((name.to_string(), Arc::clone(&v)));
    v
}

impl Registry {
    /// Creates an empty registry (tests; production code uses [`Registry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Fetches (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Fetches (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Fetches (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// True when no metric has ever been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.lock().expect("poisoned").is_empty()
            && self.gauges.lock().expect("poisoned").is_empty()
            && self.histograms.lock().expect("poisoned").is_empty()
    }

    /// JSON snapshot of every registered metric, names sorted so the
    /// output is independent of registration order.
    pub fn to_json(&self) -> Json {
        fn sorted<T, F: Fn(&T) -> Json>(
            list: &Mutex<Vec<(String, Arc<T>)>>,
            render: F,
        ) -> Json {
            let mut entries: Vec<(String, Json)> = list
                .lock()
                .expect("poisoned")
                .iter()
                .map(|(n, v)| (n.clone(), render(v)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(entries)
        }
        Json::object(vec![
            (
                "counters",
                sorted(&self.counters, |c: &Counter| Json::Int(c.get() as i64)),
            ),
            ("gauges", sorted(&self.gauges, |g: &Gauge| Json::Num(g.get()))),
            (
                "histograms",
                sorted(&self.histograms, |h: &Histogram| h.to_json()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("events").get(), 5);
        let g = r.gauge("threads");
        g.set(8.0);
        assert_eq!(r.gauge("threads").get(), 8.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn histogram_bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 1010);
        let counts = h.counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2,3
        assert_eq!(counts[3], 1); // 4
        assert_eq!(counts[10], 1); // 1000 in [512,1024)
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(900);
        a.merge_from(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[3], 2);
    }

    #[test]
    fn registry_json_is_name_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        let j = r.to_json();
        let counters = j.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters[0].0, "alpha");
        assert_eq!(counters[1].0, "zeta");
    }
}
