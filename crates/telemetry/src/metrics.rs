//! Process-wide metric primitives: atomic counters, gauges, log-bucketed
//! histograms, and a thread-safe [`Registry`] that owns named instances.
//!
//! These are the *cross-run*, *cross-thread* side of telemetry — cheap
//! enough to leave compiled into hot paths (one relaxed atomic op per
//! update, no locks after handle acquisition). The per-run deterministic
//! side lives in [`crate::collector`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ddn_stats::Json;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of buckets in a [`Histogram`]: one zero bucket plus one per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-size log2-bucketed histogram of `u64` samples (typically
/// nanoseconds or byte counts).
///
/// Bucket 0 holds exactly the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)` (the last bucket's upper bound saturates at
/// `u64::MAX`). Recording is a single relaxed `fetch_add`, so histograms
/// can sit on hot paths shared across threads without a lock.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        // 0 has 64 leading zeros -> bucket 0; 2^k has 63-k -> bucket k+1.
        64 - value.leading_zeros() as usize
    }

    /// Inclusive `(low, high)` value range covered by bucket `index`.
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Per-bucket counts, in bucket order.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow, like the adds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimated value at quantile `q` (clamped to `[0, 1]`): the
    /// inclusive upper bound of the log2 bucket holding the sample of
    /// rank `ceil(q·n)`. With power-of-two buckets the estimate is
    /// within 2x of the true quantile — plenty for p50/p99 dashboards
    /// over nanosecond latencies. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.counts(), q)
    }

    /// JSON snapshot: total count, sum, and the non-empty buckets as
    /// `{"le": inclusive_upper_bound, "count": n}` in bucket order.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let (_, hi) = Self::bucket_bounds(i);
                Some(Json::object(vec![
                    ("le", Json::Int(hi.min(i64::MAX as u64) as i64)),
                    ("count", Json::Int(n as i64)),
                ]))
            })
            .collect();
        Json::object(vec![
            ("count", Json::Int(self.total() as i64)),
            ("sum", Json::Int(self.sum().min(i64::MAX as u64) as i64)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// Quantile estimate over raw per-bucket counts in [`Histogram`] bucket
/// order (`counts.len() <= HISTOGRAM_BUCKETS`): the inclusive upper
/// bound of the bucket holding the rank-`ceil(q·n)` sample. Returns 0
/// when every count is zero.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    assert!(
        counts.len() <= HISTOGRAM_BUCKETS,
        "more buckets than a Histogram has"
    );
    let bounded: Vec<(u64, u64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (Histogram::bucket_bounds(i).1, c))
        .collect();
    quantile_from_le_buckets(&bounded, q)
}

/// Quantile estimate over `(le, count)` pairs — the wire form the
/// `stats` verb serves ([`Histogram::to_json`] buckets) — so scrapers
/// like `ddn top` can compute p50/p99 without reconstructing a
/// [`Histogram`]. Pairs must be in ascending `le` order; empty buckets
/// may be omitted. Returns 0 when every count is zero.
pub fn quantile_from_le_buckets(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for &(le, count) in buckets {
        cum += count;
        if cum >= rank {
            return le;
        }
    }
    buckets.last().map(|&(le, _)| le).unwrap_or(0)
}

/// Thread-safe name → metric map. Handles are `Arc`s, so callers fetch
/// once and update lock-free afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut guard = list.lock().expect("telemetry registry poisoned");
    if let Some((_, v)) = guard.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    guard.push((name.to_string(), Arc::clone(&v)));
    v
}

impl Registry {
    /// Creates an empty registry (tests; production code uses [`Registry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Fetches (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Fetches (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Fetches (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// True when no metric has ever been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.lock().expect("poisoned").is_empty()
            && self.gauges.lock().expect("poisoned").is_empty()
            && self.histograms.lock().expect("poisoned").is_empty()
    }

    /// JSON snapshot of every registered metric, names sorted so the
    /// output is independent of registration order.
    pub fn to_json(&self) -> Json {
        fn sorted<T, F: Fn(&T) -> Json>(
            list: &Mutex<Vec<(String, Arc<T>)>>,
            render: F,
        ) -> Json {
            let mut entries: Vec<(String, Json)> = list
                .lock()
                .expect("poisoned")
                .iter()
                .map(|(n, v)| (n.clone(), render(v)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(entries)
        }
        Json::object(vec![
            (
                "counters",
                sorted(&self.counters, |c: &Counter| Json::Int(c.get() as i64)),
            ),
            ("gauges", sorted(&self.gauges, |g: &Gauge| Json::Num(g.get()))),
            (
                "histograms",
                sorted(&self.histograms, |h: &Histogram| h.to_json()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("events").get(), 5);
        let g = r.gauge("threads");
        g.set(8.0);
        assert_eq!(r.gauge("threads").get(), 8.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn histogram_bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 1010);
        let counts = h.counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2,3
        assert_eq!(counts[3], 1); // 4
        assert_eq!(counts[10], 1); // 1000 in [512,1024)
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(900);
        a.merge_from(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[3], 2);
    }

    #[test]
    fn bucket_index_edges() {
        // The three values a log2 scheme can get wrong: zero (no leading
        // bit), one (first power), and the saturating top.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_edges_and_contiguity() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Buckets tile u64 exactly: no gaps, no overlaps, and every
        // bound maps back to its own bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} inverted");
            assert_eq!(Histogram::bucket_index(lo), i, "low bound of {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high bound of {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(
                    hi + 1,
                    Histogram::bucket_bounds(i + 1).0,
                    "gap after bucket {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "bucket index out of range")]
    fn bucket_bounds_rejects_out_of_range() {
        Histogram::bucket_bounds(HISTOGRAM_BUCKETS);
    }

    #[test]
    fn extreme_values_record_and_saturate_in_json() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.total(), 3);
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[64], 1);
        // The raw sum wraps like the atomic adds (0 + 1 + u64::MAX = 0),
        // but the JSON form clamps to i64::MAX so the wire never carries
        // a wrapped (or negative) sum.
        assert_eq!(h.sum(), 0);
        let h2 = Histogram::new();
        h2.record(u64::MAX);
        let j = h2.to_json();
        assert_eq!(j.get("sum").unwrap().as_i64(), Some(i64::MAX));
        let buckets = j.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("le").unwrap().as_i64(), Some(i64::MAX));
        assert_eq!(buckets[0].get("count").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn merge_from_edges() {
        let a = Histogram::new();
        let b = Histogram::new();
        b.record(0);
        b.record(u64::MAX);
        a.merge_from(&b);
        a.merge_from(&Histogram::new()); // empty merge is a no-op
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts()[0], 1);
        assert_eq!(a.counts()[64], 1);
        assert_eq!(a.sum(), b.sum());
    }

    /// Golden pin of the bucket boundaries behind the `stats` wire
    /// format: bucket 0 is exactly zero, bucket i >= 1 is
    /// [2^(i-1), 2^i), and the top bucket saturates at u64::MAX. If
    /// this test fails, the `le` values every scraper stores have
    /// silently shifted — that is a breaking change to make here,
    /// deliberately.
    #[test]
    fn bucket_boundaries_golden() {
        let golden_le: Vec<u64> = std::iter::once(0)
            .chain((1..64).map(|i| (1u64 << i) - 1))
            .chain(std::iter::once(u64::MAX))
            .collect();
        let got: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(|i| Histogram::bucket_bounds(i).1)
            .collect();
        assert_eq!(got, golden_le);
        assert_eq!(&got[..5], &[0, 1, 3, 7, 15]);
        assert_eq!(got[10], 1023);
        assert_eq!(got[63], i64::MAX as u64);
    }

    #[test]
    fn quantiles_from_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..99 {
            h.record(100); // bucket [64, 127]
        }
        h.record(100_000); // bucket [65536, 131071]
        assert_eq!(h.quantile(0.0), 127);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 131_071);
        // The wire form gives the same answers.
        let pairs = [(127u64, 99u64), (131_071, 1)];
        assert_eq!(quantile_from_le_buckets(&pairs, 0.5), 127);
        assert_eq!(quantile_from_le_buckets(&pairs, 1.0), 131_071);
        assert_eq!(quantile_from_le_buckets(&[], 0.5), 0);
        assert_eq!(quantile_from_counts(&[0, 0, 0], 0.9), 0);
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        counts[0] = 1;
        assert_eq!(quantile_from_counts(&counts, 0.5), 0);
    }

    #[test]
    fn registry_json_is_name_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        let j = r.to_json();
        let counters = j.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters[0].0, "alpha");
        assert_eq!(counters[1].0, "zeta");
    }
}
