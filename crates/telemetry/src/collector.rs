//! Per-run telemetry collection: a thread-local [`Collector`] installed
//! for the duration of one seeded experiment run.
//!
//! The design constraint is the workspace determinism contract:
//! `ExperimentRunner::run_parallel` must stay bit-identical to the serial
//! path no matter the thread count. Global atomics cannot provide that
//! (increments interleave arbitrarily), so instrumented code writes into
//! whichever collector is installed on *its own thread*, and the runner
//! hands each seed's finished collector back in seed order for the
//! deterministic aggregation in [`crate::snapshot`].
//!
//! When no collector is installed every entry point is a cheap
//! thread-local check and a no-op, which is what keeps the "disabled
//! overhead < 2%" budget honest: un-instrumented callers of estimators
//! pay one TLS load per emission site.

use std::cell::RefCell;
use std::time::Instant;

/// Everything one run recorded, in emission order.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    /// `(source, metrics)` health records, e.g. `("IPS", [("ess", 42.0)])`.
    pub health: Vec<(String, Vec<(&'static str, f64)>)>,
    /// Named event counts accumulated over the run.
    pub counts: Vec<(&'static str, u64)>,
    /// `(span path, elapsed ns)` per span occurrence, close order.
    pub spans: Vec<(String, u64)>,
}

struct Active {
    collector: Collector,
    /// Open span names, innermost last; joined with '/' to form paths.
    stack: Vec<&'static str>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Runs `f` with a fresh collector installed on this thread and returns
/// `f`'s output together with everything it recorded.
///
/// Nesting is allowed: the previous collector (if any) is suspended and
/// restored afterwards, so an instrumented scenario can itself be called
/// from instrumented code without mixing records.
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Collector) {
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(Active {
            collector: Collector::default(),
            stack: Vec::new(),
        })
    });
    let out = f();
    let active = ACTIVE
        .with(|a| std::mem::replace(&mut *a.borrow_mut(), prev))
        .expect("telemetry collector removed during collect()");
    (out, active.collector)
}

/// True when a collector is installed on this thread. Instrumented code
/// should gate any non-trivial metric computation behind this.
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Records a batch of health metrics attributed to `source` (an
/// estimator or subsystem name). No-op without a collector.
pub fn record_health(source: &str, metrics: &[(&'static str, f64)]) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active
                .collector
                .health
                .push((source.to_string(), metrics.to_vec()));
        }
    });
}

/// Adds `delta` to the run-local counter `name`. No-op without a
/// collector.
pub fn add_count(name: &'static str, delta: u64) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            if let Some((_, v)) = active
                .collector
                .counts
                .iter_mut()
                .find(|(n, _)| *n == name)
            {
                *v += delta;
            } else {
                active.collector.counts.push((name, delta));
            }
        }
    });
}

/// RAII guard for one timed span; created by [`span`], records its
/// elapsed time on drop.
#[must_use = "a span measures nothing unless held for the region's duration"]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a named span. With a collector installed the guard records
/// `Instant`-based elapsed nanoseconds under the hierarchical path of
/// all open spans (e.g. `"run/fit"`) when dropped; without one it is
/// inert and never reads the clock.
///
/// Guards must be dropped in LIFO order (the natural RAII shape) and
/// inside the enclosing [`collect`] scope.
pub fn span(name: &'static str) -> Span {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active.stack.push(name);
            Span {
                start: Some(Instant::now()),
            }
        } else {
            Span { start: None }
        }
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        ACTIVE.with(|a| {
            if let Some(active) = a.borrow_mut().as_mut() {
                let path = active.stack.join("/");
                active.stack.pop();
                active.collector.spans.push((path, ns));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_entry_points_are_no_ops() {
        assert!(!enabled());
        record_health("X", &[("ess", 1.0)]);
        add_count("events", 3);
        let _s = span("outer"); // inert guard
        assert!(!enabled());
    }

    #[test]
    fn collect_captures_health_counts_and_spans() {
        let (value, c) = collect(|| {
            assert!(enabled());
            let _outer = span("run");
            {
                let _inner = span("fit");
                record_health("DR", &[("ess", 12.0), ("max_weight", 3.0)]);
            }
            add_count("records", 10);
            add_count("records", 5);
            42
        });
        assert_eq!(value, 42);
        assert!(!enabled());
        assert_eq!(c.health.len(), 1);
        assert_eq!(c.health[0].0, "DR");
        assert_eq!(c.health[0].1[0], ("ess", 12.0));
        assert_eq!(c.counts, vec![("records", 15)]);
        let paths: Vec<&str> = c.spans.iter().map(|(p, _)| p.as_str()).collect();
        // Inner span closes first; paths are hierarchical.
        assert_eq!(paths, vec!["run/fit", "run"]);
    }

    #[test]
    fn nested_collect_restores_outer_collector() {
        let (_, outer) = collect(|| {
            record_health("outer", &[("n", 1.0)]);
            let ((), inner) = collect(|| {
                record_health("inner", &[("n", 2.0)]);
            });
            assert_eq!(inner.health.len(), 1);
            assert_eq!(inner.health[0].0, "inner");
            record_health("outer", &[("n", 3.0)]);
        });
        let sources: Vec<&str> = outer.health.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(sources, vec!["outer", "outer"]);
    }
}
