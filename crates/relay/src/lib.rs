//! # ddn-relay — VoIP relay-selection substrate (the VIA scenario)
//!
//! Reproduces the paper's Figure 3 pitfall: VIA (paper ref \[14\]) estimates
//! the quality of relaying a call `A → R → B` from previously *relayed*
//! calls between the same AS pair. "However, if the old policy chooses
//! only calls between two devices behind NATs to use the relay path, the
//! observed performance on these calls may not be indicative to infer the
//! performance of relaying other calls between public IPs, since private
//! IP users may have different last-mile network conditions" (ref \[22\]).
//!
//! The [`RelayWorld`] here makes that concrete: call quality (an MOS-like
//! score) depends on the AS pair, the chosen path (direct or one of the
//! relays), and whether the endpoints are NAT-ed — with NAT hurting direct
//! paths far more than relayed ones. A biased logging policy
//! ([`RelayWorld::nat_only_relay_policy`]) relays exactly the NAT-ed
//! calls, so naive per-path averages overestimate how much public-IP
//! clients would gain from relaying.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod quality;

pub use quality::{emodel_mos, PathMetrics};

use ddn_policy::Policy;
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// Parameters of the relay world's quality model.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayConfig {
    /// Number of AS pairs (the `A_i → B_j` routes of Figure 3).
    pub as_pairs: usize,
    /// Number of relay nodes (decision space = direct + relays).
    pub relays: usize,
    /// Fraction of calls whose endpoints are NAT-ed.
    pub nat_fraction: f64,
    /// Quality penalty NAT inflicts on the *direct* path.
    pub nat_direct_penalty: f64,
    /// Quality penalty NAT inflicts on *relayed* paths (smaller: relays
    /// help NAT traversal).
    pub nat_relay_penalty: f64,
    /// Observation noise standard deviation.
    pub noise_std: f64,
}

impl Default for RelayConfig {
    fn default() -> Self {
        Self {
            as_pairs: 6,
            relays: 2,
            nat_fraction: 0.4,
            nat_direct_penalty: 1.2,
            nat_relay_penalty: 0.2,
            noise_std: 0.15,
        }
    }
}

impl RelayConfig {
    /// Validates parameters.
    ///
    /// # Panics
    /// Panics on empty dimensions or out-of-range fractions.
    pub fn validate(&self) {
        assert!(self.as_pairs > 0, "need at least one AS pair");
        assert!(self.relays > 0, "need at least one relay");
        assert!(
            (0.0..=1.0).contains(&self.nat_fraction),
            "nat_fraction must be in [0,1]"
        );
        assert!(self.noise_std >= 0.0, "noise_std must be ≥ 0");
    }
}

/// The VoIP world: deterministic mean quality per (pair, NAT, path) plus
/// observation noise.
#[derive(Debug, Clone)]
pub struct RelayWorld {
    config: RelayConfig,
    schema: ContextSchema,
    space: DecisionSpace,
    /// Mean direct-path quality per AS pair.
    direct_base: Vec<f64>,
    /// `relay_gain[pair][relay]`: relay quality delta vs. that pair's
    /// direct base (before NAT effects).
    relay_gain: Vec<Vec<f64>>,
}

impl RelayWorld {
    /// Builds a world whose per-pair bases and relay gains are drawn
    /// deterministically from `seed`.
    pub fn new(config: RelayConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = Xoshiro256::seed_from(seed);
        let schema = ContextSchema::builder()
            .categorical("as_pair", config.as_pairs as u32)
            .categorical("nat", 2)
            .build();
        let mut names = vec!["direct".to_string()];
        names.extend((0..config.relays).map(|r| format!("relay-{r}")));
        let space = DecisionSpace::new(names);
        // Direct base quality ~ MOS 3.2–4.2.
        let direct_base: Vec<f64> = (0..config.as_pairs).map(|_| 3.2 + rng.next_f64()).collect();
        // Relay gains in [−0.4, +0.4]: some relays help some pairs.
        let relay_gain: Vec<Vec<f64>> = (0..config.as_pairs)
            .map(|_| {
                (0..config.relays)
                    .map(|_| rng.range_f64(-0.4, 0.4))
                    .collect()
            })
            .collect();
        Self {
            config,
            schema,
            space,
            direct_base,
            relay_gain,
        }
    }

    /// The context schema (`as_pair`, `nat`).
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space (`direct`, `relay-0`, …).
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &RelayConfig {
        &self.config
    }

    /// Mean (noise-free) call quality for a call on `pair` with NAT status
    /// `nat` over decision `d`.
    pub fn mean_quality(&self, pair: usize, nat: bool, d: Decision) -> f64 {
        let base = self.direct_base[pair];
        if d.index() == 0 {
            base - if nat {
                self.config.nat_direct_penalty
            } else {
                0.0
            }
        } else {
            let relay = d.index() - 1;
            base + self.relay_gain[pair][relay]
                - if nat {
                    self.config.nat_relay_penalty
                } else {
                    0.0
                }
        }
    }

    /// Builds the context for a call.
    pub fn context(&self, pair: usize, nat: bool) -> Context {
        Context::build(&self.schema)
            .set_cat("as_pair", pair as u32)
            .set_cat("nat", u32::from(nat))
            .finish()
    }

    /// Samples a call population of size `n`: uniformly random pairs,
    /// NAT per `nat_fraction`.
    pub fn sample_calls(&self, n: usize, rng: &mut dyn Rng) -> Vec<(usize, bool)> {
        (0..n)
            .map(|_| {
                (
                    rng.index(self.config.as_pairs),
                    rng.chance(self.config.nat_fraction),
                )
            })
            .collect()
    }

    /// Logs a trace: for each call, `policy` picks the path, the world
    /// produces a noisy quality observation.
    pub fn log_trace(&self, calls: &[(usize, bool)], policy: &dyn Policy, seed: u64) -> Trace {
        assert!(!calls.is_empty(), "need at least one call");
        let mut rng = Xoshiro256::seed_from(seed);
        let noise = Normal::new(0.0, self.config.noise_std);
        let records = calls
            .iter()
            .map(|&(pair, nat)| {
                let ctx = self.context(pair, nat);
                let (d, p) = policy.sample_with_prob(&ctx, &mut rng);
                let q = self.mean_quality(pair, nat, d) + noise.sample(&mut rng);
                TraceRecord::new(ctx, d, q).with_propensity(p)
            })
            .collect();
        Trace::from_records(self.schema.clone(), self.space.clone(), records)
            .expect("relay world emits valid traces")
    }

    /// Exact expected value of `policy` over a call population (noise has
    /// zero mean, so this is analytic).
    pub fn true_value(&self, calls: &[(usize, bool)], policy: &dyn Policy) -> f64 {
        let total: f64 = calls
            .iter()
            .map(|&(pair, nat)| {
                let ctx = self.context(pair, nat);
                self.space
                    .iter()
                    .map(|d| policy.prob(&ctx, d) * self.mean_quality(pair, nat, d))
                    .sum::<f64>()
            })
            .sum();
        total / calls.len() as f64
    }

    /// The Figure 3 biased logging policy, ε-smoothed: NAT-ed calls go to
    /// relay 0 and public calls go direct (each with probability `1 − ε`;
    /// the remaining ε explores uniformly). With `ε = 0` it is exactly the
    /// deterministic selection-bias policy from the figure.
    pub fn nat_only_relay_policy(&self, epsilon: f64) -> impl Policy + use<> {
        NatOnlyRelay {
            space: self.space.clone(),
            epsilon,
        }
    }
}

/// See [`RelayWorld::nat_only_relay_policy`].
#[derive(Debug, Clone)]
struct NatOnlyRelay {
    space: DecisionSpace,
    epsilon: f64,
}

impl Policy for NatOnlyRelay {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        let nat = ctx.cat(1) == 1;
        let preferred = if nat { 1 } else { 0 };
        let k = self.space.len() as f64;
        let base = if d.index() == preferred {
            1.0 - self.epsilon
        } else {
            0.0
        };
        base + self.epsilon / k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};

    fn world() -> RelayWorld {
        RelayWorld::new(RelayConfig::default(), 42)
    }

    #[test]
    fn nat_hurts_direct_more_than_relay() {
        let w = world();
        for pair in 0..w.config().as_pairs {
            let direct_gap = w.mean_quality(pair, false, Decision::from_index(0))
                - w.mean_quality(pair, true, Decision::from_index(0));
            let relay_gap = w.mean_quality(pair, false, Decision::from_index(1))
                - w.mean_quality(pair, true, Decision::from_index(1));
            assert!((direct_gap - 1.2).abs() < 1e-12);
            assert!((relay_gap - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn biased_policy_relays_nat_calls() {
        let w = world();
        let p = w.nat_only_relay_policy(0.0);
        let nat_ctx = w.context(0, true);
        let pub_ctx = w.context(0, false);
        assert_eq!(p.prob(&nat_ctx, Decision::from_index(1)), 1.0);
        assert_eq!(p.prob(&pub_ctx, Decision::from_index(0)), 1.0);
        let smoothed = w.nat_only_relay_policy(0.3);
        let total: f64 = w.space().iter().map(|d| smoothed.prob(&nat_ctx, d)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(smoothed.prob(&nat_ctx, Decision::from_index(0)) > 0.0);
    }

    #[test]
    fn selection_bias_inflates_naive_relay_estimate() {
        // Mean quality of *observed* relayed calls (all NAT-ed) vs. the
        // true value of relaying everyone: the naive estimate is lower,
        // because NAT-ed observations aren't representative... and crucially
        // the naive estimator can't see the public-IP relay quality at all.
        let w = world();
        let mut rng = Xoshiro256::seed_from(1);
        let calls = w.sample_calls(4000, &mut rng);
        let biased = w.nat_only_relay_policy(0.0);
        let trace = w.log_trace(&calls, &biased, 2);
        let relayed: Vec<f64> = trace
            .records()
            .iter()
            .filter(|r| r.decision.index() == 1)
            .map(|r| r.reward)
            .collect();
        let naive = relayed.iter().sum::<f64>() / relayed.len() as f64;
        let relay_all = LookupPolicy::constant(w.space().clone(), 1);
        let truth = w.true_value(&calls, &relay_all);
        assert!(
            (naive - truth).abs() > 0.05,
            "naive {naive} should be visibly biased vs truth {truth}"
        );
    }

    #[test]
    fn true_value_matches_monte_carlo() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(3);
        let calls = w.sample_calls(2000, &mut rng);
        let policy = UniformRandomPolicy::new(w.space().clone());
        let analytic = w.true_value(&calls, &policy);
        let trace = w.log_trace(&calls, &policy, 4);
        assert!((trace.mean_reward() - analytic).abs() < 0.03);
    }

    #[test]
    fn log_trace_deterministic_in_seed() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(5);
        let calls = w.sample_calls(100, &mut rng);
        let p = UniformRandomPolicy::new(w.space().clone());
        let a = w.log_trace(&calls, &p, 9);
        let b = w.log_trace(&calls, &p, 9);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn world_regeneration_is_stable() {
        let a = RelayWorld::new(RelayConfig::default(), 7);
        let b = RelayWorld::new(RelayConfig::default(), 7);
        assert_eq!(
            a.mean_quality(0, false, Decision::from_index(1)),
            b.mean_quality(0, false, Decision::from_index(1))
        );
    }
}
