//! Voice quality from path metrics: a simplified E-model (ITU-T G.107
//! lineage).
//!
//! The base [`RelayWorld`] uses an additive MOS-like
//! quality score; this module adds the *physical* channel: per-path
//! latency/jitter/loss metrics mapped through the standard R-factor
//! transmission-rating model to a MOS. It matters for the reproduction
//! because the NAT effect (paper Figure 3, ref \[22\]) is physically a
//! *last-mile impairment* — extra delay and loss — and the E-model is
//! non-linear in those impairments, so selection bias distorts MOS
//! averages even more than additive models suggest.

use crate::{RelayConfig, RelayWorld};
use ddn_policy::Policy;
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Decision, Trace, TraceRecord};

/// One-way path metrics for a call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// Mouth-to-ear latency in milliseconds.
    pub latency_ms: f64,
    /// Jitter in milliseconds (folded into effective delay).
    pub jitter_ms: f64,
    /// Packet loss percentage in `[0, 100]`.
    pub loss_pct: f64,
}

impl PathMetrics {
    /// Effective delay: latency plus a 2× jitter buffer allowance.
    pub fn effective_delay_ms(&self) -> f64 {
        self.latency_ms + 2.0 * self.jitter_ms
    }
}

/// Simplified E-model MOS from path metrics.
///
/// `R = 93.2 − Id(delay) − Ie(loss)` with the standard delay impairment
/// `Id = 0.024·d + 0.11·(d − 177.3)·H(d − 177.3)` and a G.711+PLC-style
/// loss impairment `Ie = 30·ln(1 + 0.15·loss_pct)`, then the canonical
/// R→MOS mapping clamped to `[1, 5]`.
pub fn emodel_mos(metrics: &PathMetrics) -> f64 {
    let d = metrics.effective_delay_ms().max(0.0);
    let id = 0.024 * d + if d > 177.3 { 0.11 * (d - 177.3) } else { 0.0 };
    let loss = metrics.loss_pct.clamp(0.0, 100.0);
    let ie = 30.0 * (1.0 + 0.15 * loss).ln();
    let r = (93.2 - id - ie).clamp(0.0, 100.0);
    let mos = 1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r);
    mos.clamp(1.0, 5.0)
}

impl RelayWorld {
    /// Mean (noise-free) path metrics for a call on `pair` with NAT
    /// status `nat` over decision `d`. Derived deterministically from the
    /// world's seed-drawn tables so the metrics channel is consistent
    /// with the additive quality channel: better additive quality ↔
    /// lower latency/loss.
    pub fn mean_metrics(&self, pair: usize, nat: bool, d: Decision) -> PathMetrics {
        // Map the additive quality score (≈ 2..4.6 MOS-ish) onto latency:
        // each missing quality point costs ~80 ms.
        let q = self.mean_quality(pair, nat, d);
        let latency = (40.0 + (4.6 - q) * 80.0).max(5.0);
        // NAT-ed last miles add jitter and loss, much more on the direct
        // path (no relay smoothing the traversal).
        let (jitter, loss) = if nat {
            if d.index() == 0 {
                (12.0, 2.5)
            } else {
                (6.0, 0.8)
            }
        } else {
            (3.0, 0.2)
        };
        PathMetrics {
            latency_ms: latency,
            jitter_ms: jitter,
            loss_pct: loss,
        }
    }

    /// Samples a noisy MOS observation for one call.
    pub fn sample_mos(&self, pair: usize, nat: bool, d: Decision, rng: &mut dyn Rng) -> f64 {
        let m = self.mean_metrics(pair, nat, d);
        let jittered = PathMetrics {
            latency_ms: (m.latency_ms + Normal::new(0.0, 8.0).sample(rng)).max(1.0),
            jitter_ms: (m.jitter_ms + Normal::new(0.0, 1.0).sample(rng)).max(0.0),
            loss_pct: (m.loss_pct + Normal::new(0.0, 0.15).sample(rng)).max(0.0),
        };
        emodel_mos(&jittered)
    }

    /// Logs a trace whose rewards are E-model MOS values.
    pub fn log_mos_trace(&self, calls: &[(usize, bool)], policy: &dyn Policy, seed: u64) -> Trace {
        assert!(!calls.is_empty(), "need at least one call");
        let mut rng = Xoshiro256::seed_from(seed);
        let records = calls
            .iter()
            .map(|&(pair, nat)| {
                let ctx = self.context(pair, nat);
                let (d, p) = policy.sample_with_prob(&ctx, &mut rng);
                let mos = self.sample_mos(pair, nat, d, &mut rng);
                TraceRecord::new(ctx, d, mos).with_propensity(p)
            })
            .collect();
        Trace::from_records(self.schema().clone(), self.space().clone(), records)
            .expect("relay world emits valid traces")
    }

    /// Monte-Carlo ground-truth MOS value of a policy over a call
    /// population (the E-model is non-linear, so sampling is the honest
    /// estimate; `reps` noisy passes are averaged).
    pub fn true_mos_value(
        &self,
        calls: &[(usize, bool)],
        policy: &dyn Policy,
        reps: usize,
        seed: u64,
    ) -> f64 {
        assert!(reps > 0, "need at least one repetition");
        let mut rng = Xoshiro256::seed_from(seed);
        let mut total = 0.0;
        for _ in 0..reps {
            for &(pair, nat) in calls {
                let ctx = self.context(pair, nat);
                let (d, _) = policy.sample_with_prob(&ctx, &mut rng);
                total += self.sample_mos(pair, nat, d, &mut rng);
            }
        }
        total / (reps * calls.len()) as f64
    }
}

/// A convenience constructor mirroring [`RelayWorld::new`], for symmetry
/// in examples that only use the MOS channel.
pub fn mos_world(config: RelayConfig, seed: u64) -> RelayWorld {
    RelayWorld::new(config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::UniformRandomPolicy;

    fn world() -> RelayWorld {
        RelayWorld::new(RelayConfig::default(), 42)
    }

    #[test]
    fn emodel_reference_shape() {
        // Pristine path: MOS ≈ 4.3-4.4 (the G.711 ceiling).
        let pristine = emodel_mos(&PathMetrics {
            latency_ms: 20.0,
            jitter_ms: 1.0,
            loss_pct: 0.0,
        });
        assert!((4.2..=4.5).contains(&pristine), "pristine MOS {pristine}");
        // Monotone: latency hurts.
        let slow = emodel_mos(&PathMetrics {
            latency_ms: 400.0,
            jitter_ms: 1.0,
            loss_pct: 0.0,
        });
        assert!(slow < pristine - 0.5, "400ms path {slow}");
        // Loss hurts a lot.
        let lossy = emodel_mos(&PathMetrics {
            latency_ms: 20.0,
            jitter_ms: 1.0,
            loss_pct: 5.0,
        });
        assert!(lossy < pristine - 0.5, "5% loss {lossy}");
        // Bounds always hold.
        let awful = emodel_mos(&PathMetrics {
            latency_ms: 2_000.0,
            jitter_ms: 100.0,
            loss_pct: 60.0,
        });
        assert!((1.0..=5.0).contains(&awful));
        assert!((1.0..2.0).contains(&awful));
    }

    #[test]
    fn delay_knee_at_177ms() {
        // The E-model's delay impairment steepens past 177.3 ms.
        let f = |d: f64| {
            emodel_mos(&PathMetrics {
                latency_ms: d,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            })
        };
        let slope_before = f(100.0) - f(150.0);
        let slope_after = f(250.0) - f(300.0);
        assert!(
            slope_after > slope_before,
            "post-knee degradation {slope_after} should exceed pre-knee {slope_before}"
        );
    }

    #[test]
    fn metrics_channel_consistent_with_additive_channel() {
        // For a fixed (pair, nat), decisions ordered by additive quality
        // must be ordered the same way by E-model MOS of mean metrics.
        let w = world();
        for pair in 0..w.config().as_pairs {
            for nat in [false, true] {
                let mut pairs: Vec<(f64, f64)> = w
                    .space()
                    .iter()
                    .map(|d| {
                        (
                            w.mean_quality(pair, nat, d),
                            emodel_mos(&w.mean_metrics(pair, nat, d)),
                        )
                    })
                    .collect();
                pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for win in pairs.windows(2) {
                    assert!(
                        win[1].1 >= win[0].1 - 1e-9,
                        "MOS should be monotone in additive quality: {pairs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nat_bias_shows_in_the_mos_channel_too() {
        // The Figure 3 story must survive the non-linear channel: naive
        // per-path MOS averages from a NAT-only-relay log misstate the
        // relay-everyone value.
        let w = world();
        let mut rng = Xoshiro256::seed_from(1);
        let calls = w.sample_calls(4_000, &mut rng);
        let biased = w.nat_only_relay_policy(0.0);
        let trace = w.log_mos_trace(&calls, &biased, 2);
        let relayed: Vec<f64> = trace
            .records()
            .iter()
            .filter(|r| r.decision.index() == 1)
            .map(|r| r.reward)
            .collect();
        let naive = relayed.iter().sum::<f64>() / relayed.len() as f64;
        let relay_all = ddn_policy::LookupPolicy::constant(w.space().clone(), 1);
        let truth = w.true_mos_value(&calls, &relay_all, 4, 3);
        assert!(
            (naive - truth).abs() > 0.02,
            "naive {naive} vs truth {truth}: NAT bias should distort MOS too"
        );
    }

    #[test]
    fn mos_trace_rewards_in_range() {
        let w = world();
        let mut rng = Xoshiro256::seed_from(4);
        let calls = w.sample_calls(500, &mut rng);
        let uni = UniformRandomPolicy::new(w.space().clone());
        let t = w.log_mos_trace(&calls, &uni, 5);
        assert!(t.records().iter().all(|r| (1.0..=5.0).contains(&r.reward)));
        assert!(t.has_propensities());
    }
}
