//! # ddn-netsim — deterministic discrete-event network simulator
//!
//! The paper's §4 challenges are all *dynamical*: system state drifts with
//! time-of-day load (§4.1 "System state of the world"), and the policy's
//! own assignments shift server load (§4.1 "Hidden decision-reward
//! coupling"). Reproducing those experiments needs a substrate where
//! rewards actually depend on load and load actually depends on decisions.
//! This crate is that substrate:
//!
//! - [`event`] — a deterministic discrete-event core: a time-ordered
//!   [`EventQueue`] with stable FIFO tie-breaking.
//! - [`queueing`] — single-server FIFO queues with exponential service
//!   times; response time = wait + service (the M/M/1 mechanics that make
//!   latency blow up as utilization approaches 1).
//! - [`arrivals`] — non-homogeneous Poisson arrival processes with diurnal
//!   rate profiles (morning lull vs. evening peak), sampled by thinning.
//! - [`world`] — the serving world tying it together: ISPs issuing
//!   requests, a pool of servers, a [`Policy`](ddn_policy::Policy) making
//!   the server-selection *decision* per request, and trace emission with
//!   per-record state tags and a load-proxy series for the coupling
//!   detector.
//!
//! Everything is a pure function of the seed: same seed, same trace bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod event;
pub mod queueing;
pub mod topology;
pub mod world;

pub use arrivals::{ArrivalProcess, RateProfile};
pub use event::{EventQueue, SimTime};
pub use queueing::QueueServer;
pub use topology::{wise_like_tiered, TieredConfig, TieredWorld};
pub use world::{small_world, ServerSpec, SimOutput, World, WorldConfig};
