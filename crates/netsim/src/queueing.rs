//! Single-server FIFO queues with exponential service.
//!
//! The load→latency coupling at the heart of the paper's §4.1 concerns:
//! a server near saturation serves each request dramatically slower, so a
//! policy that concentrates traffic on one server degrades the rewards of
//! the clients that follow — the "hidden decision-reward coupling".

use ddn_stats::dist::{Distribution, Exponential};
use ddn_stats::rng::Rng;

/// A FIFO M/M/1-style server: requests queue and are served one at a time
/// with i.i.d. exponential service times.
///
/// The simulator drives it with arrival timestamps; the server tracks when
/// it will next be free and returns each request's departure time and
/// response time (wait + service).
#[derive(Debug, Clone)]
pub struct QueueServer {
    service: Exponential,
    /// Absolute time at which the server becomes idle.
    free_at: f64,
    /// Number of requests that have arrived but not departed as of the
    /// last arrival processed (an instantaneous backlog proxy).
    backlog: usize,
    /// Departure times of in-flight requests (kept sorted-ish lazily).
    departures: Vec<f64>,
    served: u64,
    busy_time: f64,
}

impl QueueServer {
    /// Creates a server with the given mean service rate (requests/sec).
    ///
    /// # Panics
    /// Panics unless `service_rate > 0`.
    pub fn new(service_rate: f64) -> Self {
        Self {
            service: Exponential::new(service_rate),
            free_at: 0.0,
            backlog: 0,
            departures: Vec::new(),
            served: 0,
            busy_time: 0.0,
        }
    }

    /// Processes an arrival at absolute time `t`, returning
    /// `(response_time, backlog_at_arrival)` where `response_time` is
    /// queueing wait plus service and `backlog_at_arrival` counts the
    /// requests already in the system when this one arrived (the load
    /// proxy the paper's §4.3 monitors).
    ///
    /// Arrivals must be fed in non-decreasing time order.
    ///
    /// # Panics
    /// Panics if `t` is non-finite or negative.
    pub fn arrive(&mut self, t: f64, rng: &mut dyn Rng) -> (f64, usize) {
        assert!(
            t.is_finite() && t >= 0.0,
            "arrival time must be finite and ≥ 0"
        );
        // Retire departed requests from the backlog.
        self.departures.retain(|&d| d > t);
        let backlog = self.departures.len();

        let start = self.free_at.max(t);
        let service_time = self.service.sample(rng);
        let departure = start + service_time;
        self.free_at = departure;
        self.departures.push(departure);
        self.backlog = backlog + 1;
        self.served += 1;
        self.busy_time += service_time;
        (departure - t, backlog)
    }

    /// Number of requests in the system as of the last processed arrival.
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Number of requests that will still be in the system at time `t`
    /// (non-mutating; `t` may be at or after the last arrival).
    pub fn backlog_at(&self, t: f64) -> usize {
        self.departures.iter().filter(|&&d| d > t).count()
    }

    /// Total requests this server has accepted.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization estimate over `[0, horizon]`: busy time / horizon.
    ///
    /// # Panics
    /// Panics unless `horizon > 0`.
    pub fn utilization(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        self.busy_time / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::Xoshiro256;

    #[test]
    fn empty_server_serves_immediately() {
        let mut s = QueueServer::new(10.0);
        let mut g = Xoshiro256::seed_from(1);
        let (resp, backlog) = s.arrive(0.0, &mut g);
        assert_eq!(backlog, 0);
        assert!(resp > 0.0);
    }

    #[test]
    fn mean_response_matches_mm1_low_load() {
        // λ = 1, μ = 10 → ρ = 0.1; M/M/1 mean response = 1/(μ−λ) ≈ 0.111.
        let mut s = QueueServer::new(10.0);
        let mut g = Xoshiro256::seed_from(2);
        let arr = Exponential::new(1.0);
        let mut t = 0.0;
        let n = 50_000;
        let mut total = 0.0;
        for _ in 0..n {
            t += arr.sample(&mut g);
            total += s.arrive(t, &mut g).0;
        }
        let mean = total / n as f64;
        assert!((mean - 1.0 / 9.0).abs() < 0.01, "mean response {mean}");
    }

    #[test]
    fn high_load_much_slower_than_low_load() {
        let run = |lambda: f64| {
            let mut s = QueueServer::new(10.0);
            let mut g = Xoshiro256::seed_from(3);
            let arr = Exponential::new(lambda);
            let mut t = 0.0;
            let mut total = 0.0;
            let n = 20_000;
            for _ in 0..n {
                t += arr.sample(&mut g);
                total += s.arrive(t, &mut g).0;
            }
            total / n as f64
        };
        let light = run(1.0); // ρ = 0.1
        let heavy = run(9.0); // ρ = 0.9
        assert!(
            heavy > 5.0 * light,
            "ρ=0.9 response {heavy} should dwarf ρ=0.1 response {light}"
        );
    }

    #[test]
    fn backlog_tracks_queue_buildup() {
        let mut s = QueueServer::new(10.0);
        let mut g = Xoshiro256::seed_from(4);
        // Burst of simultaneous arrivals: backlog counts predecessors.
        let (_, b0) = s.arrive(0.0, &mut g);
        let (_, b1) = s.arrive(0.0, &mut g);
        let (_, b2) = s.arrive(0.0, &mut g);
        assert_eq!((b0, b1, b2), (0, 1, 2));
        assert_eq!(s.backlog(), 3);
        // Long after everything drains, backlog resets.
        let (_, b) = s.arrive(1e6, &mut g);
        assert_eq!(b, 0);
    }

    #[test]
    fn fifo_departures_monotone() {
        let mut s = QueueServer::new(5.0);
        let mut g = Xoshiro256::seed_from(5);
        let mut t = 0.0;
        let mut last_departure = 0.0;
        for _ in 0..1000 {
            t += 0.01;
            let (resp, _) = s.arrive(t, &mut g);
            let dep = t + resp;
            assert!(
                dep >= last_departure,
                "FIFO violated: {dep} < {last_departure}"
            );
            last_departure = dep;
        }
    }

    #[test]
    fn utilization_accumulates() {
        let mut s = QueueServer::new(2.0);
        let mut g = Xoshiro256::seed_from(6);
        for i in 0..100 {
            s.arrive(i as f64 * 10.0, &mut g);
        }
        let u = s.utilization(1000.0);
        // 100 services of mean 0.5s over 1000s ≈ 5% utilization.
        assert!((u - 0.05).abs() < 0.02, "utilization {u}");
        assert_eq!(s.served(), 100);
    }
}
