//! Two-tier serving topology: frontend and backend clusters.
//!
//! The WISE scenario (paper Figure 4) statically assigns each (ISP, FE,
//! BE) cell a response time; this module provides the *dynamic* version:
//! requests traverse a frontend queue and then a backend queue, so the
//! response time of a configuration emerges from queueing — including the
//! §4.1 coupling where a configuration that concentrates load on one
//! cluster degrades itself. The decision space is the FE × BE product,
//! matching `ddn_models::CbnConfig::decision_axes`.

use crate::arrivals::{ArrivalProcess, RateProfile};
use crate::queueing::QueueServer;
use crate::world::SimOutput;
use ddn_policy::Policy;
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, DecisionSpace, StateTag, Trace, TraceRecord};

/// Configuration of a two-tier world.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredConfig {
    /// Number of client ISPs.
    pub isps: usize,
    /// Frontend cluster names and service rates (req/s).
    pub frontends: Vec<(String, f64)>,
    /// Backend cluster names and service rates (req/s).
    pub backends: Vec<(String, f64)>,
    /// `rtt_fe[isp][fe]`: ISP ↔ frontend network seconds.
    pub rtt_fe: Vec<Vec<f64>>,
    /// `rtt_be[fe][be]`: frontend ↔ backend network seconds.
    pub rtt_be: Vec<Vec<f64>>,
    /// Aggregate arrival process.
    pub arrivals: RateProfile,
    /// Simulation horizon in seconds.
    pub horizon: f64,
    /// Combined (FE + BE) backlog at-or-above which a record is tagged
    /// high-load.
    pub high_load_backlog: usize,
    /// Combined backlog at-or-above which a record is tagged overloaded.
    pub overload_backlog: usize,
}

impl TieredConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on empty tiers, malformed RTT matrices, or non-positive
    /// rates/horizon.
    pub fn validate(&self) {
        assert!(self.isps > 0, "need at least one ISP");
        assert!(!self.frontends.is_empty(), "need at least one frontend");
        assert!(!self.backends.is_empty(), "need at least one backend");
        assert!(
            self.frontends
                .iter()
                .chain(&self.backends)
                .all(|(_, r)| *r > 0.0),
            "service rates must be positive"
        );
        assert_eq!(self.rtt_fe.len(), self.isps, "rtt_fe needs one row per ISP");
        for row in &self.rtt_fe {
            assert_eq!(
                row.len(),
                self.frontends.len(),
                "rtt_fe row must cover frontends"
            );
        }
        assert_eq!(
            self.rtt_be.len(),
            self.frontends.len(),
            "rtt_be needs one row per FE"
        );
        for row in &self.rtt_be {
            assert_eq!(
                row.len(),
                self.backends.len(),
                "rtt_be row must cover backends"
            );
        }
        self.arrivals.validate();
        assert!(self.horizon > 0.0, "horizon must be positive");
        assert!(
            self.high_load_backlog < self.overload_backlog,
            "load thresholds must be ordered"
        );
    }
}

/// A two-tier serving world ready to simulate FE×BE selection policies.
#[derive(Debug, Clone)]
pub struct TieredWorld {
    config: TieredConfig,
    schema: ContextSchema,
    space: DecisionSpace,
}

impl TieredWorld {
    /// Creates a world from a validated config. Decisions are the FE × BE
    /// product in row-major order (backend varies fastest), named
    /// `"<fe>/<be>"`.
    pub fn new(config: TieredConfig) -> Self {
        config.validate();
        let schema = ContextSchema::builder()
            .categorical("isp", config.isps as u32)
            .numeric("tod_hours")
            .build();
        let fe_names: Vec<&str> = config.frontends.iter().map(|(n, _)| n.as_str()).collect();
        let be_names: Vec<&str> = config.backends.iter().map(|(n, _)| n.as_str()).collect();
        let space = DecisionSpace::product(&fe_names, &be_names);
        Self {
            config,
            schema,
            space,
        }
    }

    /// The context schema.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The FE × BE decision space.
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &TieredConfig {
        &self.config
    }

    /// Decomposes a flat decision index into (fe, be).
    pub fn fe_be(&self, index: usize) -> (usize, usize) {
        (
            index / self.config.backends.len(),
            index % self.config.backends.len(),
        )
    }

    /// Simulates `policy` routing every request. Deterministic in `seed`.
    pub fn run(&self, policy: &dyn Policy, seed: u64) -> SimOutput {
        assert_eq!(
            policy.space().len(),
            self.space.len(),
            "policy decision space must match the FE x BE product"
        );
        let mut rng = Xoshiro256::seed_from(seed);
        let mut arrival_rng = rng.fork();
        let mut isp_rng = rng.fork();
        let mut policy_rng = rng.fork();
        let mut service_rng = rng.fork();

        let mut arrivals = ArrivalProcess::new(self.config.arrivals.clone());
        let times = arrivals.arrivals_until(self.config.horizon, &mut arrival_rng);
        let mut fes: Vec<QueueServer> = self
            .config
            .frontends
            .iter()
            .map(|(_, r)| QueueServer::new(*r))
            .collect();
        let mut bes: Vec<QueueServer> = self
            .config
            .backends
            .iter()
            .map(|(_, r)| QueueServer::new(*r))
            .collect();

        let day = 86_400.0;
        let mut records = Vec::with_capacity(times.len());
        let mut load_proxy = Vec::with_capacity(times.len());
        let mut per_server_load: Vec<Vec<u32>> =
            vec![Vec::with_capacity(times.len()); fes.len() + bes.len()];
        for t in times {
            let isp = isp_rng.index(self.config.isps);
            let tod = (t % day) / 3600.0;
            let ctx = Context::build(&self.schema)
                .set_cat("isp", isp as u32)
                .set_numeric("tod_hours", tod)
                .finish();
            let (decision, propensity) = policy.sample_with_prob(&ctx, &mut policy_rng);
            for (s, q) in fes.iter().chain(bes.iter()).enumerate() {
                per_server_load[s].push(q.backlog_at(t) as u32);
            }
            let (fe, be) = self.fe_be(decision.index());
            // Serialize through the two tiers: the backend sees the
            // request when the frontend finishes with it.
            let (fe_resp, fe_backlog) = fes[fe].arrive(t, &mut service_rng);
            let be_arrival = t + fe_resp + self.config.rtt_be[fe][be];
            let (be_resp, be_backlog) = bes[be].arrive(be_arrival, &mut service_rng);
            let latency =
                self.config.rtt_fe[isp][fe] + fe_resp + self.config.rtt_be[fe][be] + be_resp;
            let backlog = fe_backlog + be_backlog;
            let state = if backlog >= self.config.overload_backlog {
                StateTag::OVERLOAD
            } else if backlog >= self.config.high_load_backlog {
                StateTag::HIGH_LOAD
            } else {
                StateTag::LOW_LOAD
            };
            records.push(
                TraceRecord::new(ctx, decision, -latency)
                    .with_propensity(propensity)
                    .with_state(state)
                    .with_timestamp(t),
            );
            load_proxy.push(backlog as f64);
        }
        let mut per_server: Vec<u64> = fes.iter().map(|s| s.served()).collect();
        per_server.extend(bes.iter().map(|s| s.served()));
        let trace = Trace::from_records(self.schema.clone(), self.space.clone(), records)
            .expect("tiered world emits valid traces");
        SimOutput {
            trace,
            load_proxy,
            per_server,
            per_server_load,
        }
    }

    /// Ground-truth value of a policy: mean on-policy reward over `runs`
    /// fresh simulations.
    pub fn true_value(&self, policy: &dyn Policy, base_seed: u64, runs: usize) -> f64 {
        assert!(runs > 0, "need at least one run");
        (0..runs)
            .map(|i| self.run(policy, base_seed + i as u64).trace.mean_reward())
            .sum::<f64>()
            / runs as f64
    }
}

/// A ready-made 2 ISP × 2 FE × 2 BE world echoing the paper's Figure 4,
/// with BE-1 undersized so that concentrating ISP-1 traffic on
/// (FE-1, BE-1) — the "arrow" configuration — actually produces the long
/// response times the figure asserts.
pub fn wise_like_tiered(arrivals: RateProfile, horizon: f64) -> TieredWorld {
    TieredWorld::new(TieredConfig {
        isps: 2,
        frontends: vec![("fe1".into(), 30.0), ("fe2".into(), 30.0)],
        backends: vec![("be1".into(), 12.0), ("be2".into(), 30.0)],
        rtt_fe: vec![vec![0.01, 0.03], vec![0.03, 0.01]],
        rtt_be: vec![vec![0.005, 0.01], vec![0.01, 0.005]],
        arrivals,
        horizon,
        high_load_backlog: 4,
        overload_backlog: 12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};

    fn world() -> TieredWorld {
        wise_like_tiered(RateProfile::Constant(10.0), 400.0)
    }

    #[test]
    fn decision_space_is_product() {
        let w = world();
        assert_eq!(w.space().len(), 4);
        assert_eq!(w.space().name(0), "fe1/be1");
        assert_eq!(w.space().name(3), "fe2/be2");
        assert_eq!(w.fe_be(1), (0, 1));
        assert_eq!(w.fe_be(2), (1, 0));
    }

    #[test]
    fn deterministic_in_seed() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let a = w.run(&p, 3);
        let b = w.run(&p, 3);
        assert_eq!(a.trace.records(), b.trace.records());
    }

    #[test]
    fn per_server_covers_both_tiers() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 4);
        assert_eq!(out.per_server.len(), 4); // 2 FEs + 2 BEs
        let fe_total: u64 = out.per_server[..2].iter().sum();
        let be_total: u64 = out.per_server[2..].iter().sum();
        assert_eq!(fe_total as usize, out.trace.len());
        assert_eq!(be_total as usize, out.trace.len());
    }

    #[test]
    fn concentrating_on_small_backend_is_slow() {
        // BE-1 serves 12 req/s; pinning everything to it at 10 req/s puts
        // it near saturation, while BE-2 (30 req/s) stays comfortable.
        let w = world();
        let pin_be1 = LookupPolicy::constant(w.space().clone(), 0); // fe1/be1
        let pin_be2 = LookupPolicy::constant(w.space().clone(), 1); // fe1/be2
        let v1 = w.true_value(&pin_be1, 10, 3);
        let v2 = w.true_value(&pin_be2, 10, 3);
        assert!(
            v2 - v1 > 0.05,
            "the undersized backend should be visibly slower: be1 {v1} vs be2 {v2}"
        );
    }

    #[test]
    fn two_tier_latency_exceeds_single_tier_components() {
        // Sanity: latency includes both queue responses plus both RTTs, so
        // even an idle system pays more than the pure network path.
        let w = world();
        let p = LookupPolicy::constant(w.space().clone(), 3); // fe2/be2
        let out = w.run(&p, 5);
        let min_latency = out
            .trace
            .records()
            .iter()
            .map(|r| -r.reward)
            .fold(f64::INFINITY, f64::min);
        // Network floor for isp1 on fe2/be2 is 0.01 + 0.005; responses add
        // strictly positive service time on top.
        assert!(min_latency > 0.015);
    }

    #[test]
    fn spreading_beats_pinning_under_load() {
        let w = wise_like_tiered(RateProfile::Constant(20.0), 300.0);
        let pin = LookupPolicy::constant(w.space().clone(), 0);
        let spread = UniformRandomPolicy::new(w.space().clone());
        let v_pin = w.true_value(&pin, 20, 3);
        let v_spread = w.true_value(&spread, 20, 3);
        assert!(
            v_spread > v_pin,
            "spreading ({v_spread}) should beat pinning the small backend ({v_pin})"
        );
    }
}
