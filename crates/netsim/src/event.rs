//! Deterministic discrete-event core.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds. A thin wrapper enforcing finiteness and a
/// total order so it can key the event queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    /// Panics if `t` is negative or non-finite.
    pub fn new(t: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "simulation time must be finite and ≥ 0, got {t}"
        );
        Self(t)
    }

    /// Seconds since simulation start.
    pub fn secs(&self) -> f64 {
        self.0
    }

    /// This time advanced by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or non-finite.
    pub fn after(&self, dt: f64) -> SimTime {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "time delta must be finite and ≥ 0, got {dt}"
        );
        SimTime(self.0 + dt)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO for determinism.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering among same-time
/// events — the property that makes whole-simulation determinism possible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at.secs(),
            self.now.secs()
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `dt` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        let at = self.now.after(dt);
        self.schedule(at, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        assert_eq!(q.now().secs(), 0.0);
        q.pop();
        assert_eq!(q.now().secs(), 5.0);
        q.schedule_in(2.5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.secs(), 7.5);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::new(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn negative_time_panics() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), 1);
        q.schedule(SimTime::new(10.0), 10);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.secs(), e), (1.0, 1));
        q.schedule(SimTime::new(5.0), 5);
        q.schedule(SimTime::new(2.0), 2);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![2, 5, 10]);
    }
}
