//! The serving world: ISPs, servers, a policy, and trace emission.
//!
//! This is where decisions meet dynamics. A [`World`] simulates requests
//! arriving from ISPs under a diurnal profile; for each request the policy
//! under test picks a server (the *decision*); the chosen server's queue
//! produces the response time; the reward is the negative end-to-end
//! latency. Because the queue state persists, a policy that floods one
//! server degrades later rewards — the paper's self-induced
//! decision-reward coupling — and because arrival intensity varies with
//! time of day, traces collected in one regime mispredict another.

use crate::arrivals::{ArrivalProcess, RateProfile};
use crate::queueing::QueueServer;
use ddn_policy::Policy;
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, ContextSchema, DecisionSpace, StateTag, Trace, TraceRecord};

/// Static description of one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Human-readable name (becomes the decision name).
    pub name: String,
    /// Mean service rate in requests/second.
    pub service_rate: f64,
}

/// Configuration of a serving world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Number of client ISPs (categorical context feature).
    pub isps: usize,
    /// The servers (decision space).
    pub servers: Vec<ServerSpec>,
    /// `rtt[isp][server]`: network round-trip seconds added to every
    /// request from that ISP to that server.
    pub rtt: Vec<Vec<f64>>,
    /// Aggregate arrival process across all ISPs (each arrival is
    /// attributed to a uniformly random ISP).
    pub arrivals: RateProfile,
    /// Simulation horizon in seconds.
    pub horizon: f64,
    /// Backlog at-or-above which a record is tagged
    /// [`StateTag::HIGH_LOAD`].
    pub high_load_backlog: usize,
    /// Backlog at-or-above which a record is tagged
    /// [`StateTag::OVERLOAD`].
    pub overload_backlog: usize,
}

impl WorldConfig {
    /// Checks the configuration, returning a user-facing message on the
    /// first violation. CLI-facing callers (`ddn loadgen`) surface the
    /// message as a usage error instead of aborting the process.
    pub fn check(&self) -> Result<(), String> {
        fn ensure(ok: bool, msg: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        }
        ensure(self.isps > 0, "need at least one ISP")?;
        ensure(!self.servers.is_empty(), "need at least one server")?;
        ensure(
            self.servers.iter().all(|s| s.service_rate > 0.0),
            "service rates must be positive",
        )?;
        ensure(self.rtt.len() == self.isps, "rtt must have one row per ISP")?;
        for row in &self.rtt {
            ensure(
                row.len() == self.servers.len(),
                "rtt row must cover every server",
            )?;
            ensure(
                row.iter().all(|r| r.is_finite() && *r >= 0.0),
                "rtts must be ≥ 0",
            )?;
        }
        self.arrivals.check()?;
        ensure(self.horizon > 0.0, "horizon must be positive")?;
        ensure(
            self.high_load_backlog < self.overload_backlog,
            "high-load threshold must be below overload threshold",
        )
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on empty servers/ISPs, RTT shape mismatch, non-positive
    /// rates/horizon, or unordered load thresholds. Use
    /// [`WorldConfig::check`] to get the violation as an error instead.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

/// Output of one simulated run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The logged trace: context = (isp, time-of-day), decision = server,
    /// reward = −latency, propensity from the policy, state tag from the
    /// chosen server's backlog.
    pub trace: Trace,
    /// Per-record load proxy: the chosen server's backlog at arrival —
    /// exactly the §4.3 "monitor the load of each server as a proxy metric
    /// of the system states" series.
    pub load_proxy: Vec<f64>,
    /// Requests served per server.
    pub per_server: Vec<u64>,
    /// `per_server_load[s][k]`: server `s`'s backlog at the time of the
    /// k-th request (whether or not it was routed there) — the full
    /// per-server monitoring matrix the §4.3 threshold scheme reads.
    pub per_server_load: Vec<Vec<u32>>,
}

impl SimOutput {
    /// Mean reward over the run — the on-policy (ground-truth) value of
    /// the simulated policy on this world and seed.
    pub fn mean_reward(&self) -> f64 {
        self.trace.mean_reward()
    }
}

/// A serving world ready to simulate policies.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    schema: ContextSchema,
    space: DecisionSpace,
}

impl World {
    /// Creates a world from a validated config.
    pub fn new(config: WorldConfig) -> Self {
        config.validate();
        let schema = ContextSchema::builder()
            .categorical("isp", config.isps as u32)
            .numeric("tod_hours")
            .build();
        let space = DecisionSpace::new(config.servers.iter().map(|s| s.name.clone()).collect());
        Self {
            config,
            schema,
            space,
        }
    }

    /// The context schema traces from this world use.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space (one decision per server).
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Simulates `policy` making every server-selection decision.
    ///
    /// Deterministic in `seed`.
    pub fn run(&self, policy: &dyn Policy, seed: u64) -> SimOutput {
        assert_eq!(
            policy.space().len(),
            self.space.len(),
            "policy decision space must match the world's servers"
        );
        let mut rng = Xoshiro256::seed_from(seed);
        let mut arrival_rng = rng.fork();
        let mut isp_rng = rng.fork();
        let mut policy_rng = rng.fork();
        let mut service_rng = rng.fork();

        let mut arrivals = ArrivalProcess::new(self.config.arrivals.clone());
        let times = arrivals.arrivals_until(self.config.horizon, &mut arrival_rng);
        let mut servers: Vec<QueueServer> = self
            .config
            .servers
            .iter()
            .map(|s| QueueServer::new(s.service_rate))
            .collect();

        let day = 86_400.0;
        let mut records = Vec::with_capacity(times.len());
        let mut load_proxy = Vec::with_capacity(times.len());
        let mut per_server_load: Vec<Vec<u32>> =
            vec![Vec::with_capacity(times.len()); servers.len()];
        for t in times {
            let isp = isp_rng.index(self.config.isps);
            let tod = (t % day) / 3600.0;
            let ctx = Context::build(&self.schema)
                .set_cat("isp", isp as u32)
                .set_numeric("tod_hours", tod)
                .finish();
            let (decision, propensity) = policy.sample_with_prob(&ctx, &mut policy_rng);
            let sv = decision.index();
            for (s, series) in per_server_load.iter_mut().enumerate() {
                series.push(servers[s].backlog_at(t) as u32);
            }
            let (response, backlog) = servers[sv].arrive(t, &mut service_rng);
            let latency = self.config.rtt[isp][sv] + response;
            let state = if backlog >= self.config.overload_backlog {
                StateTag::OVERLOAD
            } else if backlog >= self.config.high_load_backlog {
                StateTag::HIGH_LOAD
            } else {
                StateTag::LOW_LOAD
            };
            records.push(
                TraceRecord::new(ctx, decision, -latency)
                    .with_propensity(propensity)
                    .with_state(state)
                    .with_timestamp(t),
            );
            load_proxy.push(backlog as f64);
        }
        let per_server = servers.iter().map(|s| s.served()).collect();
        let trace = Trace::from_records(self.schema.clone(), self.space.clone(), records)
            .expect("world always emits a valid trace");
        SimOutput {
            trace,
            load_proxy,
            per_server,
            per_server_load,
        }
    }

    /// Ground-truth value of a policy: mean on-policy reward averaged over
    /// `runs` fresh simulations with distinct seeds.
    pub fn true_value(&self, policy: &dyn Policy, base_seed: u64, runs: usize) -> f64 {
        assert!(runs > 0, "need at least one run");
        (0..runs)
            .map(|i| self.run(policy, base_seed + i as u64).mean_reward())
            .sum::<f64>()
            / runs as f64
    }
}

/// A ready-made two-server world: one fast server, one slow server, two
/// ISPs with asymmetric RTTs — small but exhibits every §4 phenomenon.
/// Used by examples, tests and ablations.
pub fn small_world(arrivals: RateProfile, horizon: f64) -> World {
    World::new(WorldConfig {
        isps: 2,
        servers: vec![
            ServerSpec {
                name: "fast".into(),
                service_rate: 40.0,
            },
            ServerSpec {
                name: "slow".into(),
                service_rate: 15.0,
            },
        ],
        rtt: vec![vec![0.02, 0.05], vec![0.05, 0.02]],
        arrivals,
        horizon,
        high_load_backlog: 4,
        overload_backlog: 12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::{LookupPolicy, UniformRandomPolicy};

    fn world() -> World {
        small_world(RateProfile::Constant(10.0), 500.0)
    }

    #[test]
    fn run_is_deterministic() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let a = w.run(&p, 7);
        let b = w.run(&p, 7);
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.load_proxy, b.load_proxy);
        let c = w.run(&p, 8);
        assert_ne!(a.trace.records(), c.trace.records());
    }

    #[test]
    fn rewards_are_negative_latencies() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 1);
        assert!(
            out.trace.len() > 1000,
            "expect ~5000 arrivals, got {}",
            out.trace.len()
        );
        assert!(out.trace.records().iter().all(|r| r.reward < 0.0));
        assert!(out.trace.has_propensities());
        assert!(out.trace.records().iter().all(|r| r.state.is_some()));
    }

    #[test]
    fn fast_server_beats_slow_server() {
        let w = world();
        let fast = LookupPolicy::constant(w.space().clone(), 0);
        let slow = LookupPolicy::constant(w.space().clone(), 1);
        let v_fast = w.true_value(&fast, 10, 3);
        let v_slow = w.true_value(&slow, 10, 3);
        assert!(
            v_fast > v_slow,
            "fast server {v_fast} should beat slow server {v_slow}"
        );
    }

    #[test]
    fn concentrating_load_degrades_rewards() {
        // Decision-reward coupling: sending everything to the slow server
        // saturates it (λ=10 ≈ 2/3 of μ=15); spreading load does better
        // than the slow-only policy by more than the RTT difference alone.
        let w = world();
        let slow_only = LookupPolicy::constant(w.space().clone(), 1);
        let spread = UniformRandomPolicy::new(w.space().clone());
        let v_slow = w.true_value(&slow_only, 20, 3);
        let v_spread = w.true_value(&spread, 20, 3);
        assert!(
            v_spread - v_slow > 0.02,
            "spreading ({v_spread}) should beat overloading the slow server ({v_slow})"
        );
    }

    #[test]
    fn per_server_counts_add_up() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 2);
        let total: u64 = out.per_server.iter().sum();
        assert_eq!(total as usize, out.trace.len());
        assert_eq!(out.load_proxy.len(), out.trace.len());
    }

    #[test]
    fn diurnal_world_tags_states() {
        // Strong diurnal swing around a near-capacity base load produces
        // both low- and high-load records.
        let w = small_world(
            RateProfile::Diurnal {
                base: 30.0,
                amplitude: 0.9,
                period: 1000.0,
                phase: 0.0,
            },
            1000.0,
        );
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 3);
        let low = out
            .trace
            .records()
            .iter()
            .filter(|r| r.state == Some(StateTag::LOW_LOAD))
            .count();
        let high = out.trace.len() - low;
        assert!(
            low > 0 && high > 0,
            "want both regimes, got low={low} high={high}"
        );
    }

    #[test]
    fn per_server_load_matrix_is_aligned_and_consistent() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 6);
        assert_eq!(out.per_server_load.len(), 2);
        for series in &out.per_server_load {
            assert_eq!(series.len(), out.trace.len());
        }
        // The chosen-server proxy equals that server's column entry at
        // every step (both are the pre-arrival backlog).
        for (k, r) in out.trace.records().iter().enumerate() {
            assert_eq!(
                out.per_server_load[r.decision.index()][k] as f64,
                out.load_proxy[k],
                "row {k}"
            );
        }
    }

    #[test]
    fn timestamps_ordered() {
        let w = world();
        let p = UniformRandomPolicy::new(w.space().clone());
        let out = w.run(&p, 4);
        let ts: Vec<f64> = out
            .trace
            .records()
            .iter()
            .map(|r| r.timestamp.unwrap())
            .collect();
        for w2 in ts.windows(2) {
            assert!(w2[1] >= w2[0]);
        }
    }

    #[test]
    fn check_returns_errors_instead_of_panicking() {
        let mut cfg = small_world(RateProfile::Constant(10.0), 500.0).config().clone();
        assert!(cfg.check().is_ok());
        cfg.horizon = -1.0;
        let err = cfg.check().unwrap_err();
        assert!(err.contains("horizon"), "{err}");
        cfg.horizon = 500.0;
        cfg.arrivals = RateProfile::Constant(0.0);
        let err = cfg.check().unwrap_err();
        assert!(err.contains("rate"), "{err}");
        cfg.arrivals = RateProfile::Constant(10.0);
        cfg.rtt.pop();
        let err = cfg.check().unwrap_err();
        assert!(err.contains("rtt"), "{err}");
    }

    #[test]
    #[should_panic(expected = "must match the world's servers")]
    fn wrong_policy_space_panics() {
        let w = world();
        let p = UniformRandomPolicy::new(DecisionSpace::of(&["x", "y", "z"]));
        let _ = w.run(&p, 0);
    }
}
