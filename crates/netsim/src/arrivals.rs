//! Non-homogeneous Poisson arrival processes with diurnal rate profiles.
//!
//! Paper §4.1: "we want to evaluate the performance of a server selection
//! logic during peak hours, but the trace we have was collected during
//! early morning hours." To reproduce that mismatch we need arrival
//! processes whose intensity depends on the time of day.

use ddn_stats::rng::Rng;

/// A time-varying arrival rate λ(t) in requests/second.
#[derive(Debug, Clone, PartialEq)]
pub enum RateProfile {
    /// Constant rate.
    Constant(f64),
    /// Sinusoidal diurnal profile:
    /// `λ(t) = base · (1 + amplitude · sin(2π t / period − phase))`,
    /// clamped at zero. `period` is the day length in simulation seconds.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Relative swing in `\[0, 1\]`.
        amplitude: f64,
        /// Day length in seconds.
        period: f64,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Piecewise-constant rate: `(until_time, rate)` segments in ascending
    /// order; the last segment extends to infinity.
    Piecewise(Vec<(f64, f64)>),
}

impl RateProfile {
    /// The instantaneous rate at time `t`.
    ///
    /// # Panics
    /// Panics (in debug) on malformed piecewise segments.
    pub fn rate(&self, t: f64) -> f64 {
        match self {
            RateProfile::Constant(r) => *r,
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
                phase,
            } => {
                let s = (std::f64::consts::TAU * t / period - phase).sin();
                (base * (1.0 + amplitude * s)).max(0.0)
            }
            RateProfile::Piecewise(segs) => {
                for &(until, rate) in segs {
                    if t < until {
                        return rate;
                    }
                }
                segs.last().map(|&(_, r)| r).unwrap_or(0.0)
            }
        }
    }

    /// An upper bound on the rate over all time (for thinning).
    fn max_rate(&self) -> f64 {
        match self {
            RateProfile::Constant(r) => *r,
            RateProfile::Diurnal {
                base, amplitude, ..
            } => base * (1.0 + amplitude),
            RateProfile::Piecewise(segs) => segs.iter().map(|&(_, r)| r).fold(0.0, f64::max),
        }
    }

    /// Checks the profile parameters, returning a user-facing message on
    /// the first violation. Library callers that reached this profile from
    /// untrusted input (the `ddn loadgen` CLI) surface the message as a
    /// usage error instead of aborting the process.
    pub fn check(&self) -> Result<(), String> {
        fn ensure(ok: bool, msg: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        }
        match self {
            RateProfile::Constant(r) => {
                ensure(r.is_finite() && *r > 0.0, "constant rate must be positive")
            }
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
                ..
            } => {
                ensure(
                    base.is_finite() && *base > 0.0,
                    "base rate must be positive",
                )?;
                ensure(
                    (0.0..=1.0).contains(amplitude),
                    "amplitude must be in [0,1]",
                )?;
                ensure(
                    period.is_finite() && *period > 0.0,
                    "period must be positive",
                )
            }
            RateProfile::Piecewise(segs) => {
                ensure(!segs.is_empty(), "piecewise profile needs segments")?;
                let mut last = f64::NEG_INFINITY;
                for &(until, rate) in segs {
                    ensure(until > last, "piecewise segments must be ascending")?;
                    ensure(
                        rate.is_finite() && rate >= 0.0,
                        "rates must be non-negative",
                    )?;
                    last = until;
                }
                ensure(
                    segs.iter().any(|&(_, r)| r > 0.0),
                    "piecewise profile must have a positive-rate segment",
                )
            }
        }
    }

    /// Validates the profile parameters.
    ///
    /// # Panics
    /// Panics on non-positive base rates, amplitude outside `\[0,1\]`,
    /// non-positive period, or unordered piecewise segments. Use
    /// [`RateProfile::check`] to get the violation as an error instead.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

/// Generator of arrival timestamps from a [`RateProfile`], using Lewis–
/// Shedler thinning against the profile's max rate.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    profile: RateProfile,
    t: f64,
}

impl ArrivalProcess {
    /// Creates a process starting at time 0.
    ///
    /// # Panics
    /// Panics if the profile is invalid.
    pub fn new(profile: RateProfile) -> Self {
        profile.validate();
        Self { profile, t: 0.0 }
    }

    /// The next arrival time (advances the internal clock).
    pub fn next_arrival(&mut self, rng: &mut dyn Rng) -> f64 {
        let lam_max = self.profile.max_rate();
        loop {
            // Candidate from the homogeneous dominating process.
            let mut u = rng.next_f64();
            while u <= f64::MIN_POSITIVE {
                u = rng.next_f64();
            }
            self.t += -u.ln() / lam_max;
            // Thin.
            if rng.next_f64() * lam_max < self.profile.rate(self.t) {
                return self.t;
            }
        }
    }

    /// Generates all arrivals in `[0, horizon)`.
    pub fn arrivals_until(&mut self, horizon: f64, rng: &mut dyn Rng) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_stats::rng::Xoshiro256;

    #[test]
    fn constant_rate_count_matches() {
        let mut p = ArrivalProcess::new(RateProfile::Constant(5.0));
        let mut g = Xoshiro256::seed_from(1);
        let arr = p.arrivals_until(10_000.0, &mut g);
        let rate = arr.len() as f64 / 10_000.0;
        assert!((rate - 5.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increasing() {
        let mut p = ArrivalProcess::new(RateProfile::Constant(100.0));
        let mut g = Xoshiro256::seed_from(2);
        let arr = p.arrivals_until(100.0, &mut g);
        for w in arr.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn diurnal_peak_denser_than_trough() {
        let profile = RateProfile::Diurnal {
            base: 10.0,
            amplitude: 0.8,
            period: 86_400.0,
            phase: 0.0,
        };
        let mut p = ArrivalProcess::new(profile.clone());
        let mut g = Xoshiro256::seed_from(3);
        let arr = p.arrivals_until(86_400.0, &mut g);
        // Peak quarter-day (centered at period/4) vs trough (3·period/4).
        let peak = arr
            .iter()
            .filter(|&&t| (10_800.0..32_400.0).contains(&t))
            .count();
        let trough = arr
            .iter()
            .filter(|&&t| (54_000.0..75_600.0).contains(&t))
            .count();
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} should far exceed trough {trough}"
        );
        // Instantaneous rates.
        assert!((profile.rate(21_600.0) - 18.0).abs() < 1e-9);
        assert!((profile.rate(64_800.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_profile_switches_rate() {
        let profile = RateProfile::Piecewise(vec![(100.0, 1.0), (200.0, 20.0)]);
        assert_eq!(profile.rate(50.0), 1.0);
        assert_eq!(profile.rate(150.0), 20.0);
        assert_eq!(profile.rate(500.0), 20.0); // extends past the end
        let mut p = ArrivalProcess::new(profile);
        let mut g = Xoshiro256::seed_from(4);
        let arr = p.arrivals_until(200.0, &mut g);
        let early = arr.iter().filter(|&&t| t < 100.0).count();
        let late = arr.iter().filter(|&&t| t >= 100.0).count();
        assert!(late > 10 * early, "late {late} vs early {early}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut p = ArrivalProcess::new(RateProfile::Constant(3.0));
            let mut g = Xoshiro256::seed_from(9);
            p.arrivals_until(100.0, &mut g)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn bad_piecewise_panics() {
        let _ = ArrivalProcess::new(RateProfile::Piecewise(vec![(10.0, 1.0), (5.0, 2.0)]));
    }

    #[test]
    fn check_returns_errors_instead_of_panicking() {
        assert!(RateProfile::Constant(5.0).check().is_ok());
        let err = RateProfile::Constant(-1.0).check().unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = RateProfile::Piecewise(vec![(10.0, 1.0), (5.0, 2.0)])
            .check()
            .unwrap_err();
        assert!(err.contains("ascending"), "{err}");
        let err = RateProfile::Diurnal {
            base: 10.0,
            amplitude: 1.5,
            period: 100.0,
            phase: 0.0,
        }
        .check()
        .unwrap_err();
        assert!(err.contains("amplitude"), "{err}");
        let err = RateProfile::Piecewise(vec![(10.0, 0.0)]).check().unwrap_err();
        assert!(err.contains("positive-rate"), "{err}");
    }
}
