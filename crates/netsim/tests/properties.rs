//! Property tests for the simulator-fleet pieces `ddn loadgen` leans on:
//! the arrival process (its offered-load schedule source) and the queueing
//! substrate (its reward dynamics). The loadgen determinism contract —
//! same seed, same schedule bytes — reduces to these invariants.

use ddn_netsim::{ArrivalProcess, QueueServer, RateProfile};
use ddn_stats::rng::Xoshiro256;
use ddn_testkit::{prop, prop_assert, prop_assert_eq, vecs};

/// The exact expected count of a Poisson process over `[0, horizon)` is
/// the rate integral Λ; the empirical count must sit within a generous
/// multiple of its standard deviation √Λ (plus a constant floor so tiny
/// Λ doesn't produce vacuously tight bounds).
fn count_within_sigma(count: usize, lambda_integral: f64, sigmas: f64) -> bool {
    let sd = lambda_integral.sqrt();
    (count as f64 - lambda_integral).abs() <= sigmas * sd + 10.0
}

prop! {
    fn arrivals_deterministic_per_seed(seed in 0u64..1_000_000, rate in 0.5f64..40.0) {
        let draw = || {
            let mut p = ArrivalProcess::new(RateProfile::Constant(rate));
            let mut g = Xoshiro256::seed_from(seed);
            p.arrivals_until(50.0, &mut g)
        };
        let a = draw();
        let b = draw();
        prop_assert_eq!(a.len(), b.len());
        // Bit-for-bit, not approximately: the loadgen schedule digest
        // depends on the exact f64 bits of every arrival.
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn arrivals_strictly_sorted_and_bounded(seed in 0u64..1_000_000, horizon in 1.0f64..200.0) {
        let mut p = ArrivalProcess::new(RateProfile::Constant(20.0));
        let mut g = Xoshiro256::seed_from(seed);
        let arr = p.arrivals_until(horizon, &mut g);
        for w in arr.windows(2) {
            prop_assert!(w[1] > w[0], "arrivals out of order: {} then {}", w[0], w[1]);
        }
        for &t in &arr {
            prop_assert!(t >= 0.0 && t < horizon, "arrival {} outside [0, {})", t, horizon);
        }
    }

    fn constant_counts_track_rate_integral(seed in 0u64..1_000_000, rate in 1.0f64..30.0) {
        let horizon = 400.0;
        let mut p = ArrivalProcess::new(RateProfile::Constant(rate));
        let mut g = Xoshiro256::seed_from(seed);
        let n = p.arrivals_until(horizon, &mut g).len();
        prop_assert!(
            count_within_sigma(n, rate * horizon, 5.0),
            "count {} far from Λ = {}", n, rate * horizon
        );
    }

    fn diurnal_counts_track_rate_integral(
        seed in 0u64..1_000_000,
        base in 2.0f64..20.0,
        amplitude in 0.0f64..1.0,
    ) {
        // Over exactly one period the sinusoid integrates away:
        // Λ = base · period regardless of amplitude or phase.
        let period = 500.0;
        let profile = RateProfile::Diurnal { base, amplitude, period, phase: 0.3 };
        let mut p = ArrivalProcess::new(profile);
        let mut g = Xoshiro256::seed_from(seed);
        let n = p.arrivals_until(period, &mut g).len();
        prop_assert!(
            count_within_sigma(n, base * period, 5.0),
            "count {} far from Λ = {}", n, base * period
        );
    }

    fn piecewise_counts_track_each_segment(seed in 0u64..1_000_000, lo in 1.0f64..5.0) {
        let hi = lo * 8.0;
        let mut p = ArrivalProcess::new(RateProfile::Piecewise(vec![(300.0, lo), (600.0, hi)]));
        let mut g = Xoshiro256::seed_from(seed);
        let arr = p.arrivals_until(600.0, &mut g);
        let early = arr.iter().filter(|&&t| t < 300.0).count();
        let late = arr.len() - early;
        prop_assert!(
            count_within_sigma(early, lo * 300.0, 5.0),
            "early count {} far from Λ = {}", early, lo * 300.0
        );
        prop_assert!(
            count_within_sigma(late, hi * 300.0, 5.0),
            "late count {} far from Λ = {}", late, hi * 300.0
        );
    }

    fn queue_departures_fifo_and_response_positive(
        seed in 0u64..1_000_000,
        gaps in vecs(0.0f64..0.5, 1..120),
        rate in 1.0f64..20.0,
    ) {
        let mut s = QueueServer::new(rate);
        let mut g = Xoshiro256::seed_from(seed);
        let mut t = 0.0;
        let mut last_departure = 0.0;
        for gap in &gaps {
            t += gap;
            let (resp, _) = s.arrive(t, &mut g);
            prop_assert!(resp > 0.0, "response time must be positive, got {}", resp);
            let dep = t + resp;
            prop_assert!(dep >= last_departure, "FIFO violated: {} < {}", dep, last_departure);
            last_departure = dep;
        }
        prop_assert_eq!(s.served(), gaps.len() as u64);
    }

    fn queue_backlog_counts_in_flight_requests(
        seed in 0u64..1_000_000,
        gaps in vecs(0.0f64..0.5, 1..120),
    ) {
        // The backlog reported at each arrival must equal the number of
        // earlier requests whose departure is still in the future, and
        // the non-mutating backlog_at must agree with it.
        let mut s = QueueServer::new(4.0);
        let mut probe = QueueServer::new(4.0);
        let mut g = Xoshiro256::seed_from(seed);
        let mut g2 = Xoshiro256::seed_from(seed);
        let mut t = 0.0;
        let mut departures: Vec<f64> = Vec::new();
        for gap in &gaps {
            t += gap;
            let expected = departures.iter().filter(|&&d| d > t).count();
            prop_assert_eq!(probe.backlog_at(t), expected);
            let (resp, backlog) = s.arrive(t, &mut g);
            let (resp2, _) = probe.arrive(t, &mut g2);
            prop_assert_eq!(resp.to_bits(), resp2.to_bits());
            prop_assert!(backlog == expected, "backlog mismatch at t = {}", t);
            departures.push(t + resp);
        }
    }

    fn queue_utilization_bounded_by_busy_time(
        seed in 0u64..1_000_000,
        gaps in vecs(0.01f64..1.0, 1..80),
    ) {
        let mut s = QueueServer::new(10.0);
        let mut g = Xoshiro256::seed_from(seed);
        let mut t = 0.0;
        for gap in &gaps {
            t += gap;
            s.arrive(t, &mut g);
        }
        let horizon = t + 1.0;
        let u = s.utilization(horizon);
        prop_assert!(u >= 0.0, "utilization must be non-negative, got {}", u);
    }
}
