//! # ddn — Doubly Robust trace-driven evaluation for data-driven networking
//!
//! Facade crate re-exporting the whole workspace: a production-quality Rust
//! reproduction of *Biases in Data-Driven Networking, and What to Do About
//! Them* (Bartulovic, Jiang, Balakrishnan, Sekar, Sinopoli — HotNets '17).
//!
//! ## The problem
//!
//! Networked systems increasingly pick policies (CDN selection, bitrate
//! adaptation, relay routing, …) by *trace-driven evaluation*: replaying
//! logged client/decision/reward tuples to predict how a **new** policy
//! would have performed. Done naively this is biased (the logging policy
//! skewed which decisions appear in the trace) or high-variance (matching
//! estimators find few overlapping records).
//!
//! ## The fix
//!
//! The **Doubly Robust (DR) estimator** combines a reward model (Direct
//! Method) with importance weighting (Inverse Propensity Scoring) so the
//! estimate is accurate whenever *either* component is — the "second-order
//! bias" property. This workspace implements DM, IPS, SNIPS, DR and the
//! paper's networking-specific extensions (non-stationary replay,
//! state-aware DR, coupling detection), plus every simulator needed to
//! regenerate the paper's Figure 7 and a battery of ablations.
//!
//! ## Quick start
//!
//! ```
//! use ddn::prelude::*;
//!
//! // A tiny world: two decisions, reward depends on the decision only.
//! let space = DecisionSpace::new(vec!["cdn-a".into(), "cdn-b".into()]);
//! let schema = ContextSchema::builder().numeric("rtt_ms").build();
//!
//! // Log a trace under a uniformly random old policy.
//! let old = UniformRandomPolicy::new(space.clone());
//! let mut rng = Xoshiro256::seed_from(7);
//! let mut records = Vec::new();
//! for i in 0..200 {
//!     let ctx = Context::build(&schema).set_numeric("rtt_ms", 20.0 + (i % 30) as f64).finish();
//!     let (d, p) = old.sample_with_prob(&ctx, &mut rng);
//!     let reward = if d.index() == 0 { 1.0 } else { 0.5 };
//!     records.push(TraceRecord::new(ctx, d, reward).with_propensity(p));
//! }
//! let trace = Trace::from_records(schema, space.clone(), records).unwrap();
//!
//! // Evaluate a new deterministic policy ("always cdn-a") three ways.
//! let new_policy = LookupPolicy::constant(space.clone(), 0);
//! let model = TabularMeanModel::fit_trace(&trace, 0.0);
//! let dm = DirectMethod::new(model.clone());
//! let ips = Ips::new();
//! let dr = DoublyRobust::new(model);
//!
//! let v_dm = dm.estimate(&trace, &new_policy).unwrap().value;
//! let v_ips = ips.estimate(&trace, &new_policy).unwrap().value;
//! let v_dr = dr.estimate(&trace, &new_policy).unwrap().value;
//! for v in [v_dm, v_ips, v_dr] {
//!     assert!((v - 1.0).abs() < 0.15, "estimate {v} far from truth 1.0");
//! }
//! ```
//!
//! See `examples/` for realistic end-to-end scenarios and
//! `ddn-scenarios` for the paper's experiments.

#![forbid(unsafe_code)]

pub use ddn_abr as abr;
pub use ddn_cdn as cdn;
pub use ddn_estimators as estimators;
pub use ddn_models as models;
pub use ddn_loadgen as loadgen;
pub use ddn_netsim as netsim;
pub use ddn_policy as policy;
pub use ddn_relay as relay;
pub use ddn_scenarios as scenarios;
pub use ddn_serve as serve;
pub use ddn_stats as stats;
pub use ddn_telemetry as telemetry;
pub use ddn_trace as trace;

/// Convenient glob-import surface covering the common workflow:
/// build/ingest a trace, define policies, fit a reward model, estimate.
pub mod prelude {
    pub use ddn_estimators::{
        DirectMethod, DoublyRobust, Estimate, Estimator, Ips, SelfNormalizedIps,
    };
    pub use ddn_models::{RewardModel, TabularMeanModel};
    pub use ddn_policy::{LookupPolicy, Policy, UniformRandomPolicy};
    pub use ddn_stats::{Rng, Xoshiro256};
    pub use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};
}
