#!/usr/bin/env bash
# Full reproduction pipeline for the HotNets'17 DR paper.
# Everything is deterministic: same machine or not, same numbers.
#
# Usage:
#   ./reproduce.sh       — full pipeline (build, tests, figures, examples)
#   ./reproduce.sh ci    — hermetic CI check only: offline release build +
#                          offline test suite, proving the workspace needs
#                          nothing from crates.io
#   ./reproduce.sh bench-pin — re-run the CI-sized bench smokes and re-pin
#                          the bench_floors.json regression floors from
#                          the fresh numbers (x pin_margin). Run after an
#                          intentional perf change, commit the new floors.
set -euo pipefail
cd "$(dirname "$0")"

# Runs the CI-sized bench smokes into $1 (a bench dir). Shared verbatim
# between the ci gate and bench-pin so pinned floors and gated values are
# always measured under identical sizing.
run_bench_smokes() {
  local dir="$1"
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 DDN_STREAM_RUNS=2000 \
  DDN_BENCH_DIR="$dir" \
    cargo bench --offline -p ddn-bench --bench stream_ingest
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 DDN_WAL_RUNS=2000 \
  DDN_BENCH_DIR="$dir" \
    cargo bench --offline -p ddn-bench --bench wal
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 DDN_SOAK_RUNS=2000 \
  DDN_BENCH_DIR="$dir" \
    cargo bench --offline -p ddn-bench --bench soak
  # The perf bench carries the estimator-menu throughput section
  # (menu.seqdr_records_per_sec is floored in bench_floors.json); the
  # eval_batch stage inside it is sized down to smoke scale.
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 \
  DDN_EVAL_BATCH_RUNS=1 DDN_EVAL_BATCH_CLIENTS=100 \
  DDN_BENCH_DIR="$dir" \
    cargo bench --offline -p ddn-bench --bench perf
  ./target/release/ddn loadgen --smoke --bench-json "$dir/BENCH_loadgen.json" \
    | tee "$dir/loadgen_smoke.txt"
}

if [[ "${1:-}" == "bench-pin" ]]; then
  echo "== bench-pin: offline release build =="
  cargo build --workspace --release --offline
  pin_dir="$(mktemp -d -t ddn-bench-pin-XXXXXX)"
  trap 'rm -rf "$pin_dir"' EXIT
  echo "== bench-pin: CI-sized bench smokes =="
  run_bench_smokes "$pin_dir"
  echo "== bench-pin: re-pinning bench_floors.json =="
  ./target/release/ddn bench-diff "$pin_dir" --floors bench_floors.json --pin
  echo "bench-pin ok: commit the updated bench_floors.json"
  exit 0
fi

if [[ "${1:-}" == "ci" ]]; then
  echo "== ci: hermetic offline build =="
  cargo build --workspace --release --offline
  echo "== ci: hermetic offline tests =="
  cargo test --workspace -q --offline
  echo "== ci: telemetry smoke (selftest --telemetry + telemetry-check) =="
  # One small instrumented scenario: the health suite exercises every
  # estimator, writes a telemetry snapshot, and telemetry-check re-parses
  # it with the in-repo JSON parser and asserts the required health keys
  # (ess, clip_rate, acceptance_rate, coverage) are present.
  telemetry_file="$(mktemp -t ddn-telemetry-XXXXXX.json)"
  trap 'rm -f "$telemetry_file"' EXIT
  cargo run --release --offline -p ddn-cli --bin ddn -- \
    selftest --runs 3 --telemetry "$telemetry_file" > /dev/null
  cargo run --release --offline -p ddn-cli --bin ddn -- \
    telemetry-check "$telemetry_file"
  echo "== ci: shared-score batching (batched == unbatched, bench smoke) =="
  # The batched path must print the exact same tables as --no-batch: the
  # EvalBatch contract is bit-identity, so a plain text diff is a full
  # equivalence check over every estimator in the 7c panel.
  batched_out="$(cargo run --release --offline -p ddn-cli --bin ddn -- \
    figure7 7c --runs 3)"
  plain_out="$(cargo run --release --offline -p ddn-cli --bin ddn -- \
    figure7 7c --runs 3 --no-batch)"
  if [[ "$batched_out" != "$plain_out" ]]; then
    echo "FAIL: figure7 7c output differs between batched and --no-batch" >&2
    diff <(printf '%s\n' "$batched_out") <(printf '%s\n' "$plain_out") >&2 || true
    exit 1
  fi
  # Tiny eval_batch bench smoke: one warmup-free iteration, sized down,
  # writing BENCH_eval_batch.json into a scratch dir. This checks the
  # timing harness end-to-end, not the speedup ratio (CI boxes are noisy;
  # the pinned ratio lives in BENCH_perf.json from full bench runs).
  bench_dir="$(mktemp -d -t ddn-bench-XXXXXX)"
  trap 'rm -f "$telemetry_file"; rm -rf "$bench_dir"' EXIT
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 DDN_BENCH_DIR="$bench_dir" \
  DDN_EVAL_BATCH_RUNS=1 DDN_EVAL_BATCH_CLIENTS=100 \
    cargo bench --offline -p ddn-bench --bench eval_batch
  test -s "$bench_dir/BENCH_eval_batch.json"
  grep -q '"speedup"' "$bench_dir/BENCH_eval_batch.json"
  echo "== ci: estimator-menu smoke (figure7 --panel menu, challengers win) =="
  # The menu ablation panel (DESIGN.md §16): three scenarios engineered to
  # break the incumbent estimators, each won by its menu extension. The
  # greps pin the panel's headline verdict lines — a "no" means a
  # challenger stopped beating the scenario built for it.
  menu_out="$(cargo run --release --offline -p ddn-cli --bin ddn -- \
    figure7 --panel menu --runs 2)"
  printf '%s\n' "$menu_out" | grep -q 'scenario adaptive (AdaptiveDR vs IPS, SNIPS)'
  printf '%s\n' "$menu_out" | grep -q 'scenario marginalized (MarginalizedDR vs IPS, DR)'
  printf '%s\n' "$menu_out" | grep -q 'scenario sequential (SeqDR vs TrajIPS, StepDR)'
  if printf '%s\n' "$menu_out" | grep -q 'does NOT beat'; then
    echo "FAIL: a menu challenger lost its own breaking scenario" >&2
    printf '%s\n' "$menu_out" >&2
    exit 1
  fi
  printf '%s\n' "$menu_out" | grep -c 'beats every incumbent' | grep -qx 3
  echo "== ci: streaming serve smoke (replay-to == offline evaluate) =="
  # End-to-end over a real socket: start the server on an ephemeral port,
  # stream a generated trace into it, and require the online estimate to
  # render *identically* to the offline `ddn evaluate` line — the serve
  # layer's bit-identity contract, checked at the user-facing surface.
  serve_trace="$(mktemp -t ddn-serve-trace-XXXXXX.jsonl)"
  port_file="$(mktemp -t ddn-serve-port-XXXXXX)"
  trap 'rm -f "$telemetry_file" "$serve_trace" "$port_file"; rm -rf "$bench_dir"' EXIT
  ./target/release/ddn generate "$serve_trace" --world cfa --n 300 --seed 7 > /dev/null
  : > "$port_file"
  ./target/release/ddn serve --port-file "$port_file" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  test -s "$port_file" || { echo "FAIL: server never wrote its port" >&2; exit 1; }
  addr="$(cat "$port_file")"
  replay_out="$(./target/release/ddn replay-to "$serve_trace" \
    --addr "$addr" --decision cdn1/br2 --estimator ips --shutdown)"
  offline_out="$(./target/release/ddn evaluate "$serve_trace" \
    --decision cdn1/br2 --estimator ips)"
  # The shutdown verb must stop the server cleanly (exit 0, no kill).
  wait "$serve_pid"
  online_line="$(printf '%s\n' "$replay_out" | grep '^estimate:')"
  offline_line="$(printf '%s\n' "$offline_out" | grep '^estimate:')"
  if [[ "$online_line" != "$offline_line" ]]; then
    echo "FAIL: streamed estimate differs from offline evaluate" >&2
    echo "  online:  $online_line" >&2
    echo "  offline: $offline_line" >&2
    exit 1
  fi
  printf '%s\n' "$replay_out" | grep -q 'streamed 300 records'
  printf '%s\n' "$replay_out" | grep -q 'server shutdown requested'
  echo "== ci: binary-protocol smoke (binary replay-to == offline evaluate) =="
  # The same bit-identity contract over the binary columnar batch frame
  # (DESIGN.md §14): stream the trace with --binary and require the
  # estimate line to match the offline `ddn evaluate` output exactly.
  : > "$port_file"
  ./target/release/ddn serve --port-file "$port_file" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  test -s "$port_file" || { echo "FAIL: binary-smoke server never wrote its port" >&2; exit 1; }
  addr="$(cat "$port_file")"
  binary_out="$(./target/release/ddn replay-to "$serve_trace" \
    --addr "$addr" --decision cdn1/br2 --estimator ips --binary --shutdown)"
  wait "$serve_pid"
  binary_line="$(printf '%s\n' "$binary_out" | grep '^estimate:')"
  if [[ "$binary_line" != "$offline_line" ]]; then
    echo "FAIL: binary-frame estimate differs from offline evaluate" >&2
    echo "  binary:  $binary_line" >&2
    echo "  offline: $offline_line" >&2
    exit 1
  fi
  printf '%s\n' "$binary_out" | grep -q 'streamed 300 records over binary frames'
  echo "== ci: crash-resume smoke (kill -9, restart, identical estimate) =="
  # The durability contract at the user-facing surface (DESIGN.md §12):
  # stream a trace into a WAL-backed server, query the estimate, kill the
  # process with SIGKILL (no graceful shutdown, no final snapshot),
  # restart on the same data dir, and require `ddn query` to render the
  # recovered session *identically* — same estimate bits, same record
  # count, with no re-initialization.
  data_dir="$(mktemp -d -t ddn-serve-data-XXXXXX)"
  trap 'rm -f "$telemetry_file" "$serve_trace" "$port_file"; rm -rf "$bench_dir" "$data_dir"' EXIT
  : > "$port_file"
  ./target/release/ddn serve --port-file "$port_file" \
    --data-dir "$data_dir" --snapshot-every 32 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  test -s "$port_file" || { echo "FAIL: durable server never wrote its port" >&2; exit 1; }
  addr="$(cat "$port_file")"
  ./target/release/ddn replay-to "$serve_trace" \
    --addr "$addr" --decision cdn1/br2 --estimator ips > /dev/null
  before_query="$(./target/release/ddn query --addr "$addr" --session replay)"
  printf '%s\n' "$before_query" | grep -q 'session: replay (300 records)'
  kill -9 "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  : > "$port_file"
  ./target/release/ddn serve --port-file "$port_file" \
    --data-dir "$data_dir" --snapshot-every 32 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  test -s "$port_file" || { echo "FAIL: restarted server never wrote its port" >&2; exit 1; }
  addr="$(cat "$port_file")"
  after_query="$(./target/release/ddn query --addr "$addr" --session replay --shutdown)"
  wait "$serve_pid"
  after_sans_shutdown="$(printf '%s\n' "$after_query" | grep -v '^server shutdown')"
  if [[ "$before_query" != "$after_sans_shutdown" ]]; then
    echo "FAIL: estimate after kill -9 + restart differs from before" >&2
    diff <(printf '%s\n' "$before_query") <(printf '%s\n' "$after_sans_shutdown") >&2 || true
    exit 1
  fi
  echo "== ci: observability smoke (stats verb, ddn top, flight recorder) =="
  # The live observability plane (DESIGN.md §13) at the user-facing
  # surface: stream a trace into a fresh server, then require `ddn top
  # --once --json` to report the exact request counts and ingest tally
  # the workload implies. replay-to sends 300 records in two batches of
  # 256 plus one init and one estimate.
  : > "$port_file"
  ./target/release/ddn serve --port-file "$port_file" --data-dir "$data_dir" \
    --failpoint boom &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  test -s "$port_file" || { echo "FAIL: observed server never wrote its port" >&2; exit 1; }
  addr="$(cat "$port_file")"
  ./target/release/ddn replay-to "$serve_trace" \
    --addr "$addr" --decision cdn1/br2 --estimator ips > /dev/null
  top_json="$(./target/release/ddn top --addr "$addr" --once --json)"
  printf '%s\n' "$top_json" | grep -q '"serve.req.init":1'
  printf '%s\n' "$top_json" | grep -q '"serve.req.ingest":2'
  printf '%s\n' "$top_json" | grep -q '"serve.req.estimate":1'
  printf '%s\n' "$top_json" | grep -q '"serve.ingest.records":300'
  top_table="$(./target/release/ddn top --addr "$addr" --once)"
  printf '%s\n' "$top_table" | grep -q 'p99 handle'
  printf '%s\n' "$top_table" | grep -q 'ingested 300 records'
  # Flight recorder: a session matching the failpoint panics its worker,
  # which must dump the pre-panic request ring to the data dir — final
  # requests in order, ending in the panic — and `ddn flight` must
  # validate it (consecutive indices, parseable lines).
  ./target/release/ddn replay-to "$serve_trace" \
    --addr "$addr" --decision cdn1/br2 --estimator ips --session boom \
    > /dev/null 2>&1 && { echo "FAIL: failpoint session did not fail" >&2; exit 1; }
  flight_dump="$(ls "$data_dir"/flightrec-*.jsonl)"
  grep -q '"outcome":"panic"' "$flight_dump"
  flight_out="$(./target/release/ddn flight "$flight_dump")"
  printf '%s\n' "$flight_out" | grep -q 'consecutive'
  printf '%s\n' "$flight_out" | grep -q 'panic 1'
  ./target/release/ddn top --addr "$addr" --once --shutdown > /dev/null
  wait "$serve_pid"
  rm -f "$data_dir"/flightrec-*.jsonl
  # Tiny observability-overhead bench smoke: traced vs untraced ingest
  # throughput through real sockets, checking the harness and the pinned
  # within_5pct key end-to-end (the ratio itself is pinned by full runs).
  DDN_BENCH_WARMUP=0 DDN_BENCH_ITERS=1 DDN_OBSERVE_RUNS=2000 \
  DDN_BENCH_DIR="$bench_dir" \
    cargo bench --offline -p ddn-bench --bench observe
  test -s "$bench_dir/BENCH_observe.json"
  grep -q '"within_5pct"' "$bench_dir/BENCH_observe.json"
  grep -q '"traced_records_per_sec"' "$bench_dir/BENCH_observe.json"
  echo "== ci: chaos smoke (fault injection, exactly-once, retry/dedup) =="
  # A fixed-seed fault plan (disconnects guaranteed by construction)
  # against an in-process server: the command exits non-zero unless every
  # acknowledged record is counted exactly once AND the streamed estimate
  # is bit-identical to the offline estimator (DESIGN.md §11).
  chaos_out="$(./target/release/ddn chaos --seed 7 --faults 0.01 --duration-records 5000)"
  printf '%s\n' "$chaos_out" | grep -q 'exactly-once: ok'
  printf '%s\n' "$chaos_out" | grep -q 'estimate parity: ok'
  echo "== ci: perf trajectory (bench smokes + loadgen smoke + bench-diff gate) =="
  # All four CI-sized bench smokes run through run_bench_smokes — the
  # same function bench-pin uses — so every value the gate compares was
  # measured under exactly the sizing its floor was pinned under.
  run_bench_smokes "$bench_dir"
  # Per-suite sanity: the harnesses wrote their files and the in-bench
  # self-pinned keys held.
  test -s "$bench_dir/BENCH_stream.json"
  grep -q '"tcp_replay_binary_records_per_sec"' "$bench_dir/BENCH_stream.json"
  grep -q '"meets_floor":true' "$bench_dir/BENCH_stream.json" || {
    echo "FAIL: stream ingest throughput fell below the recorded floor" >&2
    grep -o '"stream":{[^}]*}' "$bench_dir/BENCH_stream.json" >&2 || true
    exit 1
  }
  grep -q '"meets_binary_floor":true' "$bench_dir/BENCH_stream.json" || {
    echo "FAIL: binary-over-JSON throughput ratio fell below the 5x floor" >&2
    grep -o '"stream":{[^}]*}' "$bench_dir/BENCH_stream.json" >&2 || true
    exit 1
  }
  test -s "$bench_dir/BENCH_wal.json"
  grep -q '"wal_on_records_per_sec"' "$bench_dir/BENCH_wal.json"
  test -s "$bench_dir/BENCH_soak.json"
  grep -q '"records_per_sec"' "$bench_dir/BENCH_soak.json"
  test -s "$bench_dir/BENCH_perf.json"
  grep -q '"seqdr_records_per_sec"' "$bench_dir/BENCH_perf.json"
  # Loadgen smoke (DESIGN.md §15): a seeded mixed ABR/CDN/relay fleet
  # over both wire framings with a nonzero fault rate, against an
  # ephemeral multi-shard server. The command itself exits non-zero
  # unless the server counted every record exactly once and every
  # session's streamed estimate is bit-identical to the offline
  # estimator; the greps pin the human-facing contract lines.
  grep -q 'estimate parity: ok' "$bench_dir/loadgen_smoke.txt"
  grep -q 'exactly-once: ok' "$bench_dir/loadgen_smoke.txt"
  grep -q 'determinism: ok' "$bench_dir/loadgen_smoke.txt"
  test -s "$bench_dir/BENCH_loadgen.json"
  grep -q '"parity_mismatches":0' "$bench_dir/BENCH_loadgen.json"
  grep -q '"schedule_digest"' "$bench_dir/BENCH_loadgen.json"
  # The regression gate proper: every metric pinned in bench_floors.json
  # must sit at or above its floor, or ci fails here.
  ./target/release/ddn bench-diff "$bench_dir" --floors bench_floors.json
  echo "ci ok: built, tested, telemetry-smoked, batch-equivalence-checked, serve-smoked, binary-protocol-smoked, crash-resume-smoked, chaos-smoked, loadgen-smoked, and bench-diff-gated with zero external dependencies"
  exit 0
fi

echo "== build =="
cargo build --workspace --release

echo "== tests (unit + integration + property) =="
cargo test --workspace --release

echo "== figures: paper Figure 7a/7b/7c + ablations A-I (~1 min) =="
cargo run --release -p ddn-bench --bin figures | tee figures_output.txt

echo "== examples =="
for e in quickstart abr_evaluation relay_selection cdn_whatif \
         nonstationary_replay state_aware_evaluation policy_tournament trace_io; do
  echo "--- example: $e ---"
  cargo run --release --example "$e"
done

echo "== benches (optional, slow; write BENCH_*.json) =="
echo "run: cargo bench -p ddn-bench"
echo
echo "done; see EXPERIMENTS.md for the paper-vs-measured comparison."
