#!/usr/bin/env bash
# Full reproduction pipeline for the HotNets'17 DR paper.
# Everything is deterministic: same machine or not, same numbers.
#
# Usage:
#   ./reproduce.sh       — full pipeline (build, tests, figures, examples)
#   ./reproduce.sh ci    — hermetic CI check only: offline release build +
#                          offline test suite, proving the workspace needs
#                          nothing from crates.io
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "ci" ]]; then
  echo "== ci: hermetic offline build =="
  cargo build --workspace --release --offline
  echo "== ci: hermetic offline tests =="
  cargo test --workspace -q --offline
  echo "ci ok: built and tested with zero external dependencies"
  exit 0
fi

echo "== build =="
cargo build --workspace --release

echo "== tests (unit + integration + property) =="
cargo test --workspace --release

echo "== figures: paper Figure 7a/7b/7c + ablations A-I (~1 min) =="
cargo run --release -p ddn-bench --bin figures | tee figures_output.txt

echo "== examples =="
for e in quickstart abr_evaluation relay_selection cdn_whatif \
         nonstationary_replay state_aware_evaluation policy_tournament trace_io; do
  echo "--- example: $e ---"
  cargo run --release --example "$e"
done

echo "== benches (optional, slow; write BENCH_*.json) =="
echo "run: cargo bench -p ddn-bench"
echo
echo "done; see EXPERIMENTS.md for the paper-vs-measured comparison."
