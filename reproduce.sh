#!/usr/bin/env bash
# Full reproduction pipeline for the HotNets'17 DR paper.
# Everything is deterministic: same machine or not, same numbers.
#
# Usage:
#   ./reproduce.sh       — full pipeline (build, tests, figures, examples)
#   ./reproduce.sh ci    — hermetic CI check only: offline release build +
#                          offline test suite, proving the workspace needs
#                          nothing from crates.io
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "ci" ]]; then
  echo "== ci: hermetic offline build =="
  cargo build --workspace --release --offline
  echo "== ci: hermetic offline tests =="
  cargo test --workspace -q --offline
  echo "== ci: telemetry smoke (selftest --telemetry + telemetry-check) =="
  # One small instrumented scenario: the health suite exercises every
  # estimator, writes a telemetry snapshot, and telemetry-check re-parses
  # it with the in-repo JSON parser and asserts the required health keys
  # (ess, clip_rate, acceptance_rate, coverage) are present.
  telemetry_file="$(mktemp -t ddn-telemetry-XXXXXX.json)"
  trap 'rm -f "$telemetry_file"' EXIT
  cargo run --release --offline -p ddn-cli --bin ddn -- \
    selftest --runs 3 --telemetry "$telemetry_file" > /dev/null
  cargo run --release --offline -p ddn-cli --bin ddn -- \
    telemetry-check "$telemetry_file"
  echo "ci ok: built, tested, and telemetry-smoked with zero external dependencies"
  exit 0
fi

echo "== build =="
cargo build --workspace --release

echo "== tests (unit + integration + property) =="
cargo test --workspace --release

echo "== figures: paper Figure 7a/7b/7c + ablations A-I (~1 min) =="
cargo run --release -p ddn-bench --bin figures | tee figures_output.txt

echo "== examples =="
for e in quickstart abr_evaluation relay_selection cdn_whatif \
         nonstationary_replay state_aware_evaluation policy_tournament trace_io; do
  echo "--- example: $e ---"
  cargo run --release --example "$e"
done

echo "== benches (optional, slow; write BENCH_*.json) =="
echo "run: cargo bench -p ddn-bench"
echo
echo "done; see EXPERIMENTS.md for the paper-vs-measured comparison."
