#!/usr/bin/env bash
# Full reproduction pipeline for the HotNets'17 DR paper.
# Everything is deterministic: same machine or not, same numbers.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
cargo build --workspace --release

echo "== tests (unit + integration + property) =="
cargo test --workspace --release

echo "== figures: paper Figure 7a/7b/7c + ablations A-I (~1 min) =="
cargo run --release -p ddn-bench --bin figures | tee figures_output.txt

echo "== examples =="
for e in quickstart abr_evaluation relay_selection cdn_whatif \
         nonstationary_replay state_aware_evaluation policy_tournament trace_io; do
  echo "--- example: $e ---"
  cargo run --release --example "$e"
done

echo "== criterion benches (optional, slow) =="
echo "run: cargo bench -p ddn-bench"
echo
echo "done; see EXPERIMENTS.md for the paper-vs-measured comparison."
