//! Evaluating a *learning* policy with the §4.2 replay estimator.
//!
//! Most networking controllers adapt online; their decision distribution
//! at client k depends on everything they observed before k. Scoring a
//! frozen snapshot of such a policy misses the learning; the paper's
//! rejection-sampling replay follows it.
//!
//! ```text
//! cargo run --release --example nonstationary_replay
//! ```

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::estimators::{DoublyRobust, Estimator, ReplayEvaluator};
use ddn::models::{KnnConfig, KnnRegressor};
use ddn::policy::{HistoryPolicy, UniformRandomPolicy};
use ddn::scenarios::ablations::nonstationary::EpsilonGreedyBandit;
use ddn::stats::Xoshiro256;

fn main() {
    let world = CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.25,
            ..Default::default()
        },
        31_337,
    );
    let mut rng = Xoshiro256::seed_from(3);

    // The production trace: uniform random logging (CFA-style).
    let old = UniformRandomPolicy::new(world.space().clone());
    let clients = world.sample_clients(3_000, &mut rng);
    let trace = world.log_trace(&clients, &old, 17);
    println!(
        "logged {} uniformly randomized decisions over {} CDN/bitrate combos",
        trace.len(),
        world.space().len()
    );

    // The policy we want to evaluate: an epsilon-greedy learner.
    let mut bandit = EpsilonGreedyBandit::new(world.space().clone(), 0.1);

    // Naive: pretend it's stationary and score its cold-start (uniform)
    // snapshot.
    let knn = KnnRegressor::fit(&trace, KnnConfig::default());
    let cold = UniformRandomPolicy::new(world.space().clone());
    let naive = DoublyRobust::new(&knn)
        .estimate(&trace, &cold)
        .unwrap()
        .value;

    // Replay: drive the learner through the trace, feeding it the matched
    // tuples (paper §4.2).
    let mut replay_rng = rng.fork();
    let replay = ReplayEvaluator::new(&knn)
        .evaluate(&trace, &old, &mut bandit, &mut replay_rng)
        .expect("uniform logging guarantees matches");

    println!("\nnaive stationary-DR estimate (cold snapshot): {naive:.3}");
    println!(
        "replay-DR estimate (follows the learning):    {:.3}",
        replay.estimate.value
    );
    println!(
        "replay accepted {} of {} tuples ({:.1}% — about 1/|D|, as rejection \
         sampling predicts)",
        replay.accepted,
        replay.accepted + replay.rejected,
        100.0 * replay.acceptance_rate()
    );

    // After the replay the bandit has learned something; peek at it.
    let sample_ctx = world.sample_clients(1, &mut rng).remove(0);
    let probs = bandit.probabilities(&sample_ctx);
    let best = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "\nafter replay, the learner concentrates on decision {:?}",
        world.space().name(best)
    );
    assert!(
        replay.estimate.value > naive,
        "the learner should look better than its cold snapshot"
    );
    println!("the replay sees the improvement; the frozen snapshot cannot.");
}
