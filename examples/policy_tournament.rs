//! Policy tournament: the Figure 1 workflow end to end.
//!
//! Ranks a slate of candidate CDN/bitrate policies from one logged trace,
//! with bootstrap confidence intervals and an honest "is this decisive?"
//! verdict — plus cross-validated model selection for the DR reward model.
//!
//! ```text
//! cargo run --release --example policy_tournament
//! ```

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::estimators::{DoublyRobust, PolicyComparator};
use ddn::models::{cross_validate, KnnConfig, KnnRegressor, RewardModel, TabularMeanModel};
use ddn::policy::{EpsilonSmoothedPolicy, LookupPolicy, Policy, UniformRandomPolicy};
use ddn::stats::Xoshiro256;
use ddn::trace::Trace;

enum TunedModel {
    Knn(KnnRegressor),
    Tabular(TabularMeanModel),
}

impl RewardModel for TunedModel {
    fn predict(&self, c: &ddn::trace::Context, d: ddn::trace::Decision) -> f64 {
        match self {
            TunedModel::Knn(m) => m.predict(c, d),
            TunedModel::Tabular(m) => m.predict(c, d),
        }
    }
}

fn main() {
    let world = CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.35,
            ..Default::default()
        },
        777,
    );
    let mut rng = Xoshiro256::seed_from(21);
    let clients = world.sample_clients(2_500, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let trace = world.log_trace(&clients, &old, 22);
    println!(
        "logged {} records across {} decisions\n",
        trace.len(),
        world.space().len()
    );

    // --- Step 1: pick the DR reward model by cross-validation ----------
    let mut cv_rng = Xoshiro256::seed_from(23);
    let knn_score = cross_validate(
        &trace,
        5,
        |tr: &Trace| KnnRegressor::fit(tr, KnnConfig::default()),
        Some(&mut cv_rng),
    );
    let mut cv_rng2 = Xoshiro256::seed_from(23);
    let tab_score = cross_validate(
        &trace,
        5,
        |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0),
        Some(&mut cv_rng2),
    );
    println!("model selection (5-fold CV, held-out MSE):");
    println!("  k-NN:    {:.4}", knn_score.mse);
    println!("  tabular: {:.4}", tab_score.mse);
    let model = if knn_score.mse <= tab_score.mse {
        println!("  -> using k-NN\n");
        TunedModel::Knn(KnnRegressor::fit(&trace, KnnConfig::default()))
    } else {
        println!("  -> using tabular means\n");
        TunedModel::Tabular(TabularMeanModel::fit_trace(&trace, 1.0))
    };

    // --- Step 2: the tournament ----------------------------------------
    let greedy = world.greedy_policy();
    let cautious = EpsilonSmoothedPolicy::new(Box::new(world.greedy_policy()), 0.25);
    let pin0 = LookupPolicy::constant(world.space().clone(), 0);
    let uniform = UniformRandomPolicy::new(world.space().clone());
    let slate: Vec<(&str, &dyn Policy)> = vec![
        ("greedy", &greedy),
        ("greedy+eps0.25", &cautious),
        ("pin cdn0/br0", &pin0),
        ("uniform", &uniform),
    ];

    let dr = DoublyRobust::new(&model);
    let mut boot_rng = Xoshiro256::seed_from(24);
    let result = PolicyComparator::new(&dr).compare(&trace, &slate, &mut boot_rng);
    println!("tournament (DR estimates, 95% bootstrap CIs):");
    print!("{}", result.render());

    match result.decisive() {
        Some(true) => println!("\nverdict: decisive — the winner's CI clears the runner-up."),
        Some(false) => println!(
            "\nverdict: NOT decisive — CIs overlap; collect more (or more randomized) data \
             before deploying (paper §4.1)."
        ),
        None => println!("\nno candidate could be evaluated"),
    }

    // --- Step 3: check against the (here-known) truth ------------------
    println!("\ntrue values on this client population:");
    for (name, p) in &slate {
        println!("  {name:<15} {:+.4}", world.true_value(&clients, *p));
    }
    let truth_best = slate
        .iter()
        .max_by(|a, b| {
            world
                .true_value(&clients, a.1)
                .partial_cmp(&world.true_value(&clients, b.1))
                .unwrap()
        })
        .unwrap()
        .0;
    let picked = result.best().map(|c| c.name.clone()).unwrap_or_default();
    println!("\ntrue best: {truth_best}; tournament picked: {picked}");
    assert_eq!(
        picked, truth_best,
        "the tournament should pick the true winner at this scale"
    );
}
