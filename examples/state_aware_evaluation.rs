//! State-aware evaluation on the discrete-event network simulator:
//! §4.1's "morning trace, peak-hour question" and §4.3's change-point
//! gating, in one run.
//!
//! ```text
//! cargo run --release --example state_aware_evaluation
//! ```

use ddn::estimators::state_aware::MatchOnly;
use ddn::estimators::{CouplingDetector, DoublyRobust, Estimator, ScaleTransition, StateAwareDr};
use ddn::models::TabularMeanModel;
use ddn::netsim::{small_world, RateProfile};
use ddn::policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
use ddn::trace::StateTag;

fn main() {
    // --- Part 1: diurnal state mismatch --------------------------------
    // A day with a quiet morning and a busy evening.
    let world = small_world(
        RateProfile::Piecewise(vec![(300.0, 5.0), (600.0, 25.0)]),
        600.0,
    );
    let old = EpsilonSmoothedPolicy::new(
        Box::new(LookupPolicy::constant(world.space().clone(), 0)),
        0.3,
    );
    let newp = UniformRandomPolicy::new(world.space().clone());

    let out = world.run(&old, 1);
    let trace = &out.trace;
    let high = trace
        .records()
        .iter()
        .filter(|r| r.state != Some(StateTag::LOW_LOAD))
        .count();
    println!(
        "day trace: {} requests, {} of them under elevated load ({:.0}%)",
        trace.len(),
        high,
        100.0 * high as f64 / trace.len() as f64
    );

    let model = TabularMeanModel::fit_trace(trace, 1.0);
    let pooled = DoublyRobust::new(model.clone())
        .estimate(trace, &newp)
        .unwrap()
        .value;
    println!(
        "\npooled DR estimate of the new policy (all day):    {pooled:.4} (reward = -latency s)"
    );

    let match_only =
        StateAwareDr::new(model.clone(), MatchOnly, StateTag::HIGH_LOAD).estimate(trace, &newp);
    match match_only {
        Ok(e) => println!(
            "state-matched DR estimate (high-load records only): {:.4} over {} records",
            e.value,
            e.per_record.len()
        ),
        Err(e) => println!("state-matched DR: {e}"),
    }

    // Transport morning records into the peak state with a calibrated
    // multiplicative factor (the paper's "degrade by 20%" move).
    let mean_of = |tag: StateTag| -> Option<f64> {
        let (s, n) = trace
            .records()
            .iter()
            .filter(|r| {
                let t = r.state.unwrap();
                if tag == StateTag::LOW_LOAD {
                    t == tag
                } else {
                    t != StateTag::LOW_LOAD
                }
            })
            .fold((0.0, 0usize), |(s, n), r| (s + r.reward, n + 1));
        (n > 0).then(|| s / n as f64)
    };
    if let (Some(lo), Some(hi)) = (mean_of(StateTag::LOW_LOAD), mean_of(StateTag::HIGH_LOAD)) {
        let ratio = hi / lo;
        println!("calibrated transition: peak rewards are {ratio:.2}x the morning level");
        // Re-tag to the binary scheme the transition uses.
        let binary = trace.filtered(|_| true).unwrap();
        let transition = ScaleTransition::new(vec![
            (StateTag::LOW_LOAD, 1.0),
            (StateTag::HIGH_LOAD, ratio),
            (StateTag::OVERLOAD, ratio),
        ]);
        let transported = StateAwareDr::new(model, transition, StateTag::HIGH_LOAD)
            .estimate(&binary, &newp)
            .unwrap();
        println!(
            "transition-transported DR estimate:                 {:.4} over {} records",
            transported.value,
            transported.per_record.len()
        );
    }

    // --- Part 2: self-induced coupling + change-point gating -----------
    println!("\n--- decision-reward coupling ---");
    let hot_world = small_world(RateProfile::Constant(18.0), 200.0);
    let overloader = EpsilonSmoothedPolicy::new(
        Box::new(LookupPolicy::constant(hot_world.space().clone(), 1)), // pin the slow server
        0.2,
    );
    let hot = hot_world.run(&overloader, 2);
    let detector = CouplingDetector::new(100);
    let report = detector.analyze(&hot.trace, &hot.load_proxy);
    println!(
        "the logger overloaded the slow server; PELT found {} regime change(s) in the \
         backlog proxy",
        report.changepoints.len()
    );
    for (i, ((a, b), m)) in report
        .segments
        .iter()
        .zip(&report.segment_means)
        .enumerate()
    {
        println!("  regime {i}: records {a}..{b}, mean backlog {m:.1}");
    }
    if report.coupled() {
        let gated = detector.gate(&hot.trace, &report, 0).unwrap();
        println!(
            "gating to the earliest regime keeps {} of {} records for estimation — \
             the rest were poisoned by the policy's own congestion",
            gated.len(),
            hot.trace.len()
        );
    }
}
