//! VoIP relay selection: the Figure 3 selection bias, live.
//!
//! A VIA-style system relays exactly the NAT-ed calls. Estimating "what if
//! we relayed everyone?" from the observed relayed calls is biased: those
//! calls are all NAT-ed, and NAT-ed last miles behave differently. With a
//! little logging randomization (the paper's §4.1 ask) the IPS and DR
//! estimators de-bias the answer.
//!
//! ```text
//! cargo run --release --example relay_selection
//! ```

use ddn::estimators::{DirectMethod, DoublyRobust, Estimator, Ips};
use ddn::models::TabularMeanModel;
use ddn::policy::LookupPolicy;
use ddn::relay::{RelayConfig, RelayWorld};
use ddn::stats::Xoshiro256;

fn main() {
    let world = RelayWorld::new(RelayConfig::default(), 2024);
    let mut rng = Xoshiro256::seed_from(5);
    let calls = world.sample_calls(20_000, &mut rng);

    // New policy under evaluation: relay every call through relay-0.
    let relay_all = LookupPolicy::constant(world.space().clone(), 1);
    let truth = world.true_value(&calls, &relay_all);
    println!("ground truth: mean call quality if everyone used relay-0 = {truth:.3} MOS");

    // --- Deterministic biased logger (Figure 3) ------------------------
    let biased = world.nat_only_relay_policy(0.0);
    let biased_trace = world.log_trace(&calls, &biased, 7);
    let relayed: Vec<f64> = biased_trace
        .records()
        .iter()
        .filter(|r| r.decision.index() == 1)
        .map(|r| r.reward)
        .collect();
    let naive = relayed.iter().sum::<f64>() / relayed.len() as f64;
    println!(
        "\nVIA-style naive estimate (average observed relayed calls): {naive:.3} \
         (error {:+.3})",
        naive - truth
    );
    println!(
        "  -> every relayed call in the log is NAT-ed ({} of {} records), so the \
         estimate reflects NAT last-miles only",
        relayed.len(),
        biased_trace.len()
    );

    // --- epsilon-smoothed logger: estimators can work -------------------
    let eps = 0.2;
    let smoothed = world.nat_only_relay_policy(eps);
    let trace = world.log_trace(&calls, &smoothed, 8);
    let model = TabularMeanModel::fit_trace(&trace, 1.0);

    let dm = DirectMethod::new(model.clone())
        .estimate(&trace, &relay_all)
        .unwrap();
    let ips = Ips::new().estimate(&trace, &relay_all).unwrap();
    let dr = DoublyRobust::new(model)
        .estimate(&trace, &relay_all)
        .unwrap();

    println!("\nwith eps = {eps} logging randomization:");
    println!(
        "  DM  estimate = {:.3} (error {:+.3})",
        dm.value,
        dm.value - truth
    );
    println!(
        "  IPS estimate = {:.3} (error {:+.3})",
        ips.value,
        ips.value - truth
    );
    println!(
        "  DR  estimate = {:.3} (error {:+.3})",
        dr.value,
        dr.value - truth
    );
    println!(
        "  IPS max weight {:.1}, effective sample size {:.0}",
        ips.diagnostics.max_weight, ips.diagnostics.effective_sample_size
    );

    assert!(
        (dr.value - truth).abs() < (naive - truth).abs(),
        "DR should beat the naive estimate"
    );
    println!("\nDR (and IPS) recover the all-population relay quality; the naive average cannot.");
}
