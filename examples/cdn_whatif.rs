//! CDN what-if analysis: the Figure 4 / WISE pitfall, live.
//!
//! Answers "what if 50% of ISP-1 traffic moved to (FE-1, BE-2)?" from a
//! skewed trace, first with a WISE-style learned causal model (which
//! mislearns the dependency structure) and then with DR.
//!
//! ```text
//! cargo run --release --example cdn_whatif
//! ```

use ddn::cdn::wise::{WiseConfig, WiseWorld};
use ddn::estimators::{DirectMethod, DoublyRobust, Estimator};
use ddn::models::cbn::{CausalBayesNet, CbnConfig, Var};
use ddn::models::RewardModel;
use ddn::trace::Decision;

fn main() {
    let world = WiseWorld::new(WiseConfig {
        long_ms: 900.0,
        short_ms: 300.0,
        noise_std: 350.0,
        clients_per_arrow: 500,
        clients_per_rare_cell: 5,
    });
    let population = world.population();
    let old = world.old_policy();
    let new = world.new_policy();

    let truth = world.true_value(&population, &new);
    println!("ground truth: average response time under the new config = {truth:.0} ms");

    let trace = world.log_trace(&population, &old, 99);
    println!(
        "trace: {} requests; decision mix is ~99% on the two 'arrow' cells per ISP",
        trace.len()
    );

    // --- WISE: learn a causal model, predict the counterfactual --------
    let cbn = CausalBayesNet::fit(
        &trace,
        &CbnConfig {
            decision_axes: Some(vec![2, 2]),
            numeric_bins: 4,
            max_parents: 4,
        },
    );
    println!(
        "\nlearned CBN parents of the response-time node: {:?}",
        cbn.parents()
    );
    let kept_fe = cbn.depends_on(Var::DecisionAxis(0));
    let kept_be = cbn.depends_on(Var::DecisionAxis(1));
    if kept_fe != kept_be {
        println!(
            "  -> FE and BE are ~99% correlated in the skewed trace, so BIC kept only \
             one of them — the incomplete structure of Figure 4"
        );
        let ctx = world.context(0);
        let pred = cbn.predict(&ctx, Decision::from_index(1));
        println!(
            "  -> CBN prediction for the moved traffic (ISP-1, FE-1, BE-2): {pred:.0} ms \
             (truth: {:.0} ms)",
            world.mean_response(0, Decision::from_index(1))
        );
    }

    let wise = DirectMethod::new(cbn.clone())
        .estimate(&trace, &new)
        .unwrap();
    let dr = DoublyRobust::new(cbn).estimate(&trace, &new).unwrap();

    println!(
        "\nWISE (CBN Direct Method) estimate: {:.0} ms  (error {:+.0})",
        wise.value,
        wise.value - truth
    );
    println!(
        "Doubly Robust estimate:            {:.0} ms  (error {:+.0})",
        dr.value,
        dr.value - truth
    );
    println!(
        "\nDR pulled the estimate back using the handful of real (ISP-1, FE-1, BE-2) \
         observations the skewed logger happened to record — exactly the paper's account \
         of Figure 7a."
    );
}
