//! ABR what-if evaluation: the Figure 2 pitfall, live.
//!
//! Streams one session under a buffer-based ABR policy (the logger), then
//! asks: *what QoE would MPC have delivered?* A FastMPC-style evaluator
//! that assumes observed throughput is independent of bitrate
//! underestimates badly when the throughput discount `p(r)` is active;
//! the DR-corrected replay recovers most of the gap.
//!
//! ```text
//! cargo run --release --example abr_evaluation
//! ```

use ddn::abr::throughput::{Bandwidth, ThroughputDiscount};
use ddn::abr::{
    log_session, run_session, BitrateLadder, BufferBased, ExploringAbr, Mpc, QoeModel, Session,
    SessionConfig,
};
use ddn::scenarios::figure7b::{figure7b_with, Figure7bConfig};
use ddn::stats::Xoshiro256;

fn main() {
    let ladder = BitrateLadder::five_level();
    let bandwidth = 2_200.0; // kbps, constant for the session
    let discount = ThroughputDiscount::paper_default();

    let make_session = || {
        Session::new(
            ladder.clone(),
            SessionConfig::default(),
            QoeModel::default(),
            Bandwidth::Constant(bandwidth),
            discount.clone(),
        )
    };

    // --- Log one session under BBA ------------------------------------
    let mut rng = Xoshiro256::seed_from(11);
    let logger = ExploringAbr::new(BufferBased::default(), 0.0);
    let mut log_rng = rng.fork();
    let logged = log_session(make_session(), &logger, &mut log_rng);
    let bba_qoe = logged.trace.mean_reward();
    let mean_observed: f64 =
        logged.outcomes.iter().map(|o| o.observed_kbps).sum::<f64>() / logged.outcomes.len() as f64;
    println!("BBA logged session:    mean chunk QoE {bba_qoe:.3}");
    println!(
        "observed throughput:   {mean_observed:.0} kbps (true bandwidth {bandwidth:.0} kbps) \
         <- depressed by low-bitrate chunks, the Figure 2 effect"
    );

    // --- What would MPC really have achieved? --------------------------
    let mpc = Mpc::new(5, QoeModel::default());
    let mut truth_rng = rng.fork();
    let truth_outcomes = run_session(make_session(), &mpc, &mut truth_rng);
    let mpc_truth: f64 =
        truth_outcomes.iter().map(|c| c.qoe).sum::<f64>() / truth_outcomes.len() as f64;
    println!("\nMPC ground truth:      mean chunk QoE {mpc_truth:.3}");

    // --- The Figure 7b experiment at full protocol ---------------------
    println!("\nrunning the Figure 7b protocol (50 seeded sessions)...");
    let table = figure7b_with(&Figure7bConfig::default());
    println!(
        "{}",
        table.render("relative evaluation error, FastMPC evaluator vs DR")
    );
    let improvement = table.improvement("DR", "FastMPC");
    println!(
        "DR cuts the FastMPC evaluator's error by {:.0}% on this substrate \
         (the paper reports ~74% on theirs)",
        improvement * 100.0
    );

    // --- Control: switch the pitfall off -------------------------------
    let control = figure7b_with(&Figure7bConfig {
        runs: 20,
        discount: ThroughputDiscount::none(),
        ..Default::default()
    });
    println!(
        "control with p(r) = 1 (no bitrate-dependent observation): FastMPC error {:.4} \
         — the pitfall, not the evaluator, was the problem",
        control.get("FastMPC").unwrap().mean
    );
}
