//! Quickstart: trace-driven evaluation in five minutes.
//!
//! The smallest end-to-end workflow: log a trace under an old policy,
//! define a new policy, and compare the three estimators of the paper —
//! Direct Method, IPS, and Doubly Robust — against the known ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ddn::prelude::*;
use ddn::stats::bootstrap_ci;

/// Ground-truth reward: clients on a congested path (`rtt > 50`) do much
/// better on the second CDN; everyone else slightly prefers the first.
fn true_reward(rtt: f64, decision: usize) -> f64 {
    match (rtt > 50.0, decision) {
        (true, 1) => 4.0,
        (true, _) => 1.0,
        (false, 0) => 3.0,
        (false, _) => 2.5,
    }
}

fn main() {
    // 1. Describe the world: client features and the decision space.
    let schema = ContextSchema::builder().numeric("rtt_ms").build();
    let space = DecisionSpace::of(&["cdn-alpha", "cdn-beta"]);

    // 2. Log a trace under the old policy. Production policies should log
    //    the probability of the decision they took — the propensity.
    let old_policy = UniformRandomPolicy::new(space.clone());
    let mut rng = Xoshiro256::seed_from(42);
    let mut records = Vec::new();
    let mut contexts = Vec::new();
    for i in 0..2_000 {
        let rtt = 10.0 + (i % 100) as f64; // mixed population
        let ctx = Context::build(&schema).set_numeric("rtt_ms", rtt).finish();
        let (d, propensity) = old_policy.sample_with_prob(&ctx, &mut rng);
        let noise = (rng.next_f64() - 0.5) * 0.4;
        let reward = true_reward(rtt, d.index()) + noise;
        records.push(TraceRecord::new(ctx.clone(), d, reward).with_propensity(propensity));
        contexts.push(ctx);
    }
    let trace = Trace::from_records(schema, space.clone(), records).expect("valid trace");
    println!(
        "logged {} records, mean on-policy reward {:.3}",
        trace.len(),
        trace.mean_reward()
    );

    // 3. The new policy we want to evaluate offline: route congested
    //    clients to cdn-beta, everyone else to cdn-alpha.
    let new_policy = ddn::policy::GreedyPolicy::new(space, |ctx: &Context, d| {
        let congested = ctx.num(0) > 50.0;
        match (congested, d.index()) {
            (true, 1) | (false, 0) => 1.0,
            _ => 0.0,
        }
    });

    // Ground truth (we know the reward function here — in production you
    // would not, which is the whole point of off-policy estimation).
    let truth: f64 = contexts
        .iter()
        .map(|c| {
            let d = if c.num(0) > 50.0 { 1 } else { 0 };
            true_reward(c.num(0), d)
        })
        .sum::<f64>()
        / contexts.len() as f64;

    // 4. Estimate three ways.
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    let dm = DirectMethod::new(model.clone())
        .estimate(&trace, &new_policy)
        .unwrap();
    let ips = Ips::new().estimate(&trace, &new_policy).unwrap();
    let dr = DoublyRobust::new(model)
        .estimate(&trace, &new_policy)
        .unwrap();

    println!("\nground truth V(new policy)     = {truth:.3}");
    println!("Direct Method estimate         = {:.3}", dm.value);
    println!("IPS estimate                   = {:.3}", ips.value);
    println!("Doubly Robust estimate         = {:.3}", dr.value);

    // 5. Uncertainty: bootstrap the DR per-record contributions.
    let mut boot_rng = Xoshiro256::seed_from(7);
    let ci = bootstrap_ci(&dr.per_record, 0.95, 2_000, &mut boot_rng);
    println!(
        "DR 95% bootstrap CI            = [{:.3}, {:.3}]",
        ci.lo, ci.hi
    );

    // 6. Diagnostics: how healthy were the importance weights?
    println!(
        "\nweight diagnostics: max weight {:.1}, effective sample size {:.0} of {}",
        dr.diagnostics.max_weight,
        dr.diagnostics.effective_sample_size,
        trace.len()
    );
    assert!(
        ci.contains(truth),
        "the CI should cover the truth in this well-posed example"
    );
    println!("\nthe DR estimate brackets the truth — ship it (or at least A/B it)");
}
