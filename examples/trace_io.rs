//! Production trace ingestion: JSONL in, diagnostics, propensity repair,
//! estimates out.
//!
//! Real telemetry rarely arrives as neat in-memory structs. This example
//! round-trips a trace through the JSONL interchange format, inspects it
//! with `TraceStats` and `CoverageReport`, repairs missing propensities
//! with `EmpiricalPropensity`, and only then estimates.
//!
//! ```text
//! cargo run --release --example trace_io
//! ```

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::estimators::{DoublyRobust, Estimator};
use ddn::models::{KnnConfig, KnnRegressor};
use ddn::policy::UniformRandomPolicy;
use ddn::stats::Xoshiro256;
use ddn::trace::{CoverageReport, EmpiricalPropensity, Trace, TraceStats};

fn main() {
    // --- Produce a "telemetry file" ------------------------------------
    let world = CfaWorld::new(CfaConfig::default(), 99);
    let mut rng = Xoshiro256::seed_from(1);
    let clients = world.sample_clients(1_500, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let original = world.log_trace(&clients, &old, 2);

    let mut file = Vec::new();
    original
        .write_jsonl(&mut file)
        .expect("serialization never fails on a valid trace");
    println!(
        "wrote {} records as {} KiB of JSONL\n",
        original.len(),
        file.len() / 1024
    );

    // --- Ingest it back -------------------------------------------------
    let trace = Trace::read_jsonl(&file[..]).expect("well-formed JSONL");
    assert_eq!(
        trace.records(),
        original.records(),
        "round-trip is bit-exact"
    );

    // --- First look: descriptive statistics -----------------------------
    println!("{}", TraceStats::of(&trace).render());

    let coverage = CoverageReport::of(&trace);
    println!(
        "coverage: {} distinct clients, {}/{} decisions seen, cell fill {:.1}%\n",
        coverage.distinct_contexts,
        coverage.decisions_seen,
        coverage.decisions_total,
        100.0 * coverage.cell_fill
    );

    // --- Simulate a legacy trace with no propensities -------------------
    let stripped_records: Vec<_> = trace
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.propensity = None;
            r
        })
        .collect();
    let legacy = Trace::from_records(
        trace.schema().clone(),
        trace.space().clone(),
        stripped_records,
    )
    .unwrap();
    println!(
        "legacy trace has propensities: {}",
        legacy.has_propensities()
    );

    // Estimate them from the data (add-0.5 smoothing keeps them positive).
    let fitted = EmpiricalPropensity::fit(&legacy, 0.5);
    let repaired_records: Vec<_> = legacy
        .records()
        .iter()
        .map(|r| {
            let p = fitted.prob(&r.context, r.decision).clamp(1e-6, 1.0);
            let mut r = r.clone();
            r.propensity = Some(p);
            r
        })
        .collect();
    let repaired = Trace::from_records(
        legacy.schema().clone(),
        legacy.space().clone(),
        repaired_records,
    )
    .unwrap();
    println!(
        "repaired with empirical propensities (marginal: {:?})\n",
        fitted
            .marginal()
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // --- Estimate -------------------------------------------------------
    let newp = world.greedy_policy();
    let truth = world.true_value(&clients, &newp);
    let knn = KnnRegressor::fit(&repaired, KnnConfig::default());
    let dr = DoublyRobust::new(&knn).estimate(&repaired, &newp).unwrap();
    println!(
        "DR estimate from the repaired trace: {:.4} (truth {:.4})",
        dr.value, truth
    );
    assert!((dr.value - truth).abs() / truth.abs() < 0.1);
    println!("within 10% of truth despite the propensity repair — usable telemetry.");
}
